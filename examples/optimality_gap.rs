//! How far from optimal are the heuristics? The paper formulates the
//! exact boolean ILP (Section II) but never solves it; this example
//! does, on a batch of small instances, certifying the optimality gap
//! of every allocator with the from-scratch branch-and-bound solver.
//!
//! ```sh
//! cargo run --release --example optimality_gap
//! ```

use esvm::{Allocator, AllocatorKind, Formulation, Summary, Table, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instances = 20;
    let algos = [
        AllocatorKind::Miec,
        AllocatorKind::Ffps,
        AllocatorKind::BestFit,
        AllocatorKind::Random,
    ];

    // gaps[algo][instance] in percent above the optimum.
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
    let mut nodes_total = 0usize;

    for seed in 0..instances {
        // 5 VMs on 3 servers over a short horizon: big enough to be
        // non-trivial (the LP relaxation is fractional), small enough
        // for proven optimality in milliseconds.
        let problem = WorkloadConfig::new(5, 3)
            .mean_interarrival(2.0)
            .mean_duration(4.0)
            // Standard VM types only: the m2 family does not fit the
            // three smallest server types that a 3-server fleet gets.
            .vm_types(esvm::catalog::standard_vm_types())
            .generate(seed)?;
        let exact = Formulation::new(&problem).solve()?;
        nodes_total += exact.nodes;
        // Sanity: the decoded assignment audits to the same objective.
        let decoded = exact.decode(&problem)?;
        assert!((decoded.total_cost() - exact.objective).abs() < 1e-6);

        for (i, kind) in algos.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let cost = kind.build().allocate(&problem, &mut rng)?.total_cost();
            assert!(
                cost >= exact.objective - 1e-6,
                "{kind} beat the proven optimum — solver bug"
            );
            gaps[i].push((cost / exact.objective - 1.0) * 100.0);
        }
    }

    let mut table = Table::new(vec![
        "algorithm",
        "mean gap (%)",
        "worst gap (%)",
        "optimal on (of 20)",
    ]);
    for (i, kind) in algos.iter().enumerate() {
        let s = Summary::of(&gaps[i]).expect("non-empty");
        let optimal = gaps[i].iter().filter(|&&g| g < 0.01).count();
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.max),
            optimal.to_string(),
        ]);
    }
    println!("optimality gaps on {instances} random 5-VM/3-server instances\n");
    println!("{table}");
    println!("(branch-and-bound explored {nodes_total} nodes in total)");
    Ok(())
}
