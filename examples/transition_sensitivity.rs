//! Sensitivity of the saving to the server transition time — an
//! extended version of the paper's Fig. 5 sweep (0.25–4 minutes instead
//! of three discrete settings), including the MIEC ablation that
//! ignores transition costs when scoring candidates.
//!
//! ```sh
//! cargo run --release --example transition_sensitivity
//! ```

use esvm::{AllocatorKind, MonteCarlo, Table, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let algos = [
        AllocatorKind::Miec,
        AllocatorKind::MiecNoAlpha,
        AllocatorKind::Ffps,
    ];
    let exec = MonteCarlo::new(30, std::thread::available_parallelism()?.get());

    let mut table = Table::new(vec![
        "transition time (min)",
        "miec vs ffps (%)",
        "miec-noalpha vs ffps (%)",
        "alpha awareness gain (pp)",
    ]);
    for transition in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let config = WorkloadConfig::new(100, 50)
            .mean_interarrival(4.0)
            .mean_duration(5.0)
            .transition_time(transition);
        let point = exec.compare(&config, &algos)?;
        let full = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec) * 100.0;
        let blind = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::MiecNoAlpha) * 100.0;
        table.row(vec![
            format!("{transition}"),
            format!("{full:.2}"),
            format!("{blind:.2}"),
            format!("{:.2}", full - blind),
        ]);
    }
    println!("energy reduction vs transition time (100 VMs, 50 servers, 30 seeds)\n");
    println!("{table}");
    println!("shorter transitions make switching off cheaper, so savings grow;");
    println!("the last column isolates the benefit of α-aware candidate scoring.");
    Ok(())
}
