//! A day in an EC2-style data center: diurnal arrival rates.
//!
//! The paper's generator uses a homogeneous Poisson process; real cloud
//! arrival rates swing over the day (Section I motivates saving energy
//! exactly because load varies). This example builds a 24-hour
//! (1440-minute) workload from the diurnal non-homogeneous Poisson
//! model in `esvm::workload::arrivals` — quiet nights, busy afternoons
//! — straight through the `simcore` problem API, then compares every
//! allocator in the registry on it.
//!
//! ```sh
//! cargo run --release --example ec2_day
//! ```

use esvm::workload::arrivals::ArrivalModel;
use esvm::workload::dist::Exponential;
use esvm::{catalog, AllocationProblem, Allocator, AllocatorKind, Interval, ProblemBuilder, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_day(seed: u64) -> Result<AllocationProblem, Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = 1440u32;
    let durations = Exponential::with_mean(45.0); // 45-minute VMs
    let vm_types = catalog::vm_types();

    // A diurnal stream averaging one request per minute, swinging ±85 %
    // over a 24-hour period: near-silent nights, ~2/min afternoons.
    let model = ArrivalModel::Diurnal {
        mean_interarrival: 1.0,
        amplitude: 0.85,
        period: f64::from(horizon),
    };
    // Enough arrivals to cover the day; keep only those inside it.
    let arrivals: Vec<u32> = model
        .sample_n_time_units(2200, &mut rng)
        .into_iter()
        .take_while(|&t| t < horizon)
        .collect();

    let mut builder = ProblemBuilder::new();
    // A 300-server fleet cycling through the Table II types.
    for i in 0..300u32 {
        builder = builder.server_spec(
            catalog::server_types()[(i as usize) % catalog::server_types().len()]
                .to_spec(i, 1.0),
        );
    }
    for start in arrivals {
        let len = durations.sample_time_units(&mut rng);
        let ty = vm_types[rng.gen_range(0..vm_types.len())];
        builder = builder.vm(ty.demand(), Interval::with_len(start.max(1), len));
    }
    Ok(builder.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = build_day(2013)?;
    let stats = problem.stats();
    println!(
        "EC2 day: {} VMs on {} servers over {} minutes (offered CPU load {:.1}%)\n",
        stats.vm_count,
        stats.server_count,
        stats.horizon,
        stats.offered_cpu_load * 100.0
    );

    let mut table = Table::new(vec![
        "algorithm",
        "total cost (kW·min)",
        "active servers",
        "transitions",
        "vs ffps (%)",
    ]);
    let mut rng = StdRng::seed_from_u64(99);
    let ffps_cost = AllocatorKind::Ffps
        .build()
        .allocate(&problem, &mut rng)?
        .total_cost();

    for kind in AllocatorKind::ALL {
        let mut rng = StdRng::seed_from_u64(99);
        let assignment = kind.build().allocate(&problem, &mut rng)?;
        let report = assignment.audit()?;
        let active = report.servers.iter().filter(|s| s.hosted > 0).count();
        let transitions: u64 = report.servers.iter().map(|s| s.transitions).sum();
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.1}", report.total_cost / 1000.0),
            active.to_string(),
            transitions.to_string(),
            format!("{:.2}", (1.0 - report.total_cost / ffps_cost) * 100.0),
        ]);
    }
    println!("{table}");
    println!("(same seeded instance for every algorithm; transition time 1 min)");
    Ok(())
}
