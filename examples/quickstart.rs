//! Quickstart: generate a paper-style workload, allocate it with the
//! MIEC heuristic and the FFPS baseline, and audit the energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use esvm::{Allocator, AllocatorKind, Ffps, Miec, Table, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 100 VM requests on 50 heterogeneous servers: Poisson arrivals
    // (mean inter-arrival 4 min), exponential durations (mean 5 min),
    // demands drawn from the paper's Table I, servers from Table II.
    let problem = WorkloadConfig::new(100, 50)
        .mean_interarrival(4.0)
        .mean_duration(5.0)
        .transition_time(1.0)
        .generate(42)?;

    println!(
        "instance: {} VMs on {} servers, horizon {} time units\n",
        problem.vm_count(),
        problem.server_count(),
        problem.horizon()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let smart = Miec::new().allocate(&problem, &mut rng)?;
    let baseline = Ffps::new().allocate(&problem, &mut rng)?;

    let mut table = Table::new(vec![
        "algorithm",
        "total cost",
        "run",
        "idle",
        "transition",
        "active servers",
        "cpu util (%)",
    ]);
    for (name, assignment) in [
        (AllocatorKind::Miec.name(), &smart),
        (AllocatorKind::Ffps.name(), &baseline),
    ] {
        let report = assignment.audit()?;
        let active = report.servers.iter().filter(|s| s.hosted > 0).count();
        table.row(vec![
            name.to_owned(),
            format!("{:.0}", report.total_cost),
            format!("{:.0}", report.breakdown.run),
            format!("{:.0}", report.breakdown.idle),
            format!("{:.0}", report.breakdown.transition),
            active.to_string(),
            format!("{:.1}", report.utilization.avg_cpu * 100.0),
        ]);
    }
    println!("{table}");

    let saving = 1.0 - smart.total_cost() / baseline.total_cost();
    println!("MIEC saves {:.1}% energy on this instance", saving * 100.0);
    Ok(())
}
