//! Allocation vs. migration: the trade-off the paper leaves open.
//!
//! Section V: "our problem focuses on saving energy consumption by VM
//! allocation instead of migration." This example runs the
//! live-migration consolidation post-pass on top of both MIEC and FFPS
//! for one seeded instance and shows where the energy goes — including
//! the migration trail of one relocated VM.
//!
//! ```sh
//! cargo run --release --example consolidation
//! ```

use esvm::core::Consolidator;
use esvm::{Allocator, AllocatorKind, Table, VmId, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = WorkloadConfig::new(100, 50)
        .mean_interarrival(3.0)
        .mean_duration(5.0)
        .generate(11)?;
    let consolidator = Consolidator::new(5.0); // 5 W·min per GB moved

    let mut table = Table::new(vec![
        "pipeline",
        "total energy",
        "server energy",
        "migration energy",
        "migrations",
        "saving vs base (%)",
    ]);
    let mut example_migration: Option<String> = None;

    for kind in [AllocatorKind::Miec, AllocatorKind::Ffps] {
        let mut rng = StdRng::seed_from_u64(1);
        let base = kind.build().allocate(&problem, &mut rng)?;
        let schedule = consolidator.consolidate(&base)?;
        let audit = schedule.audit()?;

        table.row(vec![
            format!("{} (allocation only)", kind.name()),
            format!("{:.0}", base.total_cost()),
            format!("{:.0}", base.total_cost()),
            "0".into(),
            "0".into(),
            String::new(),
        ]);
        table.row(vec![
            format!("{} + consolidation", kind.name()),
            format!("{:.0}", audit.total_cost),
            format!("{:.0}", audit.server_energy),
            format!("{:.0}", audit.migration_energy),
            audit.migrations.to_string(),
            format!(
                "{:.2}",
                (1.0 - audit.total_cost / base.total_cost()) * 100.0
            ),
        ]);

        if example_migration.is_none() {
            // Find a VM that actually migrated and narrate its journey.
            for j in 0..problem.vm_count() {
                let pieces = schedule.pieces_of(VmId(j as u32));
                if pieces.len() > 1 {
                    let journey: Vec<String> = pieces
                        .iter()
                        .map(|p| format!("{} during {}", p.server, p.interval))
                        .collect();
                    example_migration = Some(format!(
                        "under {}, vm{} migrated: {}",
                        kind.name(),
                        j,
                        journey.join(" → ")
                    ));
                    break;
                }
            }
        }
    }

    println!(
        "allocation vs migration on one instance ({} VMs, {} servers)\n",
        problem.vm_count(),
        problem.server_count()
    );
    println!("{table}");
    if let Some(story) = example_migration {
        println!("{story}");
    }
    println!("\nconsolidation barely improves MIEC — good placement leaves little");
    println!("for migration to recover — but rescues a chunk of FFPS's waste.");
    Ok(())
}
