//! Offline stub of `serde`.
//!
//! The build environment has no network access and no vendored crates.io
//! registry, so the real `serde` cannot be fetched. The workspace only
//! *derives* `Serialize`/`Deserialize` (no code path ever serializes a
//! value — there is no `serde_json`/`bincode` dependency), so marker
//! traits with blanket impls plus no-op derive macros reproduce the exact
//! API surface the workspace needs while keeping every type signature
//! source-compatible with the real crate.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every
/// type so `T: Serialize` bounds hold everywhere.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`. Blanket-implemented for
/// every sized type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Namespace mirror of `serde::de` for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
