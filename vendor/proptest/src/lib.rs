//! Offline mini property-testing framework with the `proptest` API
//! surface the esvm workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the pieces the test suites call: the [`proptest!`] macro
//! (including `#![proptest_config(...)]`), [`prop_assert!`] /
//! [`prop_assert_eq!`], the [`strategy::Strategy`] trait with `prop_map`
//! and `prop_flat_map`, strategies for integer/float ranges, tuples up to
//! arity six, [`collection::vec`] and [`bool::ANY`].
//!
//! Differences from upstream proptest, deliberate for a test-only stub:
//! cases are generated from a deterministic per-case RNG (seeded from the
//! case index), and failing cases are reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    use std::fmt;

    /// Deterministic source of randomness for strategy generation.
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        /// RNG for the `case`-th test case; fixed across runs so failures
        /// reproduce.
        pub fn for_case(case: u32) -> Self {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x9E37_79B9u64 ^ (u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407)),
            ))
        }

        /// The underlying generator.
        pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
            &mut self.0
        }
    }

    /// Per-suite configuration (mirrors `proptest::test_runner::ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property case (mirrors `proptest::test_runner::TestCaseError`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fails the current case with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Alias kept for API parity; this stub does not track rejection
        /// separately from failure.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values (mirrors
    /// `proptest::strategy::Strategy`, minus shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// returns for it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the same value (mirrors
    /// `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Uniform boolean strategy (mirrors `proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each property over `config.cases` deterministic random cases.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(pat in
/// strategy, ...) { body }` items. The body runs in a context where
/// `prop_assert!`-style macros early-return a failure; any other panic
/// propagates as usual.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut proptest_rng),)+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Deterministic RNG builder shared by the macro machinery; exposed so
/// generated code can construct case RNGs without naming private fields.
pub fn case_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    fn arb_pair() -> impl crate::strategy::Strategy<Value = (u32, u32)> {
        (0u32..50, 1u32..=10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1i32..=6, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=6).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..5, 2..=7)) {
            prop_assert!((2..=7).contains(&v.len()), "len {}", v.len());
            for &e in &v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn mapped_pairs_are_ordered(p in arb_pair(), flag in crate::bool::ANY) {
            let (lo, hi) = p;
            prop_assert!(lo < hi);
            prop_assert_eq!(flag || !flag, true);
        }

        #[test]
        fn flat_map_threads_values(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..9, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn early_return_ok_is_supported(x in 0u32..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = arb_pair().generate(&mut crate::test_runner::TestRng::for_case(3));
        let b = arb_pair().generate(&mut crate::test_runner::TestRng::for_case(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
