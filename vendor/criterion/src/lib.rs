//! Offline mini benchmark harness with the `criterion` API surface the
//! esvm bench crate uses.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! short warm-up, then a fixed number of timed samples, and prints the
//! mean wall-clock time per iteration. There is no statistical analysis,
//! outlier rejection, or HTML report — just honest `Instant`-based
//! timing, which is enough to compare implementations in this repo.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement marker type (upstream's default measurement).
pub struct WallTime;

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. `from_parameter(400)`.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }

    /// Id with a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) runs and times
/// the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sampled<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Warm-up and calibration: find an iteration count that takes a
    // measurable slice of time without dragging the whole suite.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let samples = sample_size.clamp(1, 20);
    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let per_iter = total.as_secs_f64() / total_iters.max(1) as f64;
    println!("bench: {label:<55} {:>12.3} us/iter", per_iter * 1e6);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Limits total measurement time (accepted for API parity; the stub's
    /// fixed sampling already bounds runtime).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_sampled(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Default number of timed samples for benchmarks outside groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_sampled(name, self.sample_size, &mut f);
        self
    }

    /// Configuration hook retained for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group: `criterion_group!(benches, f, g, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| sum_to(black_box(100))));
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| sum_to(black_box(7)))
        });
        group.finish();
    }

    #[test]
    fn direct_bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("direct", |b| b.iter(|| sum_to(black_box(10))));
    }

    criterion_group!(test_benches, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro");
        g.sample_size(1);
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn macro_generated_group_is_callable() {
        test_benches();
    }
}
