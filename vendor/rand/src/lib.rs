//! Offline stand-in for the parts of `rand` 0.8 that esvm uses.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the exact API surface the workspace calls: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`] (a
//! xoshiro256++ generator seeded through SplitMix64), uniform sampling
//! over integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! Everything is deterministic per seed. The generated stream differs
//! from upstream rand's ChaCha-based `StdRng`; seeds simply select a
//! different (but equally fixed) pseudo-random instance, which is all the
//! simulator requires of them.

use std::ops::{Range, RangeInclusive};

/// Core generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (mirrors the subset of `rand::SeedableRng` the
/// workspace calls).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`: statistically solid for
    /// simulation workloads and fully reproducible per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (mirrors the subset of `rand::seq` the workspace
/// uses).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u32..10);
        assert!(v < 10);
        let mut slice = [1u32, 2, 3, 4, 5];
        slice.shuffle(dyn_rng);
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
