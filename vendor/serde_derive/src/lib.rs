//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The stub `serde` crate blanket-implements its marker traits for every
//! type, so the derives have nothing to emit; they exist so that
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes
//! parse exactly as with the real crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
