//! # esvm — Energy Saving Virtual Machine Allocation
//!
//! A full Rust reproduction of *"Energy Saving Virtual Machine
//! Allocation in Cloud Computing"* (Ruitao Xie, Xiaohua Jia, Kan Yang,
//! Bo Zhang — IEEE ICDCS Workshops 2013).
//!
//! A cloud data center receives VM requests with (CPU, memory) demands
//! and fixed time intervals. Servers are non-homogeneous: each has its
//! own capacity, affine power model `P(u) = P_idle + (P_peak−P_idle)·u`
//! and transition cost `α` for waking from the power-saving state. The
//! goal is a placement of every VM minimising total energy.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`simcore`] — the data-center model: time, resources, servers,
//!   busy/idle segments, energy accounting (Eqs. 1–7, 15–17);
//! * [`core`] — the allocation algorithms: the paper's **MIEC**
//!   heuristic, the **FFPS** baseline, and ablation baselines;
//! * [`chaos`] — deterministic fault injection and failure-aware
//!   replay: seeded [`FaultPlan`]s, eviction-correct energy accounting,
//!   repair via incremental-cost scoring, graceful shedding;
//! * [`ilp`] — the exact boolean-ILP formulation (Eqs. 8–14) with a
//!   from-scratch simplex + branch-and-bound solver for certification;
//! * [`workload`] — Poisson/exponential workload generation and the
//!   EC2-derived Table I / Table II catalogs;
//! * [`par`] — the deterministic scoped thread pool behind every
//!   parallel scoring loop (bit-identical results per thread count);
//! * [`analysis`] — statistics, the paper's Adj.R² curve fits, tables;
//! * [`exper`] — the harness reproducing every figure and table.
//!
//! The most common types are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use esvm::{Allocator, Ffps, Miec, WorkloadConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 100 VM requests on 50 heterogeneous servers (paper Section IV-B).
//! let problem = WorkloadConfig::new(100, 50)
//!     .mean_interarrival(4.0)
//!     .generate(42)?;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let smart = Miec::new().allocate(&problem, &mut rng)?;
//! let baseline = Ffps::new().allocate(&problem, &mut rng)?;
//!
//! let saving = 1.0 - smart.total_cost() / baseline.total_cost();
//! println!("MIEC saves {:.1}% energy", saving * 100.0);
//! assert!(smart.audit()?.total_cost <= baseline.audit()?.total_cost);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use esvm_analysis as analysis;
pub use esvm_chaos as chaos;
pub use esvm_core as core;
pub use esvm_exper as exper;
pub use esvm_ilp as ilp;
pub use esvm_obs as obs;
pub use esvm_par as par;
pub use esvm_simcore as simcore;
pub use esvm_workload as workload;

pub use esvm_analysis::{energy_reduction_ratio, Fit, FitKind, Summary, Table};
pub use esvm_chaos::{
    ChaosEngine, ChaosError, ChaosReport, FaultCause, FaultEvent, FaultPlan, FaultPlanConfig,
    InputFault, RepairPolicy, ShedPolicy,
};
pub use esvm_core::{
    Allocator, AllocatorKind, BestFit, Consolidator, Ffps, FirstFit, LocalSearch, LowestIdlePower,
    Miec, OnlineDecision, OnlineEngine, OnlineError, OnlineGreedy, OnlineStats, Random, Refined,
    RoundRobin,
};
pub use esvm_exper::{ExpOptions, Figure, MonteCarlo, Series};
pub use esvm_ilp::Formulation;
pub use esvm_par::Parallelism;
pub use esvm_simcore::{
    replay, AllocationProblem, Assignment, AuditReport, EnergyBreakdown, Interval, PowerModel,
    PowerTrace, ProblemBuilder, Resources, Schedule, ScheduleAudit, ServerId, ServerLedger,
    ServerSpec, Vm, VmId,
};
pub use esvm_simcore::{departure_time, event_order, VmEvent};
pub use esvm_workload::{catalog, AdversaryPreset, ServerType, VmClass, VmType, WorkloadConfig};
