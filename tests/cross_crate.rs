//! End-to-end tests spanning the whole workspace: CLI → harness →
//! algorithms → simulator → analysis.

use esvm::exper::cli;
use esvm::{catalog, AllocatorKind, MonteCarlo, WorkloadConfig};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn cli_reproduces_every_artefact_in_quick_mode() {
    for cmd in [
        "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    ] {
        let out = cli::run(&args(&[cmd, "--quick", "--seeds", "2", "--threads", "8"]))
            .unwrap_or_else(|e| panic!("{cmd} failed: {e}"));
        assert!(!out.is_empty(), "{cmd} produced empty output");
    }
}

#[test]
fn cli_csv_mode_is_machine_readable() {
    let out = cli::run(&args(&[
        "fig5", "--quick", "--seeds", "2", "--threads", "8", "--csv",
    ]))
    .unwrap();
    let mut lines = out.lines();
    assert_eq!(lines.next(), Some("series,x,y"));
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 3, "bad CSV line {line:?}");
        fields[1].parse::<f64>().unwrap();
        fields[2].parse::<f64>().unwrap();
    }
}

#[test]
fn cli_timeline_charts_power() {
    let out = cli::run(&args(&[
        "timeline", "--vms", "30", "--servers", "15", "--seed", "2",
    ]))
    .unwrap();
    assert!(out.contains("power (W)"), "{out}");
    assert!(out.contains("active servers"), "{out}");
    assert!(out.contains("miec") && out.contains("ffps"), "{out}");
}

#[test]
fn cli_ext_migration_runs() {
    let out = cli::run(&args(&[
        "ext-migration",
        "--quick",
        "--seeds",
        "2",
        "--threads",
        "4",
    ]))
    .unwrap();
    assert!(out.contains("consol. saving"), "{out}");
    assert!(out.contains("migrations/run"), "{out}");
}

#[test]
fn cli_gen_and_solve_round_trip() {
    let path = std::env::temp_dir().join("esvm_cli_test.trace");
    let path_str = path.to_str().unwrap().to_owned();
    let out = cli::run(&args(&[
        "gen", "--vms", "20", "--servers", "10", "--seed", "9", "--out", &path_str,
    ]))
    .unwrap();
    assert!(out.contains("wrote 20 VMs"), "{out}");
    let out = cli::run(&args(&["solve", "--trace", &path_str, "--algos", "miec,ffps"])).unwrap();
    assert!(out.contains("20 VMs on 10 servers"), "{out}");
    assert!(out.contains("miec") && out.contains("ffps"), "{out}");
    std::fs::remove_file(&path).ok();

    // gen without --out streams the trace itself.
    let text = cli::run(&args(&["gen", "--vms", "3", "--servers", "5", "--seed", "1"])).unwrap();
    assert!(text.starts_with("# esvm trace v1"), "{text}");

    // solve without --trace is a usage error.
    assert!(cli::run(&args(&["solve"])).is_err());
}

#[test]
fn cli_exact_certification_smoke() {
    let out = cli::run(&args(&["exact", "--vms", "3", "--servers", "2", "--seed", "3"])).unwrap();
    assert!(out.contains("exact (ILP)"), "{out}");
    assert!(out.contains("0.00"), "{out}");
}

#[test]
fn registry_names_match_paper_terminology() {
    // The two algorithms the paper evaluates must exist under stable
    // names — these are public API used by the CLI and docs.
    assert_eq!(AllocatorKind::Miec.name(), "miec");
    assert_eq!(AllocatorKind::Ffps.name(), "ffps");
    assert_eq!("miec".parse::<AllocatorKind>().unwrap(), AllocatorKind::Miec);
}

#[test]
fn headline_claim_miec_beats_ffps() {
    // The paper's core claim, end to end, at a non-trivial scale.
    let config = WorkloadConfig::new(80, 40).mean_interarrival(6.0);
    let point = MonteCarlo::new(20, 8)
        .compare(&config, &[AllocatorKind::Miec, AllocatorKind::Ffps])
        .unwrap();
    let ratio = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec);
    assert!(
        ratio > 0.05,
        "expected a clear saving at light load, got {:.1}%",
        ratio * 100.0
    );
}

#[test]
fn catalog_is_consistent_with_generated_workloads() {
    let problem = WorkloadConfig::new(120, 60).generate(3).unwrap();
    // Every generated server matches a Table II row (with α = P_peak·1).
    for s in problem.servers() {
        assert!(catalog::server_types().iter().any(|t| {
            t.capacity() == s.capacity()
                && t.power() == *s.power()
                && (t.p_peak - s.transition_cost()).abs() < 1e-9
        }));
    }
    // Every generated VM matches a Table I row.
    for v in problem.vms() {
        assert!(catalog::vm_types().iter().any(|t| t.demand() == v.demand()));
    }
}

#[test]
fn monte_carlo_reduction_matches_manual_computation() {
    let config = WorkloadConfig::new(30, 15).mean_interarrival(3.0);
    let point = MonteCarlo::new(5, 2)
        .compare(&config, &[AllocatorKind::Miec, AllocatorKind::Ffps])
        .unwrap();
    let manual: f64 = point.costs[1]
        .iter()
        .zip(&point.costs[0])
        .map(|(f, m)| (f - m) / f)
        .sum::<f64>()
        / point.costs[0].len() as f64;
    let reported = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec);
    assert!((manual - reported).abs() < 1e-12);
}
