//! Cross-crate property-based tests (proptest): random problems through
//! the full pipeline.

use esvm::workload::trace;
use esvm::{
    AllocationProblem, Allocator, AllocatorKind, Interval, PowerModel, Resources, ServerSpec, Vm,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random feasible allocation problem (2–6 servers, up to 14
/// VMs, horizon ≤ 60). Server 0 is made a "big" server so every VM fits
/// somewhere.
fn arb_problem() -> impl Strategy<Value = AllocationProblem> {
    let server = (1u32..=12, 1u32..=24, 1u32..=20, 1u32..=20, 0u32..=50).prop_map(
        |(cpu, mem, idle, dynamic, alpha)| {
            (
                f64::from(cpu),
                f64::from(mem),
                f64::from(idle),
                f64::from(idle + dynamic),
                f64::from(alpha),
            )
        },
    );
    let vm = (1u32..=8, 1u32..=16, 1u32..=50, 1u32..=10)
        .prop_map(|(cpu, mem, start, len)| (f64::from(cpu), f64::from(mem), start, len));
    (
        proptest::collection::vec(server, 1..=5),
        proptest::collection::vec(vm, 0..=14),
    )
        .prop_map(|(servers, vms)| {
            let mut specs = vec![ServerSpec::new(
                0,
                Resources::new(16.0, 32.0),
                PowerModel::new(10.0, 40.0),
                25.0,
            )];
            for (i, (cpu, mem, idle, peak, alpha)) in servers.into_iter().enumerate() {
                specs.push(ServerSpec::new(
                    (i + 1) as u32,
                    Resources::new(cpu, mem),
                    PowerModel::new(idle, peak),
                    alpha,
                ));
            }
            let vms: Vec<Vm> = vms
                .into_iter()
                .enumerate()
                .map(|(j, (cpu, mem, start, len))| {
                    Vm::new(
                        j as u32,
                        // Clamp to the big server so the instance is valid.
                        Resources::new(cpu.min(16.0), mem.min(32.0)),
                        Interval::with_len(start, len),
                    )
                })
                .collect();
            AllocationProblem::new(specs, vms).expect("constructed valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every allocator either fails with NoFeasibleServer or returns a
    /// complete assignment that passes the independent audit, with the
    /// audited total matching the incremental total.
    #[test]
    fn allocators_produce_auditable_assignments(problem in arb_problem(), seed in 0u64..1000) {
        for kind in AllocatorKind::ALL {
            let mut rng = StdRng::seed_from_u64(seed);
            match kind.build().allocate(&problem, &mut rng) {
                Ok(assignment) => {
                    prop_assert!(assignment.is_complete());
                    let audit = assignment.audit().expect("audit must pass");
                    prop_assert!((audit.total_cost - assignment.total_cost()).abs() < 1e-6);
                    prop_assert!(audit.total_cost >= -1e-9);
                    prop_assert!(
                        audit.breakdown.run >= -1e-9
                            && audit.breakdown.idle >= -1e-9
                            && audit.breakdown.transition >= -1e-9
                    );
                }
                Err(esvm::core::AllocError::NoFeasibleServer(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{kind}: {e}"))),
            }
        }
    }

    /// Audited utilization values are valid fractions on any instance.
    #[test]
    fn audited_utilization_is_a_fraction(problem in arb_problem(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(assignment) = esvm::Miec::new().allocate(&problem, &mut rng) {
            let audit = assignment.audit().unwrap();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&audit.utilization.avg_cpu));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&audit.utilization.avg_mem));
        }
    }

    /// Problems round-trip through the text trace format losslessly.
    #[test]
    fn trace_round_trip(problem in arb_problem()) {
        let text = trace::to_text(&problem);
        let parsed = trace::from_text(&text).expect("parse back");
        prop_assert_eq!(problem.vms(), parsed.vms());
        prop_assert_eq!(problem.servers(), parsed.servers());
        prop_assert_eq!(problem.horizon(), parsed.horizon());
    }

    /// Three independent energy computations agree on any assignment:
    /// the incremental ledger, the analytic audit, and the time-swept
    /// event replay.
    #[test]
    fn ledger_audit_and_replay_agree(problem in arb_problem(), seed in 0u64..1000) {
        for kind in [AllocatorKind::Miec, AllocatorKind::Ffps, AllocatorKind::BestFit] {
            let mut rng = StdRng::seed_from_u64(seed);
            let Ok(assignment) = kind.build().allocate(&problem, &mut rng) else {
                continue;
            };
            let incremental = assignment.total_cost();
            let audited = assignment.audit().unwrap().total_cost;
            let replayed = esvm::simcore::replay(&assignment).total_energy();
            prop_assert!((incremental - audited).abs() < 1e-6, "{kind}: ledger vs audit");
            prop_assert!((replayed - audited).abs() < 1e-6,
                "{kind}: replay {replayed} vs audit {audited}");
        }
    }

    /// Consolidation never increases the audited energy, regardless of
    /// the base allocator or the migration price, and its schedule
    /// always passes the independent schedule audit.
    #[test]
    fn consolidation_is_sound_and_never_worsens(
        problem in arb_problem(),
        seed in 0u64..500,
        mu in 0u32..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(base) = esvm::Ffps::new().allocate(&problem, &mut rng) else {
            return Ok(());
        };
        let schedule = esvm::Consolidator::new(f64::from(mu))
            .consolidate(&base)
            .expect("complete base");
        let audit = schedule.audit().expect("schedule audit");
        prop_assert!(
            audit.total_cost <= base.total_cost() + 1e-6,
            "consolidated {} vs base {}",
            audit.total_cost,
            base.total_cost()
        );
        prop_assert!(audit.migration_energy >= 0.0);
        prop_assert!(audit.server_energy >= 0.0);
        // Lifting back without migrations reproduces the base cost.
        let lifted = esvm::Schedule::from_assignment(&base, f64::from(mu)).unwrap();
        let lifted_audit = lifted.audit().unwrap();
        prop_assert!((lifted_audit.total_cost - base.total_cost()).abs() < 1e-6);
    }

    /// Local search never increases cost and its result re-validates.
    #[test]
    fn local_search_never_worsens(problem in arb_problem(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(base) = esvm::Ffps::new().allocate(&problem, &mut rng) else {
            return Ok(());
        };
        let refined = esvm::LocalSearch::new()
            .with_max_rounds(5)
            .refine(&base)
            .expect("complete base");
        prop_assert!(refined.total_cost() <= base.total_cost() + 1e-6);
        prop_assert!(refined.audit().is_ok());
    }

    /// The total cost of an assignment is invariant under the order in
    /// which VMs are placed (it is a function of the final placement).
    #[test]
    fn cost_is_placement_order_invariant(problem in arb_problem(), seed in 0u64..1000) {
        use esvm::Assignment;
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(reference) = esvm::Miec::new().allocate(&problem, &mut rng) else {
            return Ok(());
        };
        // Re-apply the same placement in reverse VM order.
        let mut reordered = Assignment::new(&problem);
        for j in (0..problem.vm_count()).rev() {
            let vm = esvm::VmId(j as u32);
            let server = reference.server_of(vm).unwrap();
            reordered.place(vm, server).expect("same placement is valid");
        }
        prop_assert!((reordered.total_cost() - reference.total_cost()).abs() < 1e-6);
    }
}
