//! Shape tests for the extension experiments (E1–E3) and the capacity
//! planner, at a statistically meaningful scale.

use esvm::exper::planner::CapacityPlanner;
use esvm::exper::{experiments, ExpOptions};
use esvm::{catalog, WorkloadConfig};

fn opts() -> ExpOptions {
    ExpOptions {
        seeds: 12,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        quick: true,
    }
}

/// E1: consolidation recovers more on FFPS than on MIEC (good placement
/// leaves little), and migrations fall as μ rises.
#[test]
fn e1_migration_tradeoff_shapes() {
    let rows = experiments::ext_migration_rows(&opts()).unwrap();
    let cheap = &rows[0];
    let dear = rows.last().unwrap();
    assert!(cheap.mu < dear.mu);
    assert!(
        cheap.ffps_extra_saving >= cheap.miec_extra_saving - 0.5,
        "FFPS should benefit at least as much: {cheap:?}"
    );
    assert!(
        cheap.miec_migrations >= dear.miec_migrations,
        "migrations must fall with μ"
    );
    assert!(
        cheap.miec_extra_saving >= dear.miec_extra_saving - 1e-9,
        "recovered energy must fall with μ"
    );
}

/// E2: the saving is positive under all three arrival models.
#[test]
fn e2_arrival_models_all_save() {
    let rows = experiments::ext_arrivals_rows(&opts()).unwrap();
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.reduction > 0.0, "{}: {r:?}", r.model);
        assert!(r.miec_cpu_util >= r.ffps_cpu_util - 2.0, "{r:?}");
    }
}

/// E3: MIEC does not sacrifice admission capacity and serves work at
/// least as cheaply as FFPS when saturated.
#[test]
fn e3_overload_shapes() {
    let rows = experiments::ext_overload_rows(&opts()).unwrap();
    for r in &rows {
        assert!(
            r.miec_admitted >= r.ffps_admitted - 3.0,
            "MIEC admission should be competitive: {r:?}"
        );
        assert!(
            r.miec_energy_per_work <= r.ffps_energy_per_work + 0.5,
            "MIEC energy/work should be competitive: {r:?}"
        );
    }
    // The smallest fleet must actually be saturated.
    assert!(rows.last().unwrap().miec_admitted < 100.0);
}

/// Planner: bigger fleets admit more; the recommendation is minimal.
#[test]
fn planner_frontier_shapes() {
    let template = WorkloadConfig::new(80, 1)
        .mean_interarrival(0.4)
        .mean_duration(12.0)
        .vm_types(catalog::standard_vm_types());
    let plan = CapacityPlanner::new(template, 0.95, 6)
        .plan(vec![2, 4, 10, 40])
        .unwrap();
    for w in plan.frontier.windows(2) {
        assert!(w[0].admission_rate <= w[1].admission_rate + 1e-9);
    }
    let rec = plan.recommended.expect("40 servers always suffice");
    assert!(rec.admission_rate >= 0.95);
    for p in &plan.frontier {
        if p.servers < rec.servers {
            assert!(p.admission_rate < 0.95);
        }
    }
}
