//! Regression bands for the headline numbers.
//!
//! Everything here is fully deterministic (seeded workloads, seeded
//! policies), so these are tight-but-tolerant bands rather than exact
//! pins: they flag accidental changes to the catalogs, the cost model
//! or the algorithms, while leaving room for intentional retuning
//! (update the bands alongside DESIGN.md if that happens).

use esvm::{AllocatorKind, MonteCarlo, WorkloadConfig};

fn flagship(seeds: u64) -> esvm::exper::ComparisonPoint {
    let config = WorkloadConfig::new(100, 50)
        .mean_interarrival(4.0)
        .mean_duration(5.0)
        .transition_time(1.0);
    MonteCarlo::new(seeds, 8)
        .compare(&config, &[AllocatorKind::Miec, AllocatorKind::Ffps])
        .unwrap()
}

#[test]
fn flagship_reduction_ratio_band() {
    let point = flagship(30);
    let ratio = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec) * 100.0;
    assert!(
        (25.0..=50.0).contains(&ratio),
        "flagship saving {ratio:.1}% left its historical band (≈ 38%)"
    );
}

#[test]
fn flagship_utilization_band() {
    let point = flagship(30);
    let miec = point.mean_cpu_utilization(AllocatorKind::Miec) * 100.0;
    let ffps = point.mean_cpu_utilization(AllocatorKind::Ffps) * 100.0;
    assert!(
        (30.0..=55.0).contains(&miec),
        "MIEC CPU utilization {miec:.1}% left its band (≈ 41%)"
    );
    assert!(
        (12.0..=35.0).contains(&ffps),
        "FFPS CPU utilization {ffps:.1}% left its band (≈ 22%)"
    );
}

#[test]
fn catalog_totals_are_pinned() {
    use esvm::catalog;
    // Any change to the reconstructed Tables I/II shifts every figure;
    // pin their aggregate signature exactly.
    let cpu_sum: f64 = catalog::vm_types().iter().map(|t| t.cpu).sum();
    let mem_sum: f64 = catalog::vm_types().iter().map(|t| t.mem).sum();
    assert_eq!(cpu_sum, 85.5);
    assert!((mem_sum - 156.35).abs() < 1e-9);
    let peak_sum: f64 = catalog::server_types().iter().map(|t| t.p_peak).sum();
    let idle_sum: f64 = catalog::server_types().iter().map(|t| t.p_idle).sum();
    assert_eq!(peak_sum, 1580.0);
    assert_eq!(idle_sum, 713.0);
}

#[test]
fn exact_optimum_is_pinned_on_a_fixed_instance() {
    use esvm::Formulation;
    let problem = WorkloadConfig::new(4, 2)
        .mean_interarrival(2.0)
        .mean_duration(3.0)
        .vm_types(esvm::catalog::standard_vm_types())
        .generate(0)
        .unwrap();
    let exact = Formulation::new(&problem).solve().unwrap();
    // The exact optimum of a fixed instance is a single number; a change
    // here means the cost model itself changed.
    let reference = exact.decode(&problem).unwrap().total_cost();
    assert!((exact.objective - reference).abs() < 1e-6);
    assert!(exact.objective > 0.0);
    // Stash the value loosely: horizon and catalogs pin it to ~1e2-1e4.
    assert!(
        (100.0..=20_000.0).contains(&exact.objective),
        "optimum {} is wildly off",
        exact.objective
    );
}
