//! Differential harness: the parallel allocation layer against the
//! sequential oracle.
//!
//! Every [`AllocatorKind`], at every thread count, must reproduce the
//! sequential run *bit for bit*: the same placement vector, the same
//! `total_cost()`, and the same audited energy decomposition. This is
//! the contract that makes `ESVM_THREADS` safe to flip on anywhere —
//! parallelism is an execution detail, never an algorithmic one.

use esvm::{catalog, AllocatorKind, Miec, Parallelism, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [2, 4, 8];
const SEEDS: u64 = 50;

/// Per-(kind, seed) RNG, identical for the oracle and every parallel
/// rerun so any divergence is attributable to the thread count alone.
fn rng_for(kind: AllocatorKind, seed: u64) -> StdRng {
    let mut h: u64 = 0xA076_1D64_78BD_642F;
    for b in kind.name().bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
    }
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ h)
}

#[test]
fn every_kind_matches_the_sequential_oracle_bit_for_bit() {
    let config = WorkloadConfig::new(12, 6).mean_interarrival(3.0);
    for seed in 0..SEEDS {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in AllocatorKind::ALL {
            let oracle = kind
                .build_with(Parallelism::sequential())
                .allocate(&problem, &mut rng_for(kind, seed));
            for threads in THREADS {
                let parallel = kind
                    .build_with(Parallelism::new(threads))
                    .allocate(&problem, &mut rng_for(kind, seed));
                let ctx = format!("{} seed {seed} threads {threads}", kind.name());
                match (&oracle, &parallel) {
                    (Ok(seq), Ok(par)) => {
                        assert_eq!(seq.placement(), par.placement(), "{ctx}: placement");
                        assert_eq!(
                            seq.total_cost().to_bits(),
                            par.total_cost().to_bits(),
                            "{ctx}: total cost"
                        );
                        let sa = seq.audit().expect("oracle audit");
                        let pa = par.audit().expect("parallel audit");
                        assert_eq!(
                            sa.total_cost.to_bits(),
                            pa.total_cost.to_bits(),
                            "{ctx}: audited cost"
                        );
                        for (name, s, p) in [
                            ("run", sa.breakdown.run, pa.breakdown.run),
                            ("idle", sa.breakdown.idle, pa.breakdown.idle),
                            ("transition", sa.breakdown.transition, pa.breakdown.transition),
                        ] {
                            assert_eq!(s.to_bits(), p.to_bits(), "{ctx}: energy.{name}");
                        }
                    }
                    (Err(se), Err(pe)) => {
                        assert_eq!(format!("{se:?}"), format!("{pe:?}"), "{ctx}: error");
                    }
                    (seq, par) => panic!(
                        "{ctx}: oracle and parallel disagree on feasibility: \
                         {seq:?} vs {par:?}"
                    ),
                }
            }
        }
    }
}

/// The ISSUE-mandated sharded-engine matrix: shards {1, 2, 4, 8} ×
/// batch {1, 16, 256} × 25 seeds, for both allocators with a sharded
/// parallel path. Every cell must reproduce the sequential oracle's
/// placement, total cost and audited energy decomposition bit for bit
/// — shard ownership and batch windows are execution details, never
/// algorithmic ones.
#[test]
fn shard_and_batch_matrix_matches_the_oracle_bit_for_bit() {
    const SHARDS: [usize; 4] = [1, 2, 4, 8];
    const BATCHES: [usize; 3] = [1, 16, 256];
    let config = WorkloadConfig::new(14, 7).mean_interarrival(2.5);
    for seed in 0..25 {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in [AllocatorKind::Miec, AllocatorKind::MiecLocalSearch] {
            let oracle = kind
                .build_with(Parallelism::sequential())
                .allocate(&problem, &mut rng_for(kind, seed))
                .expect("oracle allocation succeeds");
            let sa = oracle.audit().expect("oracle audit");
            for shards in SHARDS {
                for batch in BATCHES {
                    let par = Parallelism::new(4).with_shards(shards).with_batch(batch);
                    let parallel = kind
                        .build_with(par)
                        .allocate(&problem, &mut rng_for(kind, seed))
                        .expect("parallel allocation succeeds");
                    let ctx = format!(
                        "{} seed {seed} shards {shards} batch {batch}",
                        kind.name()
                    );
                    assert_eq!(oracle.placement(), parallel.placement(), "{ctx}: placement");
                    assert_eq!(
                        oracle.total_cost().to_bits(),
                        parallel.total_cost().to_bits(),
                        "{ctx}: total cost"
                    );
                    let pa = parallel.audit().expect("parallel audit");
                    for (name, s, p) in [
                        ("run", sa.breakdown.run, pa.breakdown.run),
                        ("idle", sa.breakdown.idle, pa.breakdown.idle),
                        ("transition", sa.breakdown.transition, pa.breakdown.transition),
                    ] {
                        assert_eq!(s.to_bits(), p.to_bits(), "{ctx}: energy.{name}");
                    }
                }
            }
        }
    }
}

/// Adaptive mode (`Parallelism::auto` / `ESVM_THREADS=auto`) picks an
/// engine by problem size; whichever it picks, the results must match
/// the sequential oracle bit for bit. Three configurations pin down
/// the three reachable engines: a cutoff above the problem size keeps
/// the sequential engine, a cutoff of 1 forces the thread pool, and an
/// explicit shard override forces the sharded engine regardless of
/// size.
#[test]
fn auto_mode_matches_both_engines_bit_for_bit() {
    let config = WorkloadConfig::new(12, 6).mean_interarrival(3.0);
    let autos = [
        ("seq-engine", Parallelism::auto().with_threads(4).with_auto_cutoff(usize::MAX)),
        ("par-engine", Parallelism::auto().with_threads(4).with_auto_cutoff(1)),
        (
            "sharded-override",
            Parallelism::auto()
                .with_threads(4)
                .with_auto_cutoff(usize::MAX)
                .with_shards(4),
        ),
    ];
    for seed in 0..25 {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in AllocatorKind::ALL {
            let oracle = kind
                .build_with(Parallelism::sequential())
                .allocate(&problem, &mut rng_for(kind, seed))
                .expect("oracle allocation succeeds");
            let sa = oracle.audit().expect("oracle audit");
            for (label, par) in autos {
                let auto = kind
                    .build_with(par)
                    .allocate(&problem, &mut rng_for(kind, seed))
                    .expect("auto allocation succeeds");
                let ctx = format!("{} seed {seed} auto {label}", kind.name());
                assert_eq!(oracle.placement(), auto.placement(), "{ctx}: placement");
                assert_eq!(
                    oracle.total_cost().to_bits(),
                    auto.total_cost().to_bits(),
                    "{ctx}: total cost"
                );
                let aa = auto.audit().expect("auto audit");
                for (name, s, p) in [
                    ("run", sa.breakdown.run, aa.breakdown.run),
                    ("idle", sa.breakdown.idle, aa.breakdown.idle),
                    ("transition", sa.breakdown.transition, aa.breakdown.transition),
                ] {
                    assert_eq!(s.to_bits(), p.to_bits(), "{ctx}: energy.{name}");
                }
            }
        }
    }
}

#[test]
fn admission_decisions_are_thread_count_independent() {
    // Deliberately overloaded: many long-lived VMs on a two-server
    // fleet, so admission control actually rejects work.
    let config = WorkloadConfig::new(40, 2)
        .mean_interarrival(0.5)
        .mean_duration(20.0)
        .vm_types(catalog::standard_vm_types());
    let mut rejected_somewhere = false;
    for seed in 0..10 {
        let problem = config.generate(seed).expect("generation is feasible");
        let (seq_assignment, seq_rejected) = Miec::new()
            .allocate_with_admission(&problem)
            .expect("admission-controlled run cannot fail");
        rejected_somewhere |= !seq_rejected.is_empty();
        for threads in THREADS {
            let (par_assignment, par_rejected) = Miec::new()
                .with_parallelism(Parallelism::new(threads))
                .allocate_with_admission(&problem)
                .expect("admission-controlled run cannot fail");
            assert_eq!(seq_rejected, par_rejected, "seed {seed} threads {threads}");
            assert_eq!(
                seq_assignment.placement(),
                par_assignment.placement(),
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                seq_assignment.total_cost().to_bits(),
                par_assignment.total_cost().to_bits(),
                "seed {seed} threads {threads}"
            );
        }
    }
    assert!(
        rejected_somewhere,
        "the overload workload never triggered a rejection — the \
         admission-parity check is vacuous; tighten the configuration"
    );
}

#[test]
fn observed_decision_counters_are_thread_count_independent() {
    // The exact counters (everything except the documented approximate
    // diagnostics `miec.fp_ties` / `local_search.swaps_considered` /
    // `local_search.swap_fastpath_hits`) must not depend on threads.
    const EXACT_COUNTERS: [&str; 11] = [
        "miec.vms_placed",
        "miec.vms_rejected",
        "miec.candidates_considered",
        "miec.spec_class_pruned",
        "miec.unfit_skipped",
        "local_search.rounds",
        "local_search.relocates_considered",
        "local_search.relocates_accepted",
        "local_search.relocates_rejected",
        "local_search.spec_class_pruned",
        "local_search.swaps_accepted",
    ];
    let config = WorkloadConfig::new(20, 8).mean_interarrival(2.0);
    for seed in [3_u64, 17, 41] {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in [AllocatorKind::Miec, AllocatorKind::MiecLocalSearch] {
            let observe = |par: Parallelism| {
                let metrics = esvm::obs::MetricsRegistry::new();
                let mut sink = esvm::obs::MemorySink::new();
                kind.allocate_observed_with(
                    &problem,
                    &mut rng_for(kind, seed),
                    &mut sink,
                    &metrics,
                    par,
                )
                .expect("allocation succeeds");
                EXACT_COUNTERS.map(|name| metrics.counter(name))
            };
            let oracle = observe(Parallelism::sequential());
            for threads in THREADS {
                // shards = 0 is the auto policy; the explicit counts
                // cross shard boundaries through the batch windows.
                for (shards, batch) in [(0, 16), (1, 1), (2, 256), (8, 4)] {
                    let par = Parallelism::new(threads).with_shards(shards).with_batch(batch);
                    let parallel = observe(par);
                    for (name, (s, p)) in EXACT_COUNTERS.iter().zip(oracle.iter().zip(&parallel)) {
                        assert_eq!(
                            s, p,
                            "{} seed {seed} threads {threads} shards {shards} \
                             batch {batch}: counter {name}",
                            kind.name()
                        );
                    }
                }
            }
        }
    }
}
