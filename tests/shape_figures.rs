//! Integration tests asserting the *shape* claims of the paper's
//! evaluation (Section IV) at a statistically meaningful scale.
//!
//! These run the same experiment code as the `esvm` CLI, at reduced VM
//! counts but enough Monte-Carlo seeds that the qualitative claims are
//! stable. Absolute magnitudes are not asserted (they depend on the
//! reconstructed Tables I/II; see DESIGN.md) — only orderings,
//! monotonicity and sign.

use esvm::exper::{experiments, ExpOptions};
use esvm::AllocatorKind;
use esvm::{MonteCarlo, WorkloadConfig};

fn opts() -> ExpOptions {
    ExpOptions {
        seeds: 24,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        quick: true,
    }
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

/// Fig. 2 claims: MIEC saves energy everywhere; the saving grows from
/// short to long inter-arrival times; the VM-count series roughly
/// coincide (scalability).
#[test]
fn fig2_saving_grows_with_interarrival_and_scales() {
    let fig = experiments::fig2(&opts()).unwrap();
    assert_eq!(fig.series.len(), 5);
    let mut means = Vec::new();
    for s in &fig.series {
        let first = s.y.first().copied().unwrap();
        let last = s.y.last().copied().unwrap();
        assert!(
            last > first,
            "{}: saving at ia=10 ({last:.1}%) not above ia=0.5 ({first:.1}%)",
            s.label
        );
        assert!(last > 0.0, "{}: no saving at light load", s.label);
        means.push(mean(&s.y));
    }
    // Scalability: per-series means within a loose band of each other.
    let overall = mean(&means);
    for (s, m) in fig.series.iter().zip(&means) {
        assert!(
            (m - overall).abs() < overall * 0.5,
            "{}: mean {m:.1}% far from overall {overall:.1}%",
            s.label
        );
    }
}

/// Fig. 3 claims: MIEC lifts CPU utilization above FFPS and evens out
/// CPU vs memory; utilization decreases with inter-arrival time.
#[test]
fn fig3_utilization_claims() {
    let fig = experiments::fig3(&opts()).unwrap();
    let get = |l: &str| fig.series_by_label(l).unwrap().y.clone();
    let cpu_miec = get("CPU utilization of MIEC");
    let cpu_ffps = get("CPU utilization of FFPS");
    let mem_miec = get("memory utilization of MIEC");
    let mem_ffps = get("memory utilization of FFPS");

    assert!(mean(&cpu_miec) > mean(&cpu_ffps));
    assert!(mean(&mem_miec) > mean(&mem_ffps));
    // Evenness: |cpu − mem| gap smaller under MIEC.
    let gap = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
    };
    assert!(gap(&cpu_miec, &mem_miec) < gap(&cpu_ffps, &mem_ffps) + 3.0);
    // Utilization decreases with inter-arrival time (first vs last).
    assert!(cpu_miec.first().unwrap() > cpu_miec.last().unwrap());
    assert!(cpu_ffps.first().unwrap() > cpu_ffps.last().unwrap());
}

/// Fig. 4 claims: the reduction ratio decreases as the (memory) load
/// grows, with a saturating (logarithmic) profile.
#[test]
fn fig4_ratio_decreases_with_load() {
    let fig = experiments::fig4(&opts()).unwrap();
    for s in &fig.series {
        let n = s.y.len();
        // Series are sorted by ascending load.
        let light = mean(&s.y[..n / 2]);
        let heavy = mean(&s.y[n - n / 2..]);
        assert!(
            light > heavy,
            "{}: light-load saving {light:.1}% not above heavy-load {heavy:.1}%",
            s.label
        );
        let fit = s.fit.expect("log fit");
        assert!(fit.b < 0.0, "{}: log slope {:.2} not negative", s.label, fit.b);
    }
}

/// Fig. 5 claims: shorter transition times save more, at every
/// inter-arrival setting on average.
#[test]
fn fig5_transition_time_ordering() {
    let fig = experiments::fig5(&opts()).unwrap();
    let m = |l: &str| mean(&fig.series_by_label(l).unwrap().y);
    let t05 = m("transition time = 0.5 min");
    let t1 = m("transition time = 1 min");
    let t3 = m("transition time = 3 min");
    assert!(t05 > t3, "0.5 min ({t05:.1}%) not above 3 min ({t3:.1}%)");
    assert!(t1 > t3, "1 min ({t1:.1}%) not above 3 min ({t3:.1}%)");
}

/// Fig. 6 claims: shorter mean VM durations save more.
#[test]
fn fig6_duration_ordering() {
    let fig = experiments::fig6(&opts()).unwrap();
    let m = |l: &str| mean(&fig.series_by_label(l).unwrap().y);
    let d2 = m("mean length of time duration = 2 min");
    let d10 = m("mean length of time duration = 10 min");
    assert!(d2 > d10, "2 min ({d2:.1}%) not above 10 min ({d10:.1}%)");
}

/// Fig. 7 claims: positive savings on the standard-VMs / small-servers
/// workload with a saturating profile (log fit, positive slope).
#[test]
fn fig7_standard_workload_saves() {
    let fig = experiments::fig7(&opts()).unwrap();
    for s in &fig.series {
        assert!(mean(&s.y) > 0.0, "{}", s.label);
        let fit = s.fit.expect("log fit");
        assert!(fit.b > 0.0, "{}: slope {:.2}", s.label, fit.b);
    }
}

/// Fig. 8 claims: MIEC utilization beats FFPS in both fleets, and FFPS
/// suffers more when the fleet contains the big type-4/5 servers.
#[test]
fn fig8_fleet_comparison() {
    let fig = experiments::fig8(&opts()).unwrap();
    let m = |l: &str| mean(&fig.series_by_label(l).unwrap().y);
    for tag in ["(a) all types", "(b) types 1-3"] {
        assert!(
            m(&format!("{tag} CPU utilization of MIEC"))
                > m(&format!("{tag} CPU utilization of FFPS")),
            "{tag}: MIEC should beat FFPS on CPU utilization"
        );
    }
    assert!(
        m("(a) all types CPU utilization of FFPS")
            < m("(b) types 1-3 CPU utilization of FFPS") + 3.0,
        "FFPS should not do better with big servers in the fleet"
    );
}

/// Fig. 9 claims: reduction ratio decreases ~linearly with load, and
/// the all-server-types fleet saves more than types 1–3.
#[test]
fn fig9_load_lines() {
    let fig = experiments::fig9(&opts()).unwrap();
    assert_eq!(fig.series.len(), 4);
    for s in &fig.series {
        let fit = s.fit.expect("linear fit");
        assert!(
            fit.b < 0.0,
            "{}: slope {:.3} not negative",
            s.label,
            fit.b
        );
    }
    let m = |l: &str| mean(&fig.series_by_label(l).unwrap().y);
    assert!(
        m("vs CPU load (all types of servers used)")
            > m("vs CPU load (types 1-3 of servers used)"),
        "all-types fleet should save more"
    );
}

/// The headline comparison at the paper's flagship setting, plus the
/// ablation ordering: full MIEC ≥ α-blind MIEC ≥ FFPS on average.
#[test]
fn ablation_ordering_holds_at_flagship_setting() {
    let config = WorkloadConfig::new(60, 30)
        .mean_interarrival(4.0)
        .mean_duration(5.0)
        .transition_time(3.0); // α large enough for awareness to matter
    let point = MonteCarlo::new(30, 8)
        .compare(
            &config,
            &[
                AllocatorKind::Miec,
                AllocatorKind::MiecNoAlpha,
                AllocatorKind::Ffps,
            ],
        )
        .unwrap();
    let full = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec);
    let blind = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::MiecNoAlpha);
    assert!(full > 0.0, "MIEC must beat FFPS, got {full:.3}");
    assert!(
        full >= blind - 0.01,
        "α-aware scoring should not lose to α-blind: {full:.3} vs {blind:.3}"
    );
}
