//! Differential harness: decision-provenance tracing against the
//! uninstrumented allocators.
//!
//! The contract has two halves. First, tracing must be **inert**: for
//! every [`AllocatorKind`] and every engine (sequential and sharded
//! parallel), running under a tracer — disabled (`NoopTracer`) or
//! enabled (`CollectingTracer`) — must reproduce the plain run *bit
//! for bit*: same placement vector, same `total_cost()`. Any
//! instrumentation that changed a decision would poison every trace it
//! produced. Second, the provenance must be **faithful**: each placed
//! VM gets exactly one `place` explain record whose winner is the
//! server the placement vector actually names, and whose cost delta is
//! bit-identical to the increment the run charged.

use esvm::obs::{CollectingTracer, DecisionKind, DiscardSink, MetricsRegistry, NoopTracer};
use esvm::{
    AllocatorKind, ChaosEngine, FaultPlan, FaultPlanConfig, Parallelism, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 12;

fn rng_for(kind: AllocatorKind, seed: u64) -> StdRng {
    let mut h: u64 = 0xA076_1D64_78BD_642F;
    for b in kind.name().bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
    }
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ h)
}

fn engines() -> [Parallelism; 2] {
    [
        Parallelism::sequential(),
        Parallelism::new(4).with_shards(3).with_batch(8),
    ]
}

/// Every kind × both engines × disabled and enabled tracers: the traced
/// entry point is placement- and cost-bit-exact vs the plain one.
#[test]
fn traced_runs_match_plain_for_every_kind_and_engine() {
    let config = WorkloadConfig::new(40, 10).mean_interarrival(2.0);
    for seed in 0..SEEDS {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in AllocatorKind::ALL {
            for par in engines() {
                let plain = kind
                    .build_with(par)
                    .allocate(&problem, &mut rng_for(kind, seed))
                    .expect("plain run");
                let metrics = MetricsRegistry::new();
                let noop = kind
                    .allocate_traced_with(
                        &problem,
                        &mut rng_for(kind, seed),
                        &mut DiscardSink,
                        &metrics,
                        par,
                        &NoopTracer,
                    )
                    .expect("noop-traced run");
                let tracer = CollectingTracer::new();
                let metrics2 = MetricsRegistry::new();
                let collected = kind
                    .allocate_traced_with(
                        &problem,
                        &mut rng_for(kind, seed),
                        &mut DiscardSink,
                        &metrics2,
                        par,
                        &tracer,
                    )
                    .expect("collect-traced run");
                let ctx = format!("{} seed {seed} threads {}", kind.name(), par.threads());
                assert_eq!(plain.placement(), noop.placement(), "{ctx}: noop placement");
                assert_eq!(
                    plain.total_cost().to_bits(),
                    noop.total_cost().to_bits(),
                    "{ctx}: noop cost"
                );
                assert_eq!(
                    plain.placement(),
                    collected.placement(),
                    "{ctx}: traced placement"
                );
                assert_eq!(
                    plain.total_cost().to_bits(),
                    collected.total_cost().to_bits(),
                    "{ctx}: traced cost"
                );
                assert_eq!(tracer.open_spans(), 0, "{ctx}: spans left open");
            }
        }
    }
}

/// The MIEC family emits one `place` explain record per placed VM whose
/// winner is exactly the placement vector's entry for that VM.
#[test]
fn explain_records_name_the_placed_server_bit_for_bit() {
    let config = WorkloadConfig::new(60, 12).mean_interarrival(1.5);
    for seed in 0..SEEDS {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in [
            AllocatorKind::Miec,
            AllocatorKind::MiecNoAlpha,
            AllocatorKind::MiecBlindDuration,
        ] {
            for par in engines() {
                let tracer = CollectingTracer::new();
                let metrics = MetricsRegistry::new();
                let assignment = kind
                    .allocate_traced_with(
                        &problem,
                        &mut rng_for(kind, seed),
                        &mut DiscardSink,
                        &metrics,
                        par,
                        &tracer,
                    )
                    .expect("traced run");
                let ctx = format!("{} seed {seed} threads {}", kind.name(), par.threads());
                let placement = assignment.placement();
                let places: Vec<_> = tracer
                    .explains()
                    .into_iter()
                    .filter(|e| e.record.kind == DecisionKind::Place)
                    .collect();
                let placed = placement.iter().filter(|s| s.is_some()).count();
                assert_eq!(places.len(), placed, "{ctx}: one explain per placed VM");
                for e in &places {
                    let vm = usize::try_from(e.record.vm).unwrap();
                    let server = placement[vm].unwrap_or_else(|| {
                        panic!("{ctx}: explain for unplaced vm {vm}")
                    });
                    assert_eq!(
                        e.record.winner,
                        Some(server.index() as u64),
                        "{ctx}: vm {vm} winner"
                    );
                    assert!(e.record.delta_cost.is_finite(), "{ctx}: vm {vm} delta");
                    assert!(e.record.candidates >= 1, "{ctx}: vm {vm} candidates");
                }
            }
        }
    }
}

/// Chaos replay under an enabled tracer reproduces the untraced replay
/// bit for bit, and attributes repairs/sheds when faults displace VMs.
#[test]
fn chaos_replay_is_bit_exact_under_tracing_and_attributes_repairs() {
    let config = WorkloadConfig::new(48, 10).mean_interarrival(1.5);
    for seed in 0..4 {
        let problem = config.generate(seed).expect("generation is feasible");
        let plan = FaultPlan::generate(
            &FaultPlanConfig::with_fault_rate(0.5),
            problem.server_count(),
            problem.horizon(),
            seed,
        );
        let engine = ChaosEngine::new(plan);
        for kind in AllocatorKind::ALL {
            let allocator = kind.build_with(Parallelism::sequential());
            let plain = engine
                .run(&problem, &*allocator, &mut rng_for(kind, seed))
                .expect("plain replay");
            let tracer = CollectingTracer::new();
            let metrics = MetricsRegistry::new();
            let traced = engine
                .run_traced(
                    &problem,
                    &*allocator,
                    &mut rng_for(kind, seed),
                    &mut DiscardSink,
                    &metrics,
                    &tracer,
                )
                .expect("traced replay");
            let ctx = format!("{} seed {seed}", kind.name());
            assert_eq!(plain.placement, traced.placement, "{ctx}: placement");
            assert_eq!(plain.cost.to_bits(), traced.cost.to_bits(), "{ctx}: cost");
            assert_eq!(plain.repairs, traced.repairs, "{ctx}: repairs");
            assert_eq!(plain.shed, traced.shed, "{ctx}: shed");
            assert_eq!(tracer.open_spans(), 0, "{ctx}: spans left open");

            let explains = tracer.explains();
            let repairs = explains
                .iter()
                .filter(|e| e.record.kind == DecisionKind::Repair)
                .count();
            let sheds = explains
                .iter()
                .filter(|e| {
                    matches!(e.record.kind, DecisionKind::Shed | DecisionKind::Refuse)
                })
                .count();
            assert_eq!(repairs, traced.repairs.len(), "{ctx}: repair explains");
            assert_eq!(
                sheds,
                traced.shed.len() + traced.refused.len(),
                "{ctx}: shed/refuse explains"
            );
        }
    }
}

/// A full traced run's Chrome export stays structurally valid and its
/// span forest parents every span at a smaller id.
#[test]
fn chrome_export_of_a_real_run_is_structurally_sound() {
    let config = WorkloadConfig::new(40, 10);
    let problem = config.generate(9).expect("generation is feasible");
    let tracer = CollectingTracer::new();
    let metrics = MetricsRegistry::new();
    let kind = AllocatorKind::MiecLocalSearch;
    kind.allocate_traced_with(
        &problem,
        &mut rng_for(kind, 9),
        &mut DiscardSink,
        &metrics,
        Parallelism::new(4).with_shards(3).with_batch(8),
        &tracer,
    )
    .expect("traced run");
    let spans = tracer.spans();
    assert!(!spans.is_empty());
    for s in &spans {
        assert!(s.parent.0 < s.id.0, "parent after child: {s:?}");
    }
    let chrome = tracer.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
    let jsonl = tracer.to_jsonl();
    assert_eq!(
        jsonl.lines().count(),
        spans.len() + tracer.explains().len()
    );
}
