//! Differential harness: the ESVT columnar trace path against the
//! text-format path.
//!
//! The binary format is only trustworthy if it is *invisible* to the
//! allocators: for every algorithm and seed, a problem loaded from an
//! ESVT encoding must produce the same placement vector, the same
//! `total_cost()` bits, and the same audited energy decomposition as
//! the same problem round-tripped through the text format. A second
//! test pins the O(live) memory claim: the streaming reader's peak
//! resident batch is bounded by the block length no matter how long
//! the trace is.

use esvm::workload::{esvt, trace};
use esvm::{AllocatorKind, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 25;

/// Per-(kind, seed) RNG, identical for both loads so any divergence is
/// attributable to the trace format alone.
fn rng_for(kind: AllocatorKind, seed: u64) -> StdRng {
    let mut h: u64 = 0xA076_1D64_78BD_642F;
    for b in kind.name().bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
    }
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ h)
}

#[test]
fn every_kind_is_trace_format_blind_bit_for_bit() {
    let config = WorkloadConfig::new(30, 8).mean_interarrival(2.0);
    for seed in 0..SEEDS {
        let problem = config.generate(seed).expect("generation is feasible");

        // Both loads start from the same in-memory instance; a short
        // block length makes the ESVT path exercise many blocks.
        let from_text = trace::from_text(&trace::to_text(&problem)).expect("text load");
        let from_esvt =
            esvt::from_esvt(&esvt::to_esvt_with_block_len(&problem, 7)).expect("esvt load");

        for kind in AllocatorKind::ALL {
            let ctx = format!("{} seed {seed}", kind.name());
            let text_run = kind.build().allocate(&from_text, &mut rng_for(kind, seed));
            let esvt_run = kind.build().allocate(&from_esvt, &mut rng_for(kind, seed));

            match (&text_run, &esvt_run) {
                (Ok(text_run), Ok(esvt_run)) => {
                    assert_eq!(
                        text_run.placement(),
                        esvt_run.placement(),
                        "{ctx}: placement"
                    );
                    assert_eq!(
                        text_run.total_cost().to_bits(),
                        esvt_run.total_cost().to_bits(),
                        "{ctx}: total cost"
                    );
                    let ta = text_run.audit().expect("text audit");
                    let ea = esvt_run.audit().expect("esvt audit");
                    assert_eq!(
                        ta.total_cost.to_bits(),
                        ea.total_cost.to_bits(),
                        "{ctx}: audited cost"
                    );
                    for (name, t, e) in [
                        ("run", ta.breakdown.run, ea.breakdown.run),
                        ("idle", ta.breakdown.idle, ea.breakdown.idle),
                        ("transition", ta.breakdown.transition, ea.breakdown.transition),
                    ] {
                        assert_eq!(t.to_bits(), e.to_bits(), "{ctx}: energy.{name}");
                    }
                }
                // A greedy kind may legitimately fail on a tight
                // instance — both loads must then fail identically.
                (Err(te), Err(ee)) => {
                    assert_eq!(format!("{te:?}"), format!("{ee:?}"), "{ctx}: error");
                }
                (text, esvt) => panic!(
                    "{ctx}: the loads disagree on feasibility: {text:?} vs {esvt:?}"
                ),
            }
        }
    }
}

/// The streaming reader's peak resident batch equals the block length
/// (or the record count when smaller) — it does not grow with the
/// trace, which is the O(live) ingestion guarantee measured in
/// BENCH_trace.json.
#[test]
fn streaming_memory_ceiling_is_independent_of_trace_length() {
    const BLOCK_LEN: usize = 256;
    let mut ceilings = Vec::new();
    for vms in [2_000usize, 20_000] {
        let config = WorkloadConfig::new(vms, 64).mean_interarrival(0.5);
        let problem = config.generate(9).expect("generation is feasible");
        let bytes = esvt::to_esvt_with_block_len(&problem, BLOCK_LEN);
        let mut reader =
            esvt::TraceReader::new(std::io::Cursor::new(&bytes)).expect("valid trace");
        let mut total = 0u64;
        let stats = reader
            .for_each_batch(|batch| total += batch.len() as u64)
            .expect("stream succeeds");
        assert_eq!(total, vms as u64, "{vms} VMs all streamed");
        assert_eq!(
            stats.peak_resident, BLOCK_LEN,
            "{vms} VMs: peak resident batch"
        );
        ceilings.push(stats.peak_resident);
    }
    // 10× the records, identical ceiling.
    assert_eq!(ceilings[0], ceilings[1]);
}
