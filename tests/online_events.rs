//! Property tests for the online event engine.
//!
//! Arbitrary interleavings of arrivals, departures and fault events
//! must uphold the serving invariants:
//!
//! * an id is placed at most once, and a duplicate arrival is a typed
//!   error, not a second placement;
//! * a VM is never placed on a server that is down at decision time;
//! * every ledger's Eq. 7 decomposition stays consistent with its
//!   cost after *every* event, and the committed cost (retired +
//!   live) is conserved across departures and evictions;
//! * out-of-order arrivals and unknown departures are typed errors
//!   that leave the engine usable.

use std::collections::HashSet;

use esvm::{
    event_order, FaultEvent, FaultPlan, FaultPlanConfig, Interval, OnlineEngine, OnlineError,
    Resources, Vm, VmId, WorkloadConfig,
};
use proptest::prelude::*;

/// Asserts the per-ledger Eq. 7 decomposition and the conservation of
/// the committed cost after an event.
fn check_energy(engine: &OnlineEngine, ctx: &str) {
    let mut live_total = 0.0;
    for (i, ledger) in engine.ledgers().iter().enumerate() {
        let cost = ledger.cost();
        let breakdown = ledger.energy_breakdown().total();
        assert!(
            (cost - breakdown).abs() <= 1e-6 * cost.abs().max(1.0),
            "{ctx}: server {i} cost {cost} vs breakdown {breakdown}"
        );
        live_total += cost;
    }
    let committed = engine.committed_cost();
    let recomputed = engine.retired_cost() + live_total;
    assert!(
        (committed - recomputed).abs() <= 1e-6 * committed.abs().max(1.0),
        "{ctx}: committed {committed} vs retired+live {recomputed}"
    );
    assert!(committed.is_finite() && committed >= -1e-9, "{ctx}: {committed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The main interleaving property: a seeded workload's event
    /// stream, spliced with a seeded fault plan, never violates the
    /// placement or energy invariants.
    #[test]
    fn interleavings_uphold_the_serving_invariants(
        seed in 0u64..200,
        fault_seed in 0u64..200,
        fault_rate in 0.0f64..0.9,
    ) {
        let problem = WorkloadConfig::new(24, 6)
            .mean_interarrival(2.0)
            .generate(seed)
            .expect("generation is feasible");
        let horizon = problem.stats().horizon;
        let plan = FaultPlan::generate(
            &FaultPlanConfig::with_fault_rate(fault_rate),
            problem.server_count(),
            horizon,
            fault_seed,
        );

        let mut engine = OnlineEngine::new(problem.servers());
        let mut faults = plan.events().iter().peekable();
        let mut down: HashSet<u32> = HashSet::new();
        let mut placed_ids: HashSet<VmId> = HashSet::new();
        let mut committed_before_departures = engine.committed_cost();

        for event in event_order(problem.vms()) {
            // Faults strike as soon as the clock would reach them.
            while let Some(f) = faults.peek() {
                if f.at() > event.at() {
                    break;
                }
                match f {
                    FaultEvent::ServerDown { server, .. } => {
                        let evicted = engine.set_down(*server).expect("known server");
                        down.insert(server.0);
                        // Evicted ids stay consumed: irrevocability.
                        for vm in &evicted {
                            prop_assert!(placed_ids.contains(&vm.id()));
                        }
                    }
                    FaultEvent::ServerUp { server, .. } => {
                        engine.set_up(*server).expect("known server");
                        down.remove(&server.0);
                    }
                }
                check_energy(&engine, "after fault");
                faults.next();
            }

            let is_departure = event.is_departure();
            let vm_id = event.vm();
            match engine.apply(event) {
                Ok(Some(decision)) => {
                    if let Some(server) = decision.server() {
                        prop_assert!(
                            !down.contains(&server.0),
                            "placed on down server {server:?}"
                        );
                        prop_assert!(
                            !engine.is_down(server),
                            "engine disagrees on down state"
                        );
                        prop_assert!(
                            placed_ids.insert(vm_id),
                            "id {vm_id:?} placed twice"
                        );
                    }
                }
                Ok(None) => {}
                Err(e) => prop_assert!(
                    false,
                    "in-order stream event must be accepted: {e}"
                ),
            }
            if is_departure {
                // Departures move energy between the live ledgers and
                // the retired pool without changing the sum.
                let committed = engine.committed_cost();
                prop_assert!(
                    committed <= committed_before_departures.max(committed) + 1e-6
                );
            }
            committed_before_departures = engine.committed_cost();
            check_energy(&engine, "after event");
        }

        // Each id appears at most once in the decision log.
        let placements = engine.placement(problem.vm_count());
        let placed: Vec<_> = placements.iter().filter(|s| s.is_some()).collect();
        prop_assert_eq!(placed.len() as u64, engine.stats().placed);
        prop_assert!(engine.stats().placed + engine.stats().rejected
            == engine.stats().arrivals);

        // Drain the survivors; the committed cost is conserved.
        let before = engine.committed_cost();
        engine.drain();
        let after = engine.committed_cost();
        prop_assert!(
            (before - after).abs() <= 1e-6 * before.abs().max(1.0),
            "drain changed the committed cost: {before} -> {after}"
        );
        prop_assert_eq!(engine.live_count(), 0);
    }

    /// Duplicate ids, out-of-order starts and unknown departures are
    /// typed errors and never corrupt the session.
    #[test]
    fn protocol_violations_are_typed_errors(seed in 0u64..100) {
        let problem = WorkloadConfig::new(12, 4)
            .mean_interarrival(2.0)
            .generate(seed)
            .expect("generation is feasible");
        let mut engine = OnlineEngine::new(problem.servers());

        let vms = problem.vms();
        let mut order = problem.vms_by_start_time();
        order.sort_by_key(|&i| (vms[i].start(), vms[i].id()));
        let first = vms[order[0]].clone();
        engine.arrive(first.clone()).expect("first arrival");

        // Duplicate id — even with different demand.
        let dup = Vm::new(first.id(), Resources::new(1.0, 1.0), first.interval());
        prop_assert!(matches!(
            engine.arrive(dup),
            Err(OnlineError::DuplicateVm(id)) if id == first.id()
        ));

        // Advance the clock past the first start, then present an
        // arrival from the past.
        let late = order
            .iter()
            .map(|&i| &vms[i])
            .find(|v| v.start() > first.start());
        if let Some(late) = late {
            engine.arrive(late.clone()).expect("in-order arrival");
            let stale = Vm::new(
                9_000u32,
                Resources::new(1.0, 1.0),
                Interval::new(first.start(), late.start()),
            );
            let verdict = engine.arrive(stale);
            prop_assert!(
                matches!(verdict, Err(OnlineError::OutOfOrder { .. })),
                "stale arrival must be rejected, got {verdict:?}"
            );
        }

        // Departing a never-seen id is a typed error.
        prop_assert!(matches!(
            engine.depart(VmId(60_000)),
            Err(OnlineError::UnknownVm(VmId(60_000)))
        ));

        // The session survives all of the above.
        let stats = engine.stats();
        prop_assert!(stats.arrivals >= 1);
        check_energy(&engine, "after violations");
    }
}
