//! Differential harness: the chaos replay engine against the offline
//! allocators.
//!
//! The contract that makes fault injection trustworthy has two halves.
//! First, with an **empty fault plan** the replay engine must reproduce
//! the offline allocator *bit for bit* — same placement vector, same
//! `total_cost()`, same per-component energy breakdown — for every
//! [`AllocatorKind`], so that any difference observed in a chaos run is
//! attributable to the injected faults alone. Second, with faults
//! injected, every run must complete without panicking and the Eq. 7
//! decomposition (run + idle + transition) must still sum exactly to
//! each ledger's `cost()` — evictions and repairs may reshape the
//! schedule but can never break energy conservation.

use esvm::{
    AllocatorKind, ChaosEngine, ChaosError, EnergyBreakdown, FaultPlan, FaultPlanConfig,
    Parallelism, RepairPolicy, ServerLedger, ShedPolicy, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 50;

/// Per-(kind, seed) RNG, identical for the offline oracle and the
/// replay's phase 1 so any divergence is attributable to the replay.
fn rng_for(kind: AllocatorKind, seed: u64) -> StdRng {
    let mut h: u64 = 0xA076_1D64_78BD_642F;
    for b in kind.name().bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
    }
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ h)
}

/// The exact fold the engine uses: per-component sums over ledgers in
/// server order. Applied identically to both sides of the comparison.
fn fold_breakdown(ledgers: &[ServerLedger]) -> EnergyBreakdown {
    let mut total = EnergyBreakdown::default();
    for ledger in ledgers {
        let b = ledger.energy_breakdown();
        total.run += b.run;
        total.idle += b.idle;
        total.transition += b.transition;
    }
    total
}

#[test]
fn empty_plan_replay_matches_every_offline_kind_bit_for_bit() {
    let config = WorkloadConfig::new(12, 6).mean_interarrival(3.0);
    let engine = ChaosEngine::new(FaultPlan::empty());
    for seed in 0..SEEDS {
        let problem = config.generate(seed).expect("generation is feasible");
        for kind in AllocatorKind::ALL {
            let allocator = kind.build_with(Parallelism::sequential());
            let offline = allocator.allocate(&problem, &mut rng_for(kind, seed));
            let replay = engine.run(&problem, &*allocator, &mut rng_for(kind, seed));
            let ctx = format!("{} seed {seed}", kind.name());
            match (&offline, &replay) {
                (Ok(off), Ok(rep)) => {
                    assert_eq!(off.placement(), &rep.placement[..], "{ctx}: placement");
                    assert_eq!(
                        off.total_cost().to_bits(),
                        rep.cost.to_bits(),
                        "{ctx}: total cost"
                    );
                    assert_eq!(
                        off.total_cost().to_bits(),
                        rep.offline_cost.to_bits(),
                        "{ctx}: phase-1 cost"
                    );
                    let ob = fold_breakdown(off.ledgers());
                    for (name, o, r) in [
                        ("run", ob.run, rep.breakdown.run),
                        ("idle", ob.idle, rep.breakdown.idle),
                        ("transition", ob.transition, rep.breakdown.transition),
                    ] {
                        assert_eq!(o.to_bits(), r.to_bits(), "{ctx}: energy.{name}");
                    }
                    for (i, (ol, rl)) in off.ledgers().iter().zip(&rep.ledgers).enumerate() {
                        assert_eq!(
                            ol.cost().to_bits(),
                            rl.cost().to_bits(),
                            "{ctx}: server {i} cost"
                        );
                    }
                    assert!(rep.shed.is_empty(), "{ctx}: shed without faults");
                    assert!(rep.refused.is_empty(), "{ctx}: refused without faults");
                    assert_eq!(rep.displaced, 0, "{ctx}: displaced without faults");
                    assert_eq!(rep.extra_transitions, 0, "{ctx}: fault transitions");
                    assert_eq!(
                        rep.cost.to_bits(),
                        rep.adjusted_cost().to_bits(),
                        "{ctx}: empty-plan surcharge must be zero"
                    );
                }
                (Err(oe), Err(ChaosError::Offline(re))) => {
                    assert_eq!(format!("{oe:?}"), format!("{re:?}"), "{ctx}: error");
                }
                (offline, replay) => panic!(
                    "{ctx}: offline and replay disagree on feasibility: \
                     {offline:?} vs {replay:?}"
                ),
            }
        }
    }
}

#[test]
fn faulted_replays_complete_and_conserve_energy_for_every_kind() {
    let config = WorkloadConfig::new(16, 6).mean_interarrival(2.0);
    let plan_config = FaultPlanConfig::with_fault_rate(0.6);
    for seed in 0..12 {
        let problem = config.generate(seed).expect("generation is feasible");
        let plan = FaultPlan::generate(&plan_config, problem.server_count(), problem.horizon(), seed);
        for kind in AllocatorKind::ALL {
            let allocator = kind.build();
            let engine = ChaosEngine::new(plan.clone());
            let Ok(report) = engine.run(&problem, &*allocator, &mut rng_for(kind, seed)) else {
                continue; // offline infeasibility, not a chaos failure
            };
            let ctx = format!("{} seed {seed}", kind.name());
            // Eq. 7 conservation per ledger: the decomposition sums to
            // cost() exactly, whatever evictions reshaped the schedule.
            for (i, ledger) in report.ledgers.iter().enumerate() {
                assert_eq!(
                    ledger.cost().to_bits(),
                    ledger.energy_breakdown().total().to_bits(),
                    "{ctx}: server {i} conservation"
                );
            }
            let total: f64 = report.ledgers.iter().map(ServerLedger::cost).sum();
            assert_eq!(total.to_bits(), report.cost.to_bits(), "{ctx}: cost fold");
            let fold = fold_breakdown(&report.ledgers);
            for (name, a, b) in [
                ("run", fold.run, report.breakdown.run),
                ("idle", fold.idle, report.breakdown.idle),
                ("transition", fold.transition, report.breakdown.transition),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: breakdown.{name}");
            }
            // Degradation bookkeeping: refused VMs were never hosted,
            // and a VM is never both shed and refused.
            for vm in &report.refused {
                assert_eq!(report.placement[vm.index()], None, "{ctx}: refused {vm:?}");
            }
            for vm in &report.shed {
                assert!(!report.refused.contains(vm), "{ctx}: shed and refused");
            }
            assert!(
                report.fault_transition_energy.is_finite(),
                "{ctx}: surcharge"
            );
        }
    }
}

/// Sharded-path interaction: crash/repair replays where both phase 1
/// (sharded MIEC allocation) and phase 2 (chunked repair argmin) run on
/// worker threads must reproduce the fully-sequential replay bit for
/// bit — placements, repair records, shed/refused sets and energy all
/// identical. The workload uses 13 servers so the shard/chunk
/// boundaries fall inside the fleet and crashes displace VMs across
/// them.
#[test]
fn faulted_replay_with_parallel_repair_matches_sequential_bit_for_bit() {
    let config = WorkloadConfig::new(40, 13).mean_interarrival(1.5);
    let plan_config = FaultPlanConfig::with_fault_rate(0.7);
    for seed in 0..12 {
        let problem = config.generate(seed).expect("generation is feasible");
        let plan = FaultPlan::generate(&plan_config, problem.server_count(), problem.horizon(), seed);
        let sequential = ChaosEngine::new(plan.clone())
            .run(
                &problem,
                &*AllocatorKind::Miec.build(),
                &mut rng_for(AllocatorKind::Miec, seed),
            )
            .expect("offline phase is feasible");
        for (threads, shards, batch) in [(2, 1, 1), (4, 3, 16), (8, 8, 256)] {
            let par = Parallelism::new(threads).with_shards(shards).with_batch(batch);
            let parallel = ChaosEngine::new(plan.clone())
                .with_parallelism(par)
                .run(
                    &problem,
                    &*AllocatorKind::Miec.build_with(par),
                    &mut rng_for(AllocatorKind::Miec, seed),
                )
                .expect("offline phase is feasible");
            let ctx = format!("seed {seed} threads {threads} shards {shards} batch {batch}");
            assert_eq!(sequential.placement, parallel.placement, "{ctx}: placement");
            assert_eq!(sequential.repairs, parallel.repairs, "{ctx}: repair records");
            assert_eq!(sequential.shed, parallel.shed, "{ctx}: shed set");
            assert_eq!(sequential.refused, parallel.refused, "{ctx}: refused set");
            assert_eq!(
                sequential.cost.to_bits(),
                parallel.cost.to_bits(),
                "{ctx}: cost"
            );
            assert_eq!(
                sequential.offline_cost.to_bits(),
                parallel.offline_cost.to_bits(),
                "{ctx}: phase-1 cost"
            );
            for (name, a, b) in [
                ("run", sequential.breakdown.run, parallel.breakdown.run),
                ("idle", sequential.breakdown.idle, parallel.breakdown.idle),
                (
                    "transition",
                    sequential.breakdown.transition,
                    parallel.breakdown.transition,
                ),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: breakdown.{name}");
            }
        }
    }
    // The 0.7 fault rate over 12 seeds reliably produces repairs; make
    // that an explicit assertion on one replay so the test fails loudly
    // if plan generation ever becomes a no-op.
    let problem = config.generate(3).expect("generation is feasible");
    let plan = FaultPlan::generate(&plan_config, problem.server_count(), problem.horizon(), 3);
    let report = ChaosEngine::new(plan)
        .with_parallelism(Parallelism::new(4))
        .run(
            &problem,
            &*AllocatorKind::Miec.build(),
            &mut rng_for(AllocatorKind::Miec, 3),
        )
        .expect("offline phase is feasible");
    assert!(
        report.displaced > 0 || report.redirected_admissions > 0,
        "fault plan injected no displacements — parity test is vacuous"
    );
}

#[test]
fn replay_is_deterministic_per_plan_and_policy() {
    let config = WorkloadConfig::new(20, 5).mean_interarrival(1.5);
    let problem = config.generate(9).expect("generation is feasible");
    let plan = FaultPlan::generate(
        &FaultPlanConfig::with_fault_rate(0.7),
        problem.server_count(),
        problem.horizon(),
        21,
    );
    for shed in [
        ShedPolicy::SmallestRemainingFirst,
        ShedPolicy::LargestRemainingFirst,
        ShedPolicy::ArrivalOrder,
    ] {
        let policy = RepairPolicy {
            shed,
            ..RepairPolicy::default()
        };
        let run = || {
            ChaosEngine::new(plan.clone())
                .with_policy(policy)
                .run(
                    &problem,
                    &*AllocatorKind::Miec.build(),
                    &mut rng_for(AllocatorKind::Miec, 9),
                )
                .expect("offline phase is feasible")
        };
        let a = run();
        let b = run();
        assert_eq!(a.placement, b.placement, "{shed}: placement");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{shed}: cost");
        assert_eq!(a.shed, b.shed, "{shed}: shed set");
        assert_eq!(a.refused, b.refused, "{shed}: refused set");
        assert_eq!(
            a.displaced_vm_minutes, b.displaced_vm_minutes,
            "{shed}: displaced minutes"
        );
    }
}
