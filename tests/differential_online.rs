//! Differential harness: the online allocator against its offline
//! counterparts and against itself.
//!
//! Three contracts make `esvm serve` trustworthy:
//!
//! 1. **Determinism** — the online greedy is sequential by
//!    construction, so its placement must be bit-identical across
//!    thread counts (`ESVM_THREADS` is a no-op for it) and across
//!    repeated runs.
//! 2. **Source blindness** — a problem streamed from an ESVT trace
//!    must produce the same decisions as the same problem
//!    round-tripped through the text format.
//! 3. **The online ≥ offline bound** — irrevocable decisions can never
//!    beat the offline best (`min(MIEC, LocalSearch(online))`): local
//!    search only accepts improving moves, so the empirical
//!    competitive ratio is ≥ 1 on every seed, not just on average.

use esvm::workload::{esvt, trace};
use esvm::{Allocator, AllocatorKind, LocalSearch, Miec, Parallelism, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 25;
const KIND: AllocatorKind = AllocatorKind::OnlineGreedy;

fn rng_for(seed: u64) -> StdRng {
    let mut h: u64 = 0xA076_1D64_78BD_642F;
    for b in KIND.name().bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
    }
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ h)
}

fn config() -> WorkloadConfig {
    WorkloadConfig::new(30, 8).mean_interarrival(2.0)
}

#[test]
fn online_greedy_is_thread_count_blind_and_rerun_stable() {
    for seed in 0..SEEDS {
        let problem = config().generate(seed).expect("generation is feasible");
        let oracle = KIND
            .build_with(Parallelism::sequential())
            .allocate(&problem, &mut rng_for(seed));
        for threads in [1usize, 4] {
            // Two runs per thread count: one against the oracle, one
            // for plain rerun determinism.
            for round in 0..2 {
                let rerun = KIND
                    .build_with(Parallelism::new(threads))
                    .allocate(&problem, &mut rng_for(seed));
                let ctx = format!("seed {seed} threads {threads} round {round}");
                match (&oracle, &rerun) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.placement(), b.placement(), "{ctx}: placement");
                        assert_eq!(
                            a.total_cost().to_bits(),
                            b.total_cost().to_bits(),
                            "{ctx}: total cost"
                        );
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{ctx}: error");
                    }
                    (a, b) => panic!("{ctx}: feasibility disagrees: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn online_greedy_is_trace_format_blind_bit_for_bit() {
    for seed in 0..SEEDS {
        let problem = config().generate(seed).expect("generation is feasible");
        let from_text = trace::from_text(&trace::to_text(&problem)).expect("text load");
        let from_esvt =
            esvt::from_esvt(&esvt::to_esvt_with_block_len(&problem, 7)).expect("esvt load");

        let text_run = KIND.build().allocate(&from_text, &mut rng_for(seed));
        let esvt_run = KIND.build().allocate(&from_esvt, &mut rng_for(seed));
        let ctx = format!("seed {seed}");
        match (&text_run, &esvt_run) {
            (Ok(t), Ok(e)) => {
                assert_eq!(t.placement(), e.placement(), "{ctx}: placement");
                assert_eq!(
                    t.total_cost().to_bits(),
                    e.total_cost().to_bits(),
                    "{ctx}: total cost"
                );
                let ta = t.audit().expect("text audit");
                let ea = e.audit().expect("esvt audit");
                assert_eq!(
                    ta.total_cost.to_bits(),
                    ea.total_cost.to_bits(),
                    "{ctx}: audited cost"
                );
            }
            (Err(t), Err(e)) => {
                assert_eq!(format!("{t:?}"), format!("{e:?}"), "{ctx}: error");
            }
            (t, e) => panic!("{ctx}: the loads disagree on feasibility: {t:?} vs {e:?}"),
        }
    }
}

#[test]
fn online_cost_never_beats_the_offline_best() {
    let mut ratios = Vec::new();
    for seed in 0..SEEDS {
        let problem = config().generate(seed).expect("generation is feasible");
        let online = match KIND.build().allocate(&problem, &mut rng_for(seed)) {
            Ok(a) => a,
            // A tight instance the greedy cannot finish has no defined
            // ratio; the gap CLI reports it as infeasible.
            Err(_) => continue,
        };
        let offline = Miec::new()
            .allocate(&problem, &mut rng_for(seed))
            .expect("offline MIEC is feasible wherever online is");
        let refined = LocalSearch::new().refine(&online).expect("refine");

        let online_cost = online.total_cost();
        let best = offline.total_cost().min(refined.total_cost());
        assert!(
            refined.total_cost() <= online_cost + 1e-9,
            "seed {seed}: local search must not worsen the online run"
        );
        assert!(
            online_cost >= best - 1e-9,
            "seed {seed}: online {online_cost} < offline best {best}"
        );
        ratios.push(online_cost / best);
    }
    assert!(
        ratios.len() as u64 >= SEEDS - 2,
        "almost every seed must be feasible, got {}",
        ratios.len()
    );
    // The bound is tight enough to be meaningful: online never pays
    // more than 2x on this workload family.
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max < 2.0, "competitive ratio blew up: {max}");
}
