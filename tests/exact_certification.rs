//! Certification of the heuristics against the exact ILP optimum
//! (Section II's formulation, solved by the in-repo branch-and-bound).
//!
//! The key contract: the exact objective is a true lower bound for every
//! allocator, the decoded exact assignment audits to the same value the
//! MILP reports (the switch-off policy emerges from the `y`/`z`
//! variables), and MIEC is near-optimal on small instances.

use esvm::{Allocator, AllocatorKind, Formulation, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_instance(seed: u64) -> esvm::AllocationProblem {
    WorkloadConfig::new(4, 2)
        .mean_interarrival(2.0)
        .mean_duration(3.0)
        .vm_types(esvm::catalog::standard_vm_types())
        .generate(seed)
        .unwrap()
}

#[test]
fn exact_objective_matches_decoded_audit() {
    for seed in 0..6 {
        let problem = small_instance(seed);
        let exact = Formulation::new(&problem).solve().unwrap();
        let assignment = exact.decode(&problem).unwrap();
        let audit = assignment.audit().unwrap();
        assert!(
            (audit.total_cost - exact.objective).abs() < 1e-6,
            "seed {seed}: MILP objective {} vs audited {}",
            exact.objective,
            audit.total_cost
        );
    }
}

#[test]
fn no_heuristic_beats_the_proven_optimum() {
    for seed in 0..6 {
        let problem = small_instance(seed);
        let exact = Formulation::new(&problem).solve().unwrap();
        for kind in AllocatorKind::ALL {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let Ok(assignment) = kind.build().allocate(&problem, &mut rng) else {
                continue; // overloaded for this ordering — fine
            };
            assert!(
                assignment.total_cost() >= exact.objective - 1e-6,
                "seed {seed}: {kind} cost {} below optimum {}",
                assignment.total_cost(),
                exact.objective
            );
        }
    }
}

#[test]
fn miec_is_near_optimal_on_small_instances() {
    let mut total_gap = 0.0;
    let n = 6;
    for seed in 0..n {
        let problem = small_instance(seed);
        let exact = Formulation::new(&problem).solve().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let miec = esvm::Miec::new().allocate(&problem, &mut rng).unwrap();
        total_gap += miec.total_cost() / exact.objective - 1.0;
    }
    let mean_gap = total_gap / n as f64;
    assert!(
        mean_gap < 0.15,
        "MIEC mean optimality gap {:.1}% too large",
        mean_gap * 100.0
    );
}

#[test]
fn brute_force_enumeration_agrees_with_milp() {
    use esvm::{Assignment, ServerId};
    for seed in 0..4 {
        let problem = small_instance(seed);
        let n = problem.server_count() as u32;
        let m = problem.vm_count();
        // Enumerate all n^m placements.
        let mut best = f64::INFINITY;
        let mut stack = vec![0u32; m];
        'outer: loop {
            let placement: Vec<Option<ServerId>> =
                stack.iter().map(|&s| Some(ServerId(s))).collect();
            if let Ok(a) = Assignment::from_placement(&problem, &placement) {
                best = best.min(a.total_cost());
            }
            // Increment the mixed-radix counter.
            for digit in stack.iter_mut() {
                *digit += 1;
                if *digit < n {
                    continue 'outer;
                }
                *digit = 0;
            }
            break;
        }
        let exact = Formulation::new(&problem).solve().unwrap();
        assert!(
            (best - exact.objective).abs() < 1e-6,
            "seed {seed}: brute force {best} vs MILP {}",
            exact.objective
        );
    }
}
