//! Least-squares curve fits with adjusted R².
//!
//! Every figure in the paper is annotated with a fitting curve and its
//! adjusted R² ("The adjusted r-square … measures the goodness of fit.
//! The closer the fit is to the data points, the closer it will be to the
//! value of 1"). Three families appear:
//!
//! * **linear** `y = a + b·x` (Figs. 2, 5, 6, 9),
//! * **logarithmic** `y = a + b·ln x` (Figs. 4, 6, 7),
//! * **exponential** `y = a·e^{b·x}` (Fig. 5, 3-minute transition
//!   series).
//!
//! The logarithmic and exponential families are linearised
//! (`x → ln x`, `y → ln y`) and fitted by ordinary least squares; R² is
//! then computed **in the original y scale**, so the three families are
//! directly comparable, and adjusted as `1 − (1−R²)(n−1)/(n−2)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The fit family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FitKind {
    /// `y = a + b·x`
    Linear,
    /// `y = a + b·ln x` (requires `x > 0`)
    Logarithmic,
    /// `y = a·e^{b·x}` (requires `y > 0`)
    Exponential,
}

impl FitKind {
    /// All families, for best-fit selection.
    pub const ALL: [FitKind; 3] = [FitKind::Linear, FitKind::Logarithmic, FitKind::Exponential];
}

impl fmt::Display for FitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FitKind::Linear => "linear",
            FitKind::Logarithmic => "logarithm",
            FitKind::Exponential => "exponential",
        })
    }
}

/// A fitted curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// The family.
    pub kind: FitKind,
    /// Intercept-like parameter (`a`).
    pub a: f64,
    /// Slope-like parameter (`b`).
    pub b: f64,
    /// Coefficient of determination in the original y scale.
    pub r2: f64,
    /// Adjusted R²: `1 − (1−R²)(n−1)/(n−2)`.
    pub adj_r2: f64,
}

impl Fit {
    /// Evaluates the fitted curve at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        match self.kind {
            FitKind::Linear => self.a + self.b * x,
            FitKind::Logarithmic => self.a + self.b * x.ln(),
            FitKind::Exponential => self.a * (self.b * x).exp(),
        }
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FitKind::Linear => write!(f, "y = {:.4} + {:.4}·x", self.a, self.b)?,
            FitKind::Logarithmic => write!(f, "y = {:.4} + {:.4}·ln x", self.a, self.b)?,
            FitKind::Exponential => write!(f, "y = {:.4}·exp({:.4}·x)", self.a, self.b)?,
        }
        write!(f, " (Adj.R² = {:.3})", self.adj_r2)
    }
}

/// Plain OLS on already-transformed coordinates; returns `(a, b)`.
fn ols(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx).powi(2)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(u, v)| (u - mx) * (v - my)).sum();
    if sxx.abs() < 1e-12 {
        return None; // all x identical
    }
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

/// R² of predictions against observations in the original scale.
fn r_squared(y: &[f64], pred: &[f64]) -> f64 {
    let n = y.len() as f64;
    let my = y.iter().sum::<f64>() / n;
    let ss_tot: f64 = y.iter().map(|v| (v - my).powi(2)).sum();
    let ss_res: f64 = y.iter().zip(pred).map(|(v, p)| (v - p).powi(2)).sum();
    if ss_tot <= 1e-12 {
        // Constant data: perfect iff residuals vanish.
        return if ss_res <= 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Fits one family to `(x, y)`.
///
/// Returns `None` when the sample is too small (< 3 points), contains
/// non-finite values, violates a domain requirement (`x > 0` for
/// logarithmic, `y > 0` for exponential) or is degenerate (all `x`
/// equal).
///
/// # Example
///
/// ```
/// use esvm_analysis::fit::{fit, FitKind};
/// let x = [1.0f64, 2.0, 4.0, 8.0];
/// let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v.ln()).collect();
/// let f = fit(FitKind::Logarithmic, &x, &y).unwrap();
/// assert!((f.a - 3.0).abs() < 1e-9 && (f.b - 2.0).abs() < 1e-9);
/// assert!(f.adj_r2 > 0.999);
/// ```
pub fn fit(kind: FitKind, x: &[f64], y: &[f64]) -> Option<Fit> {
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return None;
    }
    let (tx, ty): (Vec<f64>, Vec<f64>) = match kind {
        FitKind::Linear => (x.to_vec(), y.to_vec()),
        FitKind::Logarithmic => {
            if x.iter().any(|&v| v <= 0.0) {
                return None;
            }
            (x.iter().map(|v| v.ln()).collect(), y.to_vec())
        }
        FitKind::Exponential => {
            if y.iter().any(|&v| v <= 0.0) {
                return None;
            }
            (x.to_vec(), y.iter().map(|v| v.ln()).collect())
        }
    };
    let (a_t, b) = ols(&tx, &ty)?;
    let (a, b) = match kind {
        FitKind::Exponential => (a_t.exp(), b),
        _ => (a_t, b),
    };
    let result = Fit {
        kind,
        a,
        b,
        r2: 0.0,
        adj_r2: 0.0,
    };
    let pred: Vec<f64> = x.iter().map(|&v| result.predict(v)).collect();
    let r2 = r_squared(y, &pred);
    let n = x.len() as f64;
    let adj_r2 = 1.0 - (1.0 - r2) * (n - 1.0) / (n - 2.0);
    Some(Fit {
        r2,
        adj_r2,
        ..result
    })
}

/// Fits every applicable family and returns the one with the highest
/// adjusted R².
pub fn best_fit(x: &[f64], y: &[f64]) -> Option<Fit> {
    FitKind::ALL
        .iter()
        .filter_map(|&k| fit(k, x, y))
        .max_by(|a, b| a.adj_r2.total_cmp(&b.adj_r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 7.0, 9.0, 11.0]; // 3 + 2x
        let f = fit(FitKind::Linear, &x, &y).unwrap();
        assert!((f.a - 3.0).abs() < 1e-12);
        assert!((f.b - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.adj_r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn exact_exponential_data() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| 2.0 * (0.5 * v).exp()).collect();
        let f = fit(FitKind::Exponential, &x, &y).unwrap();
        assert!((f.a - 2.0).abs() < 1e-9, "{f}");
        assert!((f.b - 0.5).abs() < 1e-9, "{f}");
        assert!(f.adj_r2 > 0.999);
    }

    #[test]
    fn noisy_linear_still_has_high_adj_r2() {
        let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.0 + 0.5 * v + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let f = fit(FitKind::Linear, &x, &y).unwrap();
        assert!(f.adj_r2 > 0.99, "{f}");
    }

    #[test]
    fn adjusted_r2_penalises_small_samples() {
        // Same R², fewer points → lower Adj.R².
        let x3 = [1.0, 2.0, 3.0];
        let y3 = [1.0, 2.2, 2.8];
        let x6 = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y6 = [1.0, 2.2, 2.8, 4.1, 4.9, 6.2];
        let f3 = fit(FitKind::Linear, &x3, &y3).unwrap();
        let f6 = fit(FitKind::Linear, &x6, &y6).unwrap();
        assert!(f3.adj_r2 < f3.r2 + 1e-12);
        assert!(f6.r2 - f6.adj_r2 < f3.r2 - f3.adj_r2);
    }

    #[test]
    fn domain_violations_are_rejected() {
        assert!(fit(FitKind::Logarithmic, &[0.0, 1.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(fit(FitKind::Exponential, &[1.0, 2.0, 3.0], &[1.0, -1.0, 3.0]).is_none());
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(fit(FitKind::Linear, &[1.0, 2.0], &[1.0, 2.0]).is_none()); // too few
        assert!(fit(FitKind::Linear, &[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none()); // x const
        assert!(fit(FitKind::Linear, &[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0]).is_none());
        assert!(fit(FitKind::Linear, &[1.0, 2.0, 3.0], &[1.0, 2.0]).is_none()); // arity
    }

    #[test]
    fn constant_y_fits_perfectly_with_zero_slope() {
        let f = fit(FitKind::Linear, &[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert!((f.b).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_fit_selects_the_right_family() {
        let x = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let log_y: Vec<f64> = x.iter().map(|&v: &f64| 1.0 + 2.0 * v.ln()).collect();
        assert_eq!(best_fit(&x, &log_y).unwrap().kind, FitKind::Logarithmic);
        let lin_y: Vec<f64> = x.iter().map(|v| 1.0 + 2.0 * v).collect();
        assert_eq!(best_fit(&x, &lin_y).unwrap().kind, FitKind::Linear);
        let exp_y: Vec<f64> = x.iter().map(|v| 3.0 * (0.1 * v).exp()).collect();
        assert_eq!(best_fit(&x, &exp_y).unwrap().kind, FitKind::Exponential);
    }

    #[test]
    fn display_shows_formula_and_adj_r2() {
        let f = fit(FitKind::Linear, &[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        let s = f.to_string();
        assert!(s.contains("Adj.R²") && s.contains("y ="), "{s}");
        assert_eq!(FitKind::Logarithmic.to_string(), "logarithm");
    }
}
