//! Self-contained SVG line plots.
//!
//! A small, dependency-free plotting backend for the HTML report
//! (`esvm report`): scatter markers per series, optional smooth fitted
//! curves, auto-scaled axes with 1-2-5 ticks, grid and legend. Output
//! is a single `<svg>` element ready for embedding.

use crate::fit::Fit;
use std::fmt::Write as _;

/// Canvas geometry.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 48.0;

/// Categorical palette (Okabe–Ito, colour-blind safe).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// One plotted series.
#[derive(Debug, Clone)]
struct PlotSeries {
    label: String,
    points: Vec<(f64, f64)>,
    fit: Option<Fit>,
}

/// A line/scatter plot under construction.
///
/// # Example
///
/// ```
/// use esvm_analysis::plot::LinePlot;
/// let svg = LinePlot::new("demo", "x", "y")
///     .series("squares", &[(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)])
///     .to_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("squares"));
/// ```
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<PlotSeries>,
}

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series of `(x, y)` points.
    pub fn series(mut self, label: impl Into<String>, points: &[(f64, f64)]) -> Self {
        self.series.push(PlotSeries {
            label: label.into(),
            points: points.to_vec(),
            fit: None,
        });
        self
    }

    /// Adds a series together with its fitted curve (drawn dashed).
    pub fn series_with_fit(
        mut self,
        label: impl Into<String>,
        points: &[(f64, f64)],
        fit: Option<Fit>,
    ) -> Self {
        self.series.push(PlotSeries {
            label: label.into(),
            points: points.to_vec(),
            fit,
        });
        self
    }

    /// Number of series added so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the plot has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the plot.
    pub fn to_svg(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let x_ticks = ticks(x_min, x_max);
        let y_ticks = ticks(y_min, y_max);
        // Expand bounds to tick extremes for clean framing.
        let x_min = x_min.min(x_ticks.first().copied().unwrap_or(x_min));
        let x_max = x_max.max(x_ticks.last().copied().unwrap_or(x_max));
        let y_min = y_min.min(y_ticks.first().copied().unwrap_or(y_min));
        let y_max = y_max.max(y_ticks.last().copied().unwrap_or(y_max));

        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = move |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
        let sy = move |y: f64| {
            MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min).max(1e-12) * plot_h
        };

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect x="0" y="0" width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{:.0}" y="22" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{:.0}" y="{:.0}" text-anchor="middle">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            HEIGHT - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="14" y="{:.0}" text-anchor="middle" transform="rotate(-90 14 {:.0})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Grid and ticks.
        for &t in &x_ticks {
            let x = sx(t);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                MARGIN_TOP,
                MARGIN_TOP + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                MARGIN_TOP + plot_h + 16.0,
                tick_label(t)
            );
        }
        for &t in &y_ticks {
            let y = sy(t);
            let _ = write!(
                svg,
                r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                MARGIN_LEFT,
                MARGIN_LEFT + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{y:.1}" text-anchor="end" dominant-baseline="middle">{}</text>"#,
                MARGIN_LEFT - 6.0,
                tick_label(t)
            );
        }
        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
        );

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            // Connecting polyline.
            if s.points.len() > 1 {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                    .collect();
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5" opacity="0.7"/>"#,
                    pts.join(" ")
                );
            }
            // Markers.
            for &(x, y) in &s.points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Fitted curve, sampled densely, dashed.
            if let Some(fit) = s.fit {
                let n = 60;
                let pts: Vec<String> = (0..=n)
                    .filter_map(|k| {
                        let x = x_min + (x_max - x_min) * k as f64 / n as f64;
                        let y = fit.predict(x);
                        (y.is_finite() && y >= y_min && y <= y_max)
                            .then(|| format!("{:.1},{:.1}", sx(x), sy(y)))
                    })
                    .collect();
                if pts.len() > 1 {
                    let _ = write!(
                        svg,
                        r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.2" stroke-dasharray="5,4"/>"#,
                        pts.join(" ")
                    );
                }
            }
        }

        // Legend (top-right inside the frame).
        let legend_x = MARGIN_LEFT + 10.0;
        for (i, s) in self.series.iter().enumerate() {
            let y = MARGIN_TOP + 14.0 + i as f64 * 15.0;
            let color = PALETTE[i % PALETTE.len()];
            let _ = write!(
                svg,
                r#"<circle cx="{legend_x:.1}" cy="{y:.1}" r="4" fill="{color}"/>"#
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" dominant-baseline="middle">{}</text>"#,
                legend_x + 9.0,
                y + 1.0,
                escape(&s.label)
            );
        }

        svg.push_str("</svg>");
        svg
    }

    /// Data bounds over all series (degenerate data gets a unit box).
    fn bounds(&self) -> (f64, f64, f64, f64) {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for (x, y) in all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_min -= 0.5;
            x_max += 0.5;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_min -= 0.5;
            y_max += 0.5;
        }
        (x_min, x_max, y_min, y_max)
    }
}

/// ~5 round ticks covering `[lo, hi]` on the 1-2-5 ladder.
fn ticks(lo: f64, hi: f64) -> Vec<f64> {
    let range = (hi - lo).max(1e-12);
    let raw_step = range / 5.0;
    let magnitude = 10f64.powf(raw_step.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * magnitude)
        .find(|&s| range / s <= 6.0)
        .unwrap_or(magnitude * 10.0);
    let first = (lo / step).floor() * step;
    let mut out = Vec::new();
    let mut t = first;
    while t <= hi + step * 1.001 {
        out.push((t / step).round() * step);
        t += step;
    }
    out
}

/// Compact tick label.
fn tick_label(t: f64) -> String {
    if t == 0.0 {
        "0".to_owned()
    } else if t.abs() >= 1000.0 {
        format!("{:.0}k", t / 1000.0)
    } else if t.fract().abs() < 1e-9 {
        format!("{t:.0}")
    } else {
        format!("{t}")
    }
}

/// Minimal XML escaping for labels.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit, FitKind};

    fn sample() -> LinePlot {
        LinePlot::new("t", "x", "y")
            .series("a", &[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)])
            .series("b", &[(1.0, 1.0), (3.0, 2.0)])
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5 + 2); // markers + legend
        assert!(svg.contains(">a</text>") && svg.contains(">b</text>"));
    }

    #[test]
    fn fitted_curve_is_dashed() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let f = fit(FitKind::Linear, &x, &y);
        let points: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
        let svg = LinePlot::new("t", "x", "y")
            .series_with_fit("lin", &points, f)
            .to_svg();
        assert!(svg.contains("stroke-dasharray"), "{svg}");
    }

    #[test]
    fn ticks_are_round_and_cover() {
        let t = ticks(0.0, 10.0);
        assert!(t.contains(&0.0) && t.contains(&10.0), "{t:?}");
        let t = ticks(12.3, 87.9);
        assert!(t.first().unwrap() <= &12.3 && t.last().unwrap() >= &87.9);
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
        // 1-2-5 ladder: steps are round.
        let step = t[1] - t[0];
        let mag = 10f64.powf(step.log10().floor());
        let m = step / mag;
        assert!(
            [1.0, 2.0, 5.0, 10.0].iter().any(|&k| (m - k).abs() < 1e-9),
            "step {step}"
        );
    }

    #[test]
    fn degenerate_data_does_not_panic() {
        let svg = LinePlot::new("t", "x", "y")
            .series("point", &[(5.0, 5.0)])
            .to_svg();
        assert!(svg.contains("<circle"));
        let svg = LinePlot::new("t", "x", "y").to_svg();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = LinePlot::new("a<b & c", "x", "y")
            .series("s<1>", &[(0.0, 0.0), (1.0, 1.0)])
            .to_svg();
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("s<1>"));
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(tick_label(0.0), "0");
        assert_eq!(tick_label(2500.0), "2k"); // 2.5k rounds via {:.0}
        assert_eq!(tick_label(5.0), "5");
        assert_eq!(tick_label(2.5), "2.5");
    }
}
