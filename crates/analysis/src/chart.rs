//! Plain-text charts: sparklines and labelled strip charts for
//! terminal output of time series (power draw, active servers).

/// The eight block glyphs used for sparklines, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a one-line sparkline, scaled to its own maximum.
/// Empty input renders as an empty string; an all-zero series renders as
/// all-minimum glyphs.
///
/// # Example
///
/// ```
/// use esvm_analysis::chart::sparkline;
/// let s = sparkline(&[0.0, 1.0, 2.0, 4.0]);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.ends_with('█'));
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BLOCKS[0]
            } else {
                let idx = ((v / max) * 8.0).ceil() as usize;
                BLOCKS[idx.clamp(1, 8) - 1]
            }
        })
        .collect()
}

/// Downsamples a series to at most `width` points by averaging buckets,
/// so long horizons fit a terminal line.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if width == 0 || values.is_empty() || values.len() <= width {
        return values.to_vec();
    }
    let n = values.len();
    (0..width)
        .map(|b| {
            let start = b * n / width;
            let end = (((b + 1) * n) / width).max(start + 1);
            values[start..end].iter().sum::<f64>() / (end - start) as f64
        })
        .collect()
}

/// A labelled strip chart: the sparkline prefixed with a caption and
/// suffixed with the series' min/mean/max, downsampled to `width`.
///
/// # Example
///
/// ```
/// use esvm_analysis::chart::strip;
/// let line = strip("power (W)", &[10.0, 20.0, 30.0], 40);
/// assert!(line.starts_with("power (W)"));
/// assert!(line.contains("max 30"));
/// ```
pub fn strip(label: &str, values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return format!("{label:<16} (empty)");
    }
    let sampled = downsample(values, width);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    format!(
        "{label:<16} {}  min {min:.0} / mean {mean:.0} / max {max:.0}",
        sparkline(&sampled)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_levels_are_monotone() {
        let s: Vec<char> = sparkline(&[1.0, 2.0, 4.0, 8.0]).chars().collect();
        for w in s.windows(2) {
            let a = BLOCKS.iter().position(|&b| b == w[0]).unwrap();
            let b = BLOCKS.iter().position(|&b| b == w[1]).unwrap();
            assert!(a <= b);
        }
        assert_eq!(*s.last().unwrap(), '█');
    }

    #[test]
    fn zeros_render_as_floor() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn max_maps_to_full_block_small_to_low_block() {
        let s: Vec<char> = sparkline(&[0.01, 100.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn downsample_preserves_mean() {
        let values: Vec<f64> = (0..1000).map(|i| f64::from(i % 10)).collect();
        let sampled = downsample(&values, 50);
        assert_eq!(sampled.len(), 50);
        let mean_full = values.iter().sum::<f64>() / values.len() as f64;
        let mean_sampled = sampled.iter().sum::<f64>() / sampled.len() as f64;
        assert!((mean_full - mean_sampled).abs() < 0.5);
    }

    #[test]
    fn downsample_short_series_is_identity() {
        let values = vec![1.0, 2.0, 3.0];
        assert_eq!(downsample(&values, 10), values);
        assert_eq!(downsample(&values, 0), values);
    }

    #[test]
    fn strip_reports_stats() {
        let line = strip("active", &[1.0, 3.0, 5.0], 10);
        assert!(line.contains("min 1") && line.contains("mean 3") && line.contains("max 5"));
    }

    #[test]
    fn strip_handles_empty() {
        assert!(strip("x", &[], 10).contains("empty"));
    }
}
