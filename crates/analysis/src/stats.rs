//! Descriptive statistics over Monte-Carlo runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a sample.
///
/// # Example
///
/// ```
/// use esvm_analysis::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample; `None` when empty or containing non-finite
    /// values.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        Some(Summary {
            n,
            mean,
            std_dev,
            sem: std_dev / (n as f64).sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// A normal-approximation 95 % confidence interval for the mean:
    /// `mean ± 1.96 · sem`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.sem;
        (self.mean - half, self.mean + half)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4} ± {:.4} (n = {}, range [{:.4}, {:.4}])",
            self.mean, self.sem, self.n, self.min, self.max
        )
    }
}

/// A percentile bootstrap confidence interval for the mean of a paired
/// statistic, e.g. the energy-reduction ratio over Monte-Carlo seeds.
///
/// The normal-approximation CI of [`Summary::ci95`] is unreliable for
/// the ratio statistic at the paper's 50-seed sample sizes (FFPS costs
/// are heavily right-skewed by the random server ordering); resampling
/// does not assume a shape.
///
/// Deterministic: resampling uses a fixed-seed `SplitMix64` stream, so
/// reported intervals are reproducible.
///
/// # Example
///
/// ```
/// use esvm_analysis::stats::bootstrap_mean_ci;
/// let data = [0.1, 0.2, 0.15, 0.12, 0.18, 0.11, 0.22, 0.16];
/// let (lo, hi) = bootstrap_mean_ci(&data, 2000, 0.95).unwrap();
/// let mean = data.iter().sum::<f64>() / data.len() as f64;
/// assert!(lo <= mean && mean <= hi);
/// ```
pub fn bootstrap_mean_ci(
    samples: &[f64],
    resamples: usize,
    confidence: f64,
) -> Option<(f64, f64)> {
    if samples.is_empty()
        || resamples == 0
        || !(0.0..1.0).contains(&confidence)
        || samples.iter().any(|v| !v.is_finite())
    {
        return None;
    }
    // SplitMix64: tiny, seedable, good enough for index resampling.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let n = samples.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += samples[(next() % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let tail = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64) * tail) as usize;
    let hi_idx = (((resamples as f64) * (1.0 - tail)) as usize).min(resamples - 1);
    Some((means[lo_idx], means[hi_idx]))
}

/// A paired sign-flip permutation test for `mean(a − b) > 0`.
///
/// Under the null hypothesis that the paired difference is symmetric
/// around zero, each difference's sign is exchangeable; the returned
/// one-sided p-value is the fraction of random sign assignments whose
/// mean difference is at least the observed one. Used to check that a
/// measured energy saving (per-seed MIEC-vs-FFPS cost pairs) is not a
/// Monte-Carlo fluke. Deterministic (fixed-seed SplitMix64).
///
/// Returns `None` for empty/invalid input or `resamples == 0`.
///
/// # Example
///
/// ```
/// use esvm_analysis::stats::paired_permutation_test;
/// let ffps = [10.0, 12.0, 11.0, 13.0, 12.5, 11.5];
/// let miec = [ 8.0,  9.0,  8.5, 10.0,  9.5,  9.0];
/// let p = paired_permutation_test(&ffps, &miec, 4000).unwrap();
/// assert!(p < 0.05, "consistent saving should be significant, p = {p}");
/// ```
pub fn paired_permutation_test(a: &[f64], b: &[f64], resamples: usize) -> Option<f64> {
    if a.len() != b.len()
        || a.is_empty()
        || resamples == 0
        || a.iter().chain(b).any(|v| !v.is_finite())
    {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let observed: f64 = diffs.iter().sum::<f64>() / diffs.len() as f64;

    let mut state = 0x0DD0_11EA_5EED_5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut at_least = 0usize;
    for _ in 0..resamples {
        let mut sum = 0.0;
        for &d in &diffs {
            // One random bit per difference.
            if next() & 1 == 0 {
                sum += d;
            } else {
                sum -= d;
            }
        }
        if sum / diffs.len() as f64 >= observed - 1e-15 {
            at_least += 1;
        }
    }
    // Add-one smoothing keeps the p-value away from an impossible 0.
    Some((at_least + 1) as f64 / (resamples + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_test_detects_a_real_effect() {
        let base: Vec<f64> = (0..40).map(|i| 100.0 + f64::from(i % 7)).collect();
        let better: Vec<f64> = base.iter().map(|v| v - 5.0).collect();
        let p = paired_permutation_test(&base, &better, 4000).unwrap();
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn permutation_test_accepts_the_null() {
        // Symmetric noise around zero difference: p should be large.
        let a: Vec<f64> = (0..40).map(|i| f64::from(i % 2)).collect();
        let b: Vec<f64> = (0..40).map(|i| f64::from((i + 1) % 2)).collect();
        let p = paired_permutation_test(&a, &b, 4000).unwrap();
        assert!(p > 0.2, "p = {p}");
    }

    #[test]
    fn permutation_test_is_deterministic_and_validates() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 1.5, 2.5];
        assert_eq!(
            paired_permutation_test(&a, &b, 500),
            paired_permutation_test(&a, &b, 500)
        );
        assert!(paired_permutation_test(&a, &b[..2], 10).is_none());
        assert!(paired_permutation_test(&[], &[], 10).is_none());
        assert!(paired_permutation_test(&a, &b, 0).is_none());
        assert!(paired_permutation_test(&[f64::NAN, 1.0, 2.0], &b, 10).is_none());
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let data: Vec<f64> = (0..60).map(|i| f64::from(i % 7)).collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&data, 4000, 0.95).unwrap();
        assert!(lo < mean && mean < hi, "({lo}, {hi}) vs {mean}");
        // Interval width shrinks with higher confidence demanded less.
        let (lo50, hi50) = bootstrap_mean_ci(&data, 4000, 0.5).unwrap();
        assert!(hi50 - lo50 < hi - lo);
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert_eq!(
            bootstrap_mean_ci(&data, 1000, 0.9),
            bootstrap_mean_ci(&data, 1000, 0.9)
        );
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        assert!(bootstrap_mean_ci(&[], 100, 0.9).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.9).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.0).is_none());
        assert!(bootstrap_mean_ci(&[f64::NAN], 100, 0.9).is_none());
        // Single constant sample: CI collapses to the point.
        assert_eq!(bootstrap_mean_ci(&[4.0], 100, 0.9), Some((4.0, 4.0)));
    }

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n−1 = 7: Σ(x−5)² = 32 → √(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.sem, 0.0);
        assert_eq!(s.ci95(), (3.5, 3.5));
    }

    #[test]
    fn empty_and_nan_are_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn ci95_brackets_the_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
        assert!((hi - s.mean - 1.96 * s.sem).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_mean_and_n() {
        let s = Summary::of(&[1.0, 3.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("mean 2.0000") && text.contains("n = 2"), "{text}");
    }
}
