//! Plain-text and CSV table rendering.

use std::fmt;

/// A simple column-aligned table for CLI output and EXPERIMENTS.md.
///
/// # Example
///
/// ```
/// use esvm_analysis::Table;
/// let mut t = Table::new(vec!["algo", "cost"]);
/// t.row(vec!["miec".into(), "123.4".into()]);
/// t.row(vec!["ffps".into(), "150.0".into()]);
/// let text = t.to_string();
/// assert!(text.contains("miec") && text.contains("150.0"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics on an empty header list.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} does not match header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of formatted floats with `precision` decimals; the
    /// first cell stays textual (typical "label + numbers" rows).
    pub fn row_labeled(&mut self, label: impl Into<String>, values: &[f64], precision: usize) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering (no quoting — cells in this workspace are labels and
    /// numbers; commas in cells are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any cell contains a comma or newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                assert!(
                    !cell.contains(',') && !cell.contains('\n'),
                    "cell {cell:?} needs quoting, which this emitter does not support"
                );
                if i > 0 {
                    out.push(',');
                }
                out.push_str(cell);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "x", "y"]);
        t.row(vec!["alpha".into(), "1".into(), "2.50".into()]);
        t.row(vec!["beta-long-name".into(), "10".into(), "3.75".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns make all data lines equally long.
        assert_eq!(lines[2].len(), lines[3].len());
        // "2.50" and "3.75" (last column) end at the same offset.
        assert_eq!(
            lines[2].rfind("2.50").unwrap(),
            lines[3].rfind("3.75").unwrap()
        );
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name,x,y");
        assert!(lines[2].starts_with("beta-long-name,10,"));
    }

    #[test]
    fn row_labeled_formats_floats() {
        let mut t = Table::new(vec!["algo", "a", "b"]);
        t.row_labeled("miec", &[1.23456, 7.0], 2);
        assert!(t.to_string().contains("1.23"));
        assert!(t.to_string().contains("7.00"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "quoting")]
    fn csv_rejects_commas_in_cells() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        let _ = t.to_csv();
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_is_rejected() {
        let _ = Table::new(Vec::<String>::new());
    }
}
