//! The paper's evaluation metrics.

/// The energy reduction ratio of Section IV-A: "the reduced cost divided
/// by the cost of FFPS", i.e. `(baseline − ours) / baseline`.
///
/// Positive when `ours` is cheaper. Returns 0 for a zero baseline (both
/// costs must then be zero for a feasible comparison).
///
/// # Example
///
/// ```
/// use esvm_analysis::energy_reduction_ratio;
/// assert_eq!(energy_reduction_ratio(200.0, 160.0), 0.2);
/// assert_eq!(energy_reduction_ratio(100.0, 110.0), -0.1);
/// ```
///
/// # Panics
///
/// Panics if either cost is negative or non-finite.
pub fn energy_reduction_ratio(baseline: f64, ours: f64) -> f64 {
    assert!(
        baseline.is_finite() && ours.is_finite() && baseline >= 0.0 && ours >= 0.0,
        "costs must be finite and non-negative: baseline={baseline}, ours={ours}"
    );
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline
    }
}

/// Mean of per-run energy reduction ratios (the paper averages the ratio
/// over 50 random runs, not the costs).
///
/// # Panics
///
/// Panics if the slices have different lengths or any cost is invalid.
pub fn mean_energy_reduction_ratio(baseline: &[f64], ours: &[f64]) -> f64 {
    assert_eq!(
        baseline.len(),
        ours.len(),
        "paired samples must have equal length"
    );
    assert!(!baseline.is_empty(), "need at least one run");
    baseline
        .iter()
        .zip(ours)
        .map(|(&b, &o)| energy_reduction_ratio(b, o))
        .sum::<f64>()
        / baseline.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_definition() {
        assert!((energy_reduction_ratio(1000.0, 900.0) - 0.1).abs() < 1e-12);
        assert_eq!(energy_reduction_ratio(0.0, 0.0), 0.0);
        assert_eq!(energy_reduction_ratio(50.0, 50.0), 0.0);
    }

    #[test]
    fn negative_when_ours_is_worse() {
        assert!(energy_reduction_ratio(100.0, 150.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_cost() {
        let _ = energy_reduction_ratio(-1.0, 0.0);
    }

    #[test]
    fn mean_ratio_averages_per_run() {
        // Ratios 0.5 and 0.1 → mean 0.3 (not the ratio of summed costs).
        let m = mean_energy_reduction_ratio(&[100.0, 1000.0], &[50.0, 900.0]);
        assert!((m - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mean_ratio_rejects_mismatched_lengths() {
        let _ = mean_energy_reduction_ratio(&[1.0], &[1.0, 2.0]);
    }
}
