//! # esvm-analysis
//!
//! Statistics and reporting toolkit for the esvm experiment harness:
//!
//! * [`stats`] — descriptive statistics over Monte-Carlo runs
//!   ([`Summary`]);
//! * [`fit`](mod@fit) — least-squares curve fits with R² and **adjusted R²**: the
//!   paper annotates every figure with the Adj.R² of a linear,
//!   logarithmic or exponential fitting curve ([`Fit`], [`FitKind`]);
//! * [`metrics`] — the paper's headline metric, the *energy reduction
//!   ratio* `(Cost_FFPS − Cost_ours) / Cost_FFPS`;
//! * [`table`] — plain-text table rendering for CLI output and
//!   EXPERIMENTS.md, plus CSV emission;
//! * [`chart`] — terminal sparklines and strip charts for time series
//!   (power draw, active servers);
//! * [`plot`] — dependency-free SVG line plots for the HTML report.
//!
//! ## Example
//!
//! ```
//! use esvm_analysis::fit::{fit, FitKind};
//! let x = [1.0, 2.0, 3.0, 4.0, 5.0];
//! let y = [2.1, 3.9, 6.1, 8.0, 9.9]; // ≈ 2x
//! let f = fit(FitKind::Linear, &x, &y).unwrap();
//! assert!(f.adj_r2 > 0.99);
//! assert!((f.b - 2.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod fit;
pub mod metrics;
pub mod plot;
pub mod stats;
pub mod table;

pub use fit::{fit, Fit, FitKind};
pub use metrics::energy_reduction_ratio;
pub use stats::Summary;
pub use table::Table;
