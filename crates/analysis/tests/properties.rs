//! Property-based tests of the statistics and fitting toolkit.

use esvm_analysis::fit::{best_fit, fit, FitKind};
use esvm_analysis::Summary;
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1000i32..1000, 1..40)
        .prop_map(|v| v.into_iter().map(f64::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Summary invariants: min ≤ mean ≤ max; non-negative spread; the
    /// CI brackets the mean.
    #[test]
    fn summary_invariants(sample in arb_sample()) {
        let s = Summary::of(&sample).expect("non-empty finite sample");
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0 && s.sem >= 0.0);
        let (lo, hi) = s.ci95();
        prop_assert!(lo <= s.mean && s.mean <= hi);
        prop_assert_eq!(s.n, sample.len());
    }

    /// A linear fit recovers exact parameters from exact data, with
    /// perfect R².
    #[test]
    fn linear_fit_recovers_parameters(
        a in -50i32..50,
        b in -20i32..20,
        n in 3usize..30,
    ) {
        let (a, b) = (f64::from(a), f64::from(b));
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| a + b * v).collect();
        let f = fit(FitKind::Linear, &x, &y).expect("fit");
        prop_assert!((f.a - a).abs() < 1e-6 && (f.b - b).abs() < 1e-6);
        prop_assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    /// An exponential fit recovers exact parameters from exact data.
    #[test]
    fn exponential_fit_recovers_parameters(
        a10 in 1i32..60,
        b100 in -30i32..30,
        n in 3usize..20,
    ) {
        let (a, b) = (f64::from(a10) / 10.0, f64::from(b100) / 100.0);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| a * (b * v).exp()).collect();
        let f = fit(FitKind::Exponential, &x, &y).expect("fit");
        prop_assert!((f.a - a).abs() < 1e-6, "a {} vs {}", f.a, a);
        prop_assert!((f.b - b).abs() < 1e-6, "b {} vs {}", f.b, b);
    }

    /// R² never exceeds 1 and Adj.R² never exceeds R² (n > 2 penalty).
    #[test]
    fn r2_bounds(
        xs in proptest::collection::vec(1i32..100, 4..25),
        ys in proptest::collection::vec(-100i32..100, 4..25),
    ) {
        let n = xs.len().min(ys.len());
        let mut x: Vec<f64> = xs[..n].iter().map(|&v| f64::from(v)).collect();
        let y: Vec<f64> = ys[..n].iter().map(|&v| f64::from(v)).collect();
        // De-duplicate x a little so the fit is defined.
        for (i, v) in x.iter_mut().enumerate() {
            *v += i as f64 * 0.001;
        }
        for kind in FitKind::ALL {
            if let Some(f) = fit(kind, &x, &y) {
                prop_assert!(f.r2 <= 1.0 + 1e-9, "{kind:?} r2 {}", f.r2);
                prop_assert!(f.adj_r2 <= f.r2 + 1e-9);
            }
        }
    }

    /// `best_fit` returns the family with maximal adjusted R² among the
    /// applicable ones.
    #[test]
    fn best_fit_is_argmax(
        xs in proptest::collection::vec(1i32..50, 4..15),
        ys in proptest::collection::vec(1i32..50, 4..15),
    ) {
        let n = xs.len().min(ys.len());
        let mut x: Vec<f64> = xs[..n].iter().map(|&v| f64::from(v)).collect();
        let y: Vec<f64> = ys[..n].iter().map(|&v| f64::from(v)).collect();
        for (i, v) in x.iter_mut().enumerate() {
            *v += i as f64 * 0.001;
        }
        let best = best_fit(&x, &y);
        let max_adj = FitKind::ALL
            .iter()
            .filter_map(|&k| fit(k, &x, &y))
            .map(|f| f.adj_r2)
            .fold(f64::NEG_INFINITY, f64::max);
        if let Some(b) = best {
            prop_assert!((b.adj_r2 - max_adj).abs() < 1e-12);
        } else {
            prop_assert!(max_adj == f64::NEG_INFINITY);
        }
    }
}
