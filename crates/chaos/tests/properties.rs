//! Property-based tests of the chaos replay engine.
//!
//! The central invariant: whatever crash/recover sequence a fault plan
//! throws at the replay, every server ledger's Eq. 7 decomposition
//! (run + idle + transition) still sums *exactly* to its `cost()`, the
//! report's folds agree with the ledgers, and nothing panics — hostile
//! plans degrade into shed work, never into crashes.

use esvm_chaos::{
    ChaosEngine, FaultCause, FaultEvent, FaultPlan, FaultPlanConfig, RepairPolicy, ShedPolicy,
};
use esvm_core::AllocatorKind;
use esvm_simcore::{ServerId, ServerLedger};
use esvm_workload::WorkloadConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_conservation(report: &esvm_chaos::ChaosReport) -> Result<(), TestCaseError> {
    for (i, ledger) in report.ledgers.iter().enumerate() {
        prop_assert_eq!(
            ledger.cost().to_bits(),
            ledger.energy_breakdown().total().to_bits(),
            "server {} run+idle+transition must equal cost()",
            i
        );
    }
    let total: f64 = report.ledgers.iter().map(ServerLedger::cost).sum();
    prop_assert_eq!(total.to_bits(), report.cost.to_bits());
    prop_assert!(report.fault_transition_energy.is_finite());
    prop_assert!(report.adjusted_cost().is_finite());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated fault plans of any rate leave every ledger's Eq. 7
    /// decomposition summing exactly to its cost.
    #[test]
    fn generated_plans_conserve_energy(
        seed in 0u64..200,
        rate2 in 0u32..=10,
        vms in 4usize..=24,
        servers in 2usize..=8,
    ) {
        let Ok(problem) = WorkloadConfig::new(vms, servers)
            .mean_interarrival(2.0)
            .generate(seed)
        else {
            return Ok(()); // the draw produced an infeasible instance
        };
        let config = FaultPlanConfig::with_fault_rate(f64::from(rate2) / 10.0);
        let plan = FaultPlan::generate(&config, servers, problem.horizon(), seed);
        let engine = ChaosEngine::new(plan);
        let allocator = AllocatorKind::Miec.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(report) = engine.run(&problem, &*allocator, &mut rng) else {
            return Ok(()); // offline infeasibility, not a chaos failure
        };
        check_conservation(&report)?;
        // Displacement bookkeeping: every shed and every repair of a
        // displaced tail consumed one eviction, and each eviction
        // displaced at least one interval unit.
        let tail_repairs = report.repairs.iter().filter(|r| r.from.is_some()).count() as u64;
        prop_assert!(report.shed.len() as u64 + tail_repairs <= report.displaced);
        prop_assert!(report.displaced_vm_minutes >= report.displaced);
    }

    /// Arbitrary hand-built crash/recover sequences — including
    /// out-of-range servers, zero-length outages, and down/up pairs at
    /// hostile instants — never panic and never break conservation.
    #[test]
    fn arbitrary_crash_recover_sequences_conserve_energy(
        seed in 0u64..200,
        outages in proptest::collection::vec((0u32..12, 0u32..60, 0u32..20), 0..12),
        policy_pick in 0u32..3,
        retries in 0u32..=4,
        backoff in 0u32..=5,
    ) {
        let Ok(problem) = WorkloadConfig::new(14, 5)
            .mean_interarrival(2.0)
            .generate(seed)
        else {
            return Ok(()); // the draw produced an infeasible instance
        };
        let mut plan = FaultPlan::empty();
        for &(server, at, len) in &outages {
            plan.push_event(FaultEvent::ServerDown {
                server: ServerId(server),
                at,
                cause: FaultCause::Crash,
            });
            plan.push_event(FaultEvent::ServerUp {
                server: ServerId(server),
                at: at.saturating_add(len),
            });
        }
        let shed = match policy_pick {
            0 => ShedPolicy::SmallestRemainingFirst,
            1 => ShedPolicy::LargestRemainingFirst,
            _ => ShedPolicy::ArrivalOrder,
        };
        let engine = ChaosEngine::new(plan).with_policy(RepairPolicy {
            max_retries: retries,
            backoff,
            shed,
        });
        let allocator = AllocatorKind::Miec.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(report) = engine.run(&problem, &*allocator, &mut rng) else {
            return Ok(()); // offline infeasibility, not a chaos failure
        };
        check_conservation(&report)?;
        // Every VM is accounted for: hosted somewhere, or shed after a
        // displaced prefix, or refused outright.
        for (j, slot) in report.placement.iter().enumerate() {
            let vm = esvm_simcore::VmId(j as u32);
            if slot.is_none() {
                prop_assert!(
                    report.refused.contains(&vm),
                    "unhosted VM {} must be a refusal",
                    j
                );
            }
        }
    }
}
