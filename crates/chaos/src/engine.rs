//! Failure-aware replay engine.
//!
//! [`ChaosEngine`] replays an offline allocation against a
//! [`FaultPlan`] in two phases. Phase 1 runs the wrapped allocator on
//! the unmodified problem to obtain the *intended* placement. Phase 2
//! replays the timeline event by event over a fresh set of
//! [`ServerLedger`]s: arrivals host onto their intended server when it
//! is up and has capacity; a `ServerDown` evicts the victim's live VMs
//! — the already-elapsed prefix of each interval stays charged to the
//! crashed server, the remaining tail enters a retry queue and is
//! re-placed by the same incremental-cost scoring MIEC uses. Bounded
//! retries with deterministic exponential backoff precede admission
//! shedding; nothing in the engine panics on a hostile plan.
//!
//! # Event ordering
//!
//! At one instant `t` the engine processes, in order: (1) availability
//! events in canonical plan order (per server, `down` precedes `up`, so
//! a zero-length outage still displaces), (2) the retry queue in
//! [`ShedPolicy`] order, (3) arrivals in `(start, id)` order. Every
//! piece is hosted at an interval starting at the current instant, so
//! no busy segment of a server ever overlaps one of its own outages —
//! the invariant behind the recovery-transition accounting below.
//!
//! # Energy accounting under faults
//!
//! Evicting at `t` truncates the run cost at the crash instant: the
//! hosted piece `[s, e]` is unhosted and its prefix `[s, t-1]` is
//! re-hosted, so the ledger charges exactly the work performed before
//! the crash. After replay, each resolved outage `(crash c, recover r)`
//! that falls inside a gap the ledger prices as *kept-on idle* adds one
//! forced transition per Eq. 7 — the server was physically off and must
//! switch back on — recorded as `extra_transitions` and
//! `fault_transition_energy` (α minus the idle energy the ledger
//! over-charged for the down span). Outages inside gaps the ledger
//! already prices as off-and-restart coincide with the planned
//! transition and add nothing. The surcharge is reported separately
//! from [`ChaosReport::cost`] so that the empty-plan replay remains
//! bit-for-bit identical to the offline allocator.
//!
//! # The empty-plan guarantee
//!
//! With [`FaultPlan::empty`], every arrival hosts onto its intended
//! server via the same `host_piece` call sequence the offline
//! [`Assignment`](esvm_simcore::Assignment) performs, in the same
//! order, against ledgers built from the same specs. Placements, total
//! cost, and the per-component energy breakdown are therefore
//! reproduced bit for bit — enforced for all allocator kinds by
//! `tests/differential_chaos.rs`.

use crate::plan::{FaultEvent, FaultPlan};
use crate::policy::{RepairPolicy, ShedPolicy};
use esvm_core::{AllocError, Allocator};
use esvm_obs::{
    names, DecisionKind, Event, EventSink, ExplainRecord, FieldValue, MetricsRegistry, NoopSink,
    NoopTracer, Tracer,
};
use esvm_simcore::{
    AllocationProblem, EnergyBreakdown, Interval, ServerId, ServerLedger, TimeUnit, VmId,
};
use rand::RngCore;
use std::collections::BTreeSet;
use std::fmt;

/// Error from a chaos run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ChaosError {
    /// The offline allocator failed in phase 1; faults were never
    /// injected.
    Offline(AllocError),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Offline(e) => write!(f, "offline allocation failed: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// One successful re-placement of a displaced or redirected VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairRecord {
    /// The repaired VM.
    pub vm: VmId,
    /// Server the VM was displaced from (`None` for an arrival whose
    /// intended server was unavailable — a redirected admission).
    pub from: Option<ServerId>,
    /// Server the remaining work landed on.
    pub to: ServerId,
    /// Instant the VM was displaced (or arrived).
    pub displaced_at: TimeUnit,
    /// Instant the remaining work was re-hosted.
    pub placed_at: TimeUnit,
    /// Placement attempts consumed (0 = repaired immediately).
    pub attempts: u32,
}

impl RepairRecord {
    /// Time units between displacement and re-placement.
    pub fn latency(&self) -> u64 {
        u64::from(self.placed_at - self.displaced_at)
    }
}

/// Outcome of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Final placement, indexed by VM id: the server hosting the VM's
    /// last-scheduled piece. Shed VMs keep the server their prefix ran
    /// on; refused VMs are `None`.
    pub placement: Vec<Option<ServerId>>,
    /// Total scheduled energy: `Σ ledger.cost()` in server order —
    /// identical to the offline `Assignment::total_cost()` fold.
    pub cost: f64,
    /// Per-component fold of the ledgers' Eq. 7 decompositions.
    pub breakdown: EnergyBreakdown,
    /// Cost of the intended (fault-free) offline assignment.
    pub offline_cost: f64,
    /// Forced recovery transitions not visible to the ledgers.
    pub extra_transitions: u64,
    /// Net energy adjustment for those forced transitions: per outage,
    /// α minus the idle energy over-charged for the down span. Add to
    /// [`ChaosReport::cost`] via [`ChaosReport::adjusted_cost`].
    pub fault_transition_energy: f64,
    /// Interval time units displaced by evictions.
    pub displaced_vm_minutes: u64,
    /// Number of eviction events (VM pieces displaced).
    pub displaced: u64,
    /// Arrivals redirected away from a down/full intended server.
    pub redirected_admissions: u64,
    /// Displaced VMs whose remaining work was dropped after retries.
    pub shed: Vec<VmId>,
    /// Arrivals that could never be admitted anywhere.
    pub refused: Vec<VmId>,
    /// Every successful re-placement, in replay order.
    pub repairs: Vec<RepairRecord>,
    /// Final per-server ledgers after replay.
    pub ledgers: Vec<ServerLedger>,
}

impl ChaosReport {
    /// Scheduled cost plus the forced-transition surcharge — the
    /// physically-meaningful total under faults.
    pub fn adjusted_cost(&self) -> f64 {
        self.cost + self.fault_transition_energy
    }
}

/// A piece of a VM's interval currently charged to one server.
#[derive(Debug, Clone, Copy)]
struct Piece {
    vm: usize,
    interval: Interval,
}

/// A displaced tail (or unadmitted arrival) waiting for capacity.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    vm: usize,
    end: TimeUnit,
    attempts: u32,
    next_try: TimeUnit,
    displaced_at: TimeUnit,
    from: Option<ServerId>,
}

/// Deterministic fault-injection replay around any [`Allocator`].
#[derive(Debug, Clone, Default)]
pub struct ChaosEngine {
    plan: FaultPlan,
    policy: RepairPolicy,
    par: esvm_par::Parallelism,
}

impl ChaosEngine {
    /// Engine replaying the given plan with the default
    /// [`RepairPolicy`].
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            policy: RepairPolicy::default(),
            par: esvm_par::Parallelism::default(),
        }
    }

    /// Overrides the repair/degradation policy.
    pub fn with_policy(mut self, policy: RepairPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Scores repair re-placements on `par.threads()` threads: the
    /// MIEC-style argmin over the up servers runs as the same
    /// deterministic ascending-chunk reduction the allocators use
    /// ([`esvm_par::par_min_by`]) directly over the live replay
    /// ledgers — no replication — so repaired placements are
    /// **bit-identical** to the sequential replay for every thread
    /// count. The wrapped offline allocator keeps its own
    /// [`Parallelism`](esvm_par::Parallelism) knob; this one governs
    /// only phase 2's repair scoring.
    pub fn with_parallelism(mut self, par: esvm_par::Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The configured repair-scoring thread policy.
    pub fn parallelism(&self) -> esvm_par::Parallelism {
        self.par
    }

    /// The plan this engine replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Runs phase 1 (offline allocation) and phase 2 (fault replay)
    /// without telemetry.
    ///
    /// # Errors
    ///
    /// [`ChaosError::Offline`] when the wrapped allocator itself fails;
    /// faults never make the replay error — degraded runs complete with
    /// shed/refused work recorded in the report.
    pub fn run(
        &self,
        problem: &AllocationProblem,
        allocator: &dyn Allocator,
        rng: &mut dyn RngCore,
    ) -> Result<ChaosReport, ChaosError> {
        let metrics = MetricsRegistry::new();
        self.run_observed(problem, allocator, rng, &mut NoopSink, &metrics)
    }

    /// [`ChaosEngine::run`] with chaos events emitted to `sink` and
    /// robustness metrics recorded in `metrics` (see
    /// [`esvm_obs::names::chaos`]).
    ///
    /// # Errors
    ///
    /// [`ChaosError::Offline`] when the wrapped allocator fails.
    pub fn run_observed<S: EventSink>(
        &self,
        problem: &AllocationProblem,
        allocator: &dyn Allocator,
        rng: &mut dyn RngCore,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> Result<ChaosReport, ChaosError> {
        self.run_traced(problem, allocator, rng, sink, metrics, &NoopTracer)
    }

    /// [`ChaosEngine::run_observed`] with decision provenance: phase 1
    /// runs under a `chaos.offline` span, phase 2 under `chaos.replay`
    /// with one `chaos.attempt` child per repair-scoring pass, and every
    /// repair / shed / refusal emits a [`DecisionKind::Repair`] /
    /// [`DecisionKind::Shed`] / [`DecisionKind::Refuse`] explain record
    /// attributing the displacement source, attempt count and instant.
    /// With [`NoopTracer`] this *is* [`ChaosEngine::run_observed`].
    ///
    /// # Errors
    ///
    /// [`ChaosError::Offline`] when the wrapped allocator fails.
    pub fn run_traced<S: EventSink, T: Tracer>(
        &self,
        problem: &AllocationProblem,
        allocator: &dyn Allocator,
        rng: &mut dyn RngCore,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> Result<ChaosReport, ChaosError> {
        let intended = {
            let _offline_span = tracer.span("chaos.offline");
            allocator
                .allocate(problem, rng)
                .map_err(ChaosError::Offline)?
        };
        let offline_cost = intended.total_cost();
        let intended_placement: Vec<Option<ServerId>> = intended.placement().to_vec();
        drop(intended);
        Ok(self.replay(problem, &intended_placement, offline_cost, sink, metrics, tracer))
    }

    /// Phase 2: event-driven replay of the intended placement under the
    /// fault plan.
    fn replay<S: EventSink, T: Tracer>(
        &self,
        problem: &AllocationProblem,
        intended: &[Option<ServerId>],
        offline_cost: f64,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> ChaosReport {
        let _replay_span = tracer.span("chaos.replay");
        let vms = problem.vms();
        let n = problem.servers().len();
        let mut ledgers: Vec<ServerLedger> = problem
            .servers()
            .iter()
            .map(|spec| ServerLedger::new(spec.clone()))
            .collect();
        let mut up = vec![true; n];
        let mut outage_start: Vec<Option<TimeUnit>> = vec![None; n];
        let mut resolved_outages: Vec<(usize, TimeUnit, TimeUnit)> = Vec::new();
        let mut resident: Vec<Vec<Piece>> = vec![Vec::new(); n];
        let mut placement: Vec<Option<ServerId>> = vec![None; vms.len()];
        let mut queue: Vec<QueueEntry> = Vec::new();
        let mut report = ChaosReport {
            placement: Vec::new(),
            cost: 0.0,
            breakdown: EnergyBreakdown::default(),
            offline_cost,
            extra_transitions: 0,
            fault_transition_energy: 0.0,
            displaced_vm_minutes: 0,
            displaced: 0,
            redirected_admissions: 0,
            shed: Vec::new(),
            refused: Vec::new(),
            repairs: Vec::new(),
            ledgers: Vec::new(),
        };

        // Agenda: every instant where something can happen. Retry times
        // are inserted as backoffs are scheduled.
        let arrivals: Vec<usize> = problem.vms_by_start_time();
        let mut agenda: BTreeSet<TimeUnit> = vms.iter().map(|vm| vm.start()).collect();
        let events = self.plan.events();
        agenda.extend(events.iter().map(FaultEvent::at));
        let mut next_event = 0usize;
        let mut next_arrival = 0usize;

        while let Some(t) = agenda.pop_first() {
            // (1) Availability events, in canonical plan order.
            while next_event < events.len() && events[next_event].at() == t {
                match events[next_event] {
                    FaultEvent::ServerUp { server, .. } => {
                        let s = server.index();
                        if s < n && !up[s] {
                            up[s] = true;
                            if let Some(c) = outage_start[s].take() {
                                if t > c {
                                    resolved_outages.push((s, c, t));
                                }
                            }
                            if S::ENABLED {
                                sink.emit(&Event {
                                    name: "chaos.server_up",
                                    fields: &[
                                        ("server", FieldValue::U64(s as u64)),
                                        ("time", FieldValue::U64(u64::from(t))),
                                    ],
                                });
                            }
                        }
                    }
                    FaultEvent::ServerDown { server, cause, .. } => {
                        let s = server.index();
                        if s < n && up[s] {
                            up[s] = false;
                            outage_start[s] = Some(t);
                            if S::ENABLED {
                                sink.emit(&Event {
                                    name: "chaos.server_down",
                                    fields: &[
                                        ("server", FieldValue::U64(s as u64)),
                                        ("time", FieldValue::U64(u64::from(t))),
                                        ("cause", FieldValue::Str(cause.name())),
                                    ],
                                });
                            }
                            Self::evict(
                                s,
                                t,
                                problem,
                                &mut ledgers,
                                &mut resident,
                                &mut queue,
                                &mut report,
                                sink,
                                metrics,
                                tracer,
                            );
                        }
                    }
                }
                next_event += 1;
            }

            // (2) Retry queue, in shed-policy order.
            let mut due: Vec<QueueEntry> = Vec::new();
            queue.retain(|entry| {
                if entry.next_try <= t {
                    due.push(*entry);
                    false
                } else {
                    true
                }
            });
            self.order_queue(&mut due, t);
            for entry in due {
                self.attempt(
                    entry,
                    t,
                    problem,
                    &mut ledgers,
                    &up,
                    &mut resident,
                    &mut placement,
                    &mut queue,
                    &mut agenda,
                    &mut report,
                    sink,
                    metrics,
                    tracer,
                );
            }

            // (3) Arrivals, in (start, id) order.
            while next_arrival < arrivals.len() && vms[arrivals[next_arrival]].start() == t {
                let j = arrivals[next_arrival];
                next_arrival += 1;
                let vm = &vms[j];
                let target = intended.get(j).copied().flatten();
                let hosted = target.is_some_and(|server| {
                    let s = server.index();
                    s < n && up[s] && ledgers[s].fits_piece(vm.demand(), vm.interval())
                });
                if let (true, Some(server)) = (hosted, target) {
                    let s = server.index();
                    ledgers[s].host_piece(vm.demand(), vm.interval());
                    resident[s].push(Piece {
                        vm: j,
                        interval: vm.interval(),
                    });
                    placement[j] = Some(server);
                } else {
                    // Intended server down or out of capacity: redirect
                    // through the same scoring the repair path uses.
                    let entry = QueueEntry {
                        vm: j,
                        end: vm.end(),
                        attempts: 0,
                        next_try: t,
                        displaced_at: t,
                        from: None,
                    };
                    self.attempt(
                        entry,
                        t,
                        problem,
                        &mut ledgers,
                        &up,
                        &mut resident,
                        &mut placement,
                        &mut queue,
                        &mut agenda,
                        &mut report,
                        sink,
                        metrics,
                        tracer,
                    );
                }
            }
        }

        // Anything still queued when the agenda runs dry is past every
        // retry instant that could matter — count it as lost.
        let leftovers = std::mem::take(&mut queue);
        for entry in leftovers {
            self.drop_entry(&entry, &mut report, sink, metrics, tracer);
        }

        self.charge_recovery_transitions(&ledgers, &resolved_outages, &mut report, metrics);

        for ledger in &ledgers {
            let b = ledger.energy_breakdown();
            report.cost += ledger.cost();
            report.breakdown.run += b.run;
            report.breakdown.idle += b.idle;
            report.breakdown.transition += b.transition;
        }
        if S::ENABLED {
            metrics.set_gauge(names::chaos::ENERGY_COST, report.cost);
            metrics.set_gauge(names::chaos::ENERGY_ADJUSTED_COST, report.adjusted_cost());
            metrics.set_gauge(names::chaos::ENERGY_OFFLINE_COST, offline_cost);
        }
        report.placement = placement;
        report.ledgers = ledgers;
        report
    }

    /// Evicts every live piece of server `s` at instant `t`.
    #[allow(clippy::too_many_arguments)]
    fn evict<S: EventSink, T: Tracer>(
        s: usize,
        t: TimeUnit,
        problem: &AllocationProblem,
        ledgers: &mut [ServerLedger],
        resident: &mut [Vec<Piece>],
        queue: &mut Vec<QueueEntry>,
        report: &mut ChaosReport,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) {
        let _evict_span = tracer.span("chaos.evict");
        let pieces = std::mem::take(&mut resident[s]);
        let mut kept = Vec::with_capacity(pieces.len());
        for piece in pieces {
            let iv = piece.interval;
            if iv.end() < t {
                kept.push(piece);
                continue;
            }
            let demand = problem.vms()[piece.vm].demand();
            ledgers[s].unhost_piece(demand, iv);
            if iv.start() < t {
                // The work done before the crash really happened; only
                // the tail is displaced.
                if let Some(prefix) = Interval::checked_new(iv.start(), t - 1) {
                    ledgers[s].host_piece(demand, prefix);
                    kept.push(Piece {
                        vm: piece.vm,
                        interval: prefix,
                    });
                }
            }
            let tail_len = u64::from(iv.end() - t) + 1;
            report.displaced += 1;
            report.displaced_vm_minutes += tail_len;
            queue.push(QueueEntry {
                vm: piece.vm,
                end: iv.end(),
                attempts: 0,
                next_try: t,
                displaced_at: t,
                from: Some(ServerId(s as u32)),
            });
            if S::ENABLED {
                metrics.add(names::chaos::DISPLACED_VMS, 1);
                metrics.add(names::chaos::DISPLACED_VM_MINUTES, tail_len);
                sink.emit(&Event {
                    name: "chaos.evict",
                    fields: &[
                        ("vm", FieldValue::U64(piece.vm as u64)),
                        ("server", FieldValue::U64(s as u64)),
                        ("time", FieldValue::U64(u64::from(t))),
                        ("tail_len", FieldValue::U64(tail_len)),
                    ],
                });
            }
        }
        resident[s] = kept;
    }

    /// Orders due queue entries so the front of the queue gets first
    /// claim on capacity (see [`ShedPolicy`]).
    fn order_queue(&self, due: &mut [QueueEntry], t: TimeUnit) {
        let remaining = |e: &QueueEntry| u64::from(e.end.saturating_sub(t)) + 1;
        match self.policy.shed {
            ShedPolicy::SmallestRemainingFirst => {
                due.sort_by_key(|e| (std::cmp::Reverse(remaining(e)), e.vm));
            }
            ShedPolicy::LargestRemainingFirst => {
                due.sort_by_key(|e| (remaining(e), e.vm));
            }
            ShedPolicy::ArrivalOrder => {
                due.sort_by_key(|e| (e.displaced_at, e.vm));
            }
        }
    }

    /// One placement attempt for a queued entry at instant `t`:
    /// MIEC-style lowest-incremental-cost scoring over the up servers,
    /// exponential backoff on failure, shed/refuse on exhaustion.
    #[allow(clippy::too_many_arguments)]
    fn attempt<S: EventSink, T: Tracer>(
        &self,
        mut entry: QueueEntry,
        t: TimeUnit,
        problem: &AllocationProblem,
        ledgers: &mut [ServerLedger],
        up: &[bool],
        resident: &mut [Vec<Piece>],
        placement: &mut [Option<ServerId>],
        queue: &mut Vec<QueueEntry>,
        agenda: &mut BTreeSet<TimeUnit>,
        report: &mut ChaosReport,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) {
        let _attempt_span = tracer.span("chaos.attempt");
        if t > entry.end {
            self.drop_entry(&entry, report, sink, metrics, tracer);
            return;
        }
        let demand = problem.vms()[entry.vm].demand();
        let Some(interval) = Interval::checked_new(t, entry.end) else {
            self.drop_entry(&entry, report, sink, metrics, tracer);
            return;
        };
        // The same strict-`<` ascending-index argmin the sequential
        // loop performs, as a deterministic chunked reduction when the
        // engine is configured with threads: `par_min_by` merges
        // chunk-local minima in ascending chunk order, so the winning
        // (cost, server-id) — including the lowest-id tie-break — is
        // bit-identical for every thread count. `Parallelism::default()`
        // short-circuits to the plain sequential fold.
        let best = esvm_par::par_min_by(self.par, ledgers.len(), |i| {
            if !up[i] || !ledgers[i].fits_piece(demand, interval) {
                return None;
            }
            Some(ledgers[i].incremental_piece_cost(demand, interval))
        });
        if let Some((s, winning_cost)) = best {
            if T::ENABLED {
                // Read-only recount of the feasibility scan before the
                // commit mutates the winner's ledger: the argmin above
                // folds the tallies away, and this runs only in traced
                // builds.
                let mut candidates = 0u64;
                let mut unfit = 0u64;
                for (i, ledger) in ledgers.iter().enumerate() {
                    if !up[i] {
                        continue;
                    }
                    if ledger.fits_piece(demand, interval) {
                        candidates += 1;
                    } else {
                        unfit += 1;
                    }
                }
                tracer.explain(&ExplainRecord {
                    candidates,
                    unfit,
                    shards: 1,
                    winner: Some(s as u64),
                    delta_cost: winning_cost,
                    from: entry.from.map(|f| f.index() as u64),
                    attempt: u64::from(entry.attempts),
                    time: Some(u64::from(t)),
                    ..ExplainRecord::new(DecisionKind::Repair, entry.vm as u64)
                });
            }
            ledgers[s].host_piece(demand, interval);
            resident[s].push(Piece {
                vm: entry.vm,
                interval,
            });
            placement[entry.vm] = Some(ServerId(s as u32));
            let record = RepairRecord {
                vm: VmId(entry.vm as u32),
                from: entry.from,
                to: ServerId(s as u32),
                displaced_at: entry.displaced_at,
                placed_at: t,
                attempts: entry.attempts,
            };
            if entry.from.is_none() && record.latency() == 0 {
                report.redirected_admissions += 1;
            }
            if S::ENABLED {
                metrics.observe(names::chaos::REPAIR_LATENCY, record.latency() as f64);
                metrics.add(names::chaos::REPAIRS, 1);
                sink.emit(&Event {
                    name: "chaos.repair",
                    fields: &[
                        ("vm", FieldValue::U64(entry.vm as u64)),
                        ("to", FieldValue::U64(s as u64)),
                        ("time", FieldValue::U64(u64::from(t))),
                        ("latency", FieldValue::U64(record.latency())),
                        ("attempts", FieldValue::U64(u64::from(entry.attempts))),
                    ],
                });
            }
            report.repairs.push(record);
            return;
        }
        entry.attempts += 1;
        if entry.attempts > self.policy.max_retries {
            self.drop_entry(&entry, report, sink, metrics, tracer);
            return;
        }
        let next_try = t.saturating_add(self.policy.delay_for(entry.attempts));
        if next_try > entry.end {
            self.drop_entry(&entry, report, sink, metrics, tracer);
            return;
        }
        entry.next_try = next_try;
        agenda.insert(next_try);
        queue.push(entry);
    }

    /// Records a queue entry that ran out of retries or time: shed if
    /// it had already run a prefix somewhere, refused if it was never
    /// admitted at all.
    fn drop_entry<S: EventSink, T: Tracer>(
        &self,
        entry: &QueueEntry,
        report: &mut ChaosReport,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) {
        let vm = VmId(entry.vm as u32);
        if entry.from.is_some() {
            report.shed.push(vm);
        } else {
            report.refused.push(vm);
        }
        if T::ENABLED {
            let kind = if entry.from.is_some() {
                DecisionKind::Shed
            } else {
                DecisionKind::Refuse
            };
            tracer.explain(&ExplainRecord {
                from: entry.from.map(|f| f.index() as u64),
                attempt: u64::from(entry.attempts),
                time: Some(u64::from(entry.displaced_at)),
                ..ExplainRecord::new(kind, entry.vm as u64)
            });
        }
        if S::ENABLED {
            let name = if entry.from.is_some() {
                metrics.add(names::chaos::SHED, 1);
                "chaos.shed"
            } else {
                metrics.add(names::chaos::REFUSED_ADMISSIONS, 1);
                "chaos.refused"
            };
            sink.emit(&Event {
                name,
                fields: &[
                    ("vm", FieldValue::U64(entry.vm as u64)),
                    ("attempts", FieldValue::U64(u64::from(entry.attempts))),
                ],
            });
        }
    }

    /// Final pass: charge one forced Eq. 7 transition for each resolved
    /// outage that fell inside a gap the ledger prices as kept-on idle
    /// (see the module docs for why this is exact).
    fn charge_recovery_transitions(
        &self,
        ledgers: &[ServerLedger],
        resolved: &[(usize, TimeUnit, TimeUnit)],
        report: &mut ChaosReport,
        metrics: &MetricsRegistry,
    ) {
        for &(s, c, r) in resolved {
            let ledger = &ledgers[s];
            let spec = ledger.spec();
            let mut prev_end: Option<TimeUnit> = None;
            let mut next_start: Option<TimeUnit> = None;
            for iv in ledger.segments().iter() {
                if iv.end() < c {
                    prev_end = Some(iv.end());
                } else if next_start.is_none() {
                    next_start = Some(iv.start());
                }
            }
            let (Some(prev), Some(next)) = (prev_end, next_start) else {
                // The outage sits before the first or after the last
                // busy segment: the ledger's initial switch-on (or
                // nothing at all) already tells the right story.
                continue;
            };
            debug_assert!(next >= r, "busy segment overlaps an outage");
            let gap_len = u64::from(next - prev) - 1;
            if spec.switches_off_for_gap(gap_len) {
                // The ledger already prices this gap as off + restart;
                // the recovery coincides with the planned transition.
                continue;
            }
            report.extra_transitions += 1;
            report.fault_transition_energy +=
                spec.transition_cost() - spec.idle_cost(u64::from(r - c));
        }
        metrics.add(names::chaos::EXTRA_TRANSITIONS, report.extra_transitions);
        metrics.set_gauge(
            names::chaos::FAULT_TRANSITION_ENERGY,
            report.fault_transition_energy,
        );
    }
}
