//! Input-level faults: deterministic corruption of trace text.
//!
//! A robust system rejects malformed input with a typed error instead
//! of panicking or silently mis-parsing. These mutators produce the
//! classic corruptions — truncated records, non-numeric fields, NaN and
//! negative demands, duplicate VM ids, capacity-impossible requests —
//! so the trace parser's hardening can be exercised from the chaos CLI
//! and from property tests. Applying a fault never panics, whatever the
//! input looks like; out-of-range line numbers degrade to no-ops.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One deterministic corruption of a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputFault {
    /// Cut the text off in the middle of the 1-based `line`.
    TruncateAt {
        /// 1-based line to truncate within.
        line: usize,
    },
    /// Replace the comma-separated `field` of `line` with `value`
    /// (non-numeric garbage, `NaN`, a negative number, …).
    CorruptField {
        /// 1-based line to corrupt.
        line: usize,
        /// 0-based field index within the line.
        field: usize,
        /// Replacement text.
        value: String,
    },
    /// Duplicate the 1-based `line` verbatim — on a VM record this
    /// injects a duplicate VM id.
    DuplicateVmLine {
        /// 1-based line to duplicate.
        line: usize,
    },
    /// Multiply every numeric field after the id on `line` by `factor`,
    /// turning a VM record into a capacity-impossible request.
    InflateDemand {
        /// 1-based line to inflate.
        line: usize,
        /// Multiplier applied to the demand fields.
        factor: u32,
    },
}

impl InputFault {
    /// Stable name used in telemetry fields.
    pub fn name(&self) -> &'static str {
        match self {
            InputFault::TruncateAt { .. } => "truncate",
            InputFault::CorruptField { .. } => "corrupt-field",
            InputFault::DuplicateVmLine { .. } => "duplicate-line",
            InputFault::InflateDemand { .. } => "inflate-demand",
        }
    }

    /// Applies the fault to `text`, returning the corrupted text.
    /// Out-of-range line/field indices leave the text unchanged.
    pub fn apply(&self, text: &str) -> String {
        let lines: Vec<&str> = text.lines().collect();
        match self {
            InputFault::TruncateAt { line } => {
                if *line == 0 || *line > lines.len() {
                    return text.to_owned();
                }
                let mut out: Vec<String> =
                    lines[..line - 1].iter().map(|s| (*s).to_owned()).collect();
                let victim = lines[line - 1];
                out.push(victim[..victim.len() / 2].to_owned());
                out.join("\n")
            }
            InputFault::CorruptField { line, field, value } => {
                if *line == 0 || *line > lines.len() {
                    return text.to_owned();
                }
                let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
                let mut fields: Vec<String> =
                    lines[line - 1].split(',').map(str::to_owned).collect();
                if *field >= fields.len() {
                    return text.to_owned();
                }
                fields[*field] = value.clone();
                out[line - 1] = fields.join(",");
                out.join("\n") + "\n"
            }
            InputFault::DuplicateVmLine { line } => {
                if *line == 0 || *line > lines.len() {
                    return text.to_owned();
                }
                let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
                out.insert(*line, lines[line - 1].to_owned());
                out.join("\n") + "\n"
            }
            InputFault::InflateDemand { line, factor } => {
                if *line == 0 || *line > lines.len() {
                    return text.to_owned();
                }
                let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
                let fields: Vec<String> = lines[line - 1]
                    .split(',')
                    .enumerate()
                    .map(|(i, f)| match (i, f.parse::<f64>()) {
                        (0, _) => f.to_owned(),
                        (_, Ok(v)) => format!("{}", v * f64::from(*factor)),
                        (_, Err(_)) => f.to_owned(),
                    })
                    .collect();
                out[line - 1] = fields.join(",");
                out.join("\n") + "\n"
            }
        }
    }

    /// Serialises the fault as comma-separated fields (after the
    /// leading `input` tag of the plan format).
    pub fn to_field_text(&self) -> String {
        match self {
            InputFault::TruncateAt { line } => format!("truncate,{line}"),
            InputFault::CorruptField { line, field, value } => {
                format!("corrupt,{line},{field},{value}")
            }
            InputFault::DuplicateVmLine { line } => format!("duplicate,{line}"),
            InputFault::InflateDemand { line, factor } => format!("inflate,{line},{factor}"),
        }
    }

    /// Parses the comma-separated fields written by
    /// [`InputFault::to_field_text`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation.
    pub fn from_field_text(fields: &[&str]) -> Result<Self, String> {
        let parse = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|_| format!("{what} is not a non-negative integer: {s:?}"))
        };
        match fields.first().copied() {
            Some("truncate") if fields.len() == 2 => Ok(InputFault::TruncateAt {
                line: parse(fields[1], "line")?,
            }),
            Some("corrupt") if fields.len() >= 4 => Ok(InputFault::CorruptField {
                line: parse(fields[1], "line")?,
                field: parse(fields[2], "field")?,
                value: fields[3..].join(","),
            }),
            Some("duplicate") if fields.len() == 2 => Ok(InputFault::DuplicateVmLine {
                line: parse(fields[1], "line")?,
            }),
            Some("inflate") if fields.len() == 3 => Ok(InputFault::InflateDemand {
                line: parse(fields[1], "line")?,
                factor: parse(fields[2], "factor")?.min(u32::MAX as usize) as u32,
            }),
            _ => Err(format!("unrecognised input fault: {fields:?}")),
        }
    }

    /// Draws `count` seeded faults aimed at the data lines of a trace
    /// with `line_count` lines. Deterministic per `(seed, count,
    /// line_count)`.
    pub fn generate(seed: u64, count: usize, line_count: usize) -> Vec<InputFault> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1B0_7FA_u64);
        let max_line = line_count.max(1);
        (0..count)
            .map(|_| {
                let line = rng.gen_range(1..=max_line);
                match rng.gen_range(0..5u32) {
                    0 => InputFault::TruncateAt { line },
                    1 => InputFault::CorruptField {
                        line,
                        field: rng.gen_range(0..5usize),
                        value: "NaN".to_owned(),
                    },
                    2 => InputFault::CorruptField {
                        line,
                        field: rng.gen_range(0..5usize),
                        value: "-3".to_owned(),
                    },
                    3 => InputFault::DuplicateVmLine { line },
                    _ => InputFault::InflateDemand {
                        line,
                        factor: 1000,
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# esvm trace v1\n[servers]\nid,cpu,mem,p_idle,p_peak,alpha\n0,4,8,50,100,10\n[vms]\nid,cpu,mem,start,end\n0,1,1,1,9\n1,2,2,3,7\n";

    #[test]
    fn faults_round_trip_through_field_text() {
        for fault in [
            InputFault::TruncateAt { line: 3 },
            InputFault::CorruptField {
                line: 7,
                field: 1,
                value: "NaN".into(),
            },
            InputFault::DuplicateVmLine { line: 7 },
            InputFault::InflateDemand { line: 8, factor: 100 },
        ] {
            let text = fault.to_field_text();
            let fields: Vec<&str> = text.split(',').collect();
            assert_eq!(InputFault::from_field_text(&fields).unwrap(), fault);
        }
    }

    #[test]
    fn duplicate_line_duplicates() {
        let fault = InputFault::DuplicateVmLine { line: 7 };
        let out = fault.apply(SAMPLE);
        assert_eq!(out.matches("0,1,1,1,9").count(), 2);
    }

    #[test]
    fn inflate_multiplies_demand_fields() {
        let fault = InputFault::InflateDemand { line: 7, factor: 10 };
        let out = fault.apply(SAMPLE);
        assert!(out.contains("0,10,10,10,90"), "{out}");
    }

    #[test]
    fn out_of_range_faults_are_no_ops() {
        for fault in [
            InputFault::TruncateAt { line: 99 },
            InputFault::CorruptField {
                line: 99,
                field: 0,
                value: "x".into(),
            },
            InputFault::CorruptField {
                line: 1,
                field: 99,
                value: "x".into(),
            },
            InputFault::DuplicateVmLine { line: 0 },
            InputFault::InflateDemand { line: 99, factor: 2 },
        ] {
            assert_eq!(fault.apply(SAMPLE), SAMPLE, "{fault:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = InputFault::generate(5, 10, 30);
        let b = InputFault::generate(5, 10, 30);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }
}
