//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is the complete script of everything that goes wrong
//! during a chaos run: timed server outages (crashes, planned drains,
//! correlated rack outages) plus input-level faults applied to trace
//! text before parsing. Plans are *data*, not behaviour: the same plan
//! replayed against the same problem and allocator reproduces the same
//! run bit for bit, and a plan serialises to a line-oriented text format
//! so any chaos run can be archived and replayed later.

use crate::input::InputFault;
use esvm_simcore::{ServerId, TimeUnit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Why a server went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// Unplanned crash: the server vanishes at the fault instant.
    Crash,
    /// Planned drain: operationally identical to a crash in this model
    /// (live VMs are displaced at the drain instant), kept distinct for
    /// telemetry.
    Drain,
    /// Correlated outage taking down a whole rack at once.
    RackOutage,
}

impl FaultCause {
    /// Stable lower-case name used in serialisation and event fields.
    pub fn name(&self) -> &'static str {
        match self {
            FaultCause::Crash => "crash",
            FaultCause::Drain => "drain",
            FaultCause::RackOutage => "rack-outage",
        }
    }
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed availability event in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The server becomes unavailable at `at`; its live VMs are evicted.
    ServerDown {
        /// The victim server.
        server: ServerId,
        /// Fault instant (first time unit the server is down).
        at: TimeUnit,
        /// Why the server went down.
        cause: FaultCause,
    },
    /// The server becomes available again at `at`.
    ServerUp {
        /// The recovering server.
        server: ServerId,
        /// Recovery instant (first time unit the server is up again).
        at: TimeUnit,
    },
}

impl FaultEvent {
    /// The event's time.
    pub fn at(&self) -> TimeUnit {
        match self {
            FaultEvent::ServerDown { at, .. } | FaultEvent::ServerUp { at, .. } => *at,
        }
    }

    /// The event's server.
    pub fn server(&self) -> ServerId {
        match self {
            FaultEvent::ServerDown { server, .. } | FaultEvent::ServerUp { server, .. } => *server,
        }
    }
}

/// A forward cursor over a [`FaultPlan`]'s canonical `(time, server,
/// downs-before-ups)` event order. A live feed walks its request
/// stream and, before each arrival at time `t`, drains
/// [`take_until`](PlanCursor::take_until)`(t)` into the session's
/// fault verbs — the plan "strikes" exactly when the session clock
/// would reach each event, mirroring the offline replay semantics.
#[derive(Debug, Clone)]
pub struct PlanCursor<'a> {
    events: &'a [FaultEvent],
    next: usize,
}

impl<'a> PlanCursor<'a> {
    /// The events with `at() <= t` not yet taken, advancing the cursor
    /// past them. Successive calls with non-decreasing `t` partition
    /// the plan.
    pub fn take_until(&mut self, t: TimeUnit) -> &'a [FaultEvent] {
        let from = self.next;
        while self.next < self.events.len() && self.events[self.next].at() <= t {
            self.next += 1;
        }
        &self.events[from..self.next]
    }

    /// All remaining events (a trailing drain after the last arrival).
    pub fn rest(&mut self) -> &'a [FaultEvent] {
        let from = self.next;
        self.next = self.events.len();
        &self.events[from..]
    }

    /// How many events have not been taken yet.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

/// Knobs for [`FaultPlan::generate`].
///
/// `fault_rate` is the headline knob the CLI exposes: the per-server
/// probability of suffering one independent crash somewhere in the
/// horizon. Drains and correlated rack outages default to fractions of
/// it so a single `--fault-rate` sweeps the whole fault mix.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanConfig {
    /// Per-server probability of one crash over the horizon.
    pub fault_rate: f64,
    /// Per-server probability of one planned drain (default:
    /// `fault_rate / 2`).
    pub drain_rate: f64,
    /// Per-rack probability of a correlated outage (default:
    /// `fault_rate / 4`).
    pub rack_outage_rate: f64,
    /// Servers per rack for correlated outages (0 disables racks).
    pub rack_size: u32,
    /// Mean outage duration in time units (drawn geometrically).
    pub mean_outage: f64,
}

impl FaultPlanConfig {
    /// Config with every secondary rate derived from `fault_rate`.
    pub fn with_fault_rate(fault_rate: f64) -> Self {
        let fault_rate = fault_rate.clamp(0.0, 1.0);
        Self {
            fault_rate,
            drain_rate: fault_rate / 2.0,
            rack_outage_rate: fault_rate / 4.0,
            rack_size: 8,
            mean_outage: 10.0,
        }
    }
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self::with_fault_rate(0.1)
    }
}

/// A complete, deterministic script of faults for one chaos run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    input_faults: Vec<InputFault>,
}

/// Error parsing a serialised [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanParseError {
    /// The version line is missing or unsupported.
    BadHeader,
    /// A data line is malformed.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanParseError::BadHeader => write!(f, "missing or unsupported fault-plan header"),
            PlanParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for PlanParseError {}

const HEADER: &str = "# esvm faultplan v1";

impl FaultPlan {
    /// The empty plan: nothing ever fails. Replaying under the empty
    /// plan is guaranteed to reproduce the offline allocator bit for
    /// bit (see `ChaosEngine`).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan contains no faults of any kind.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.input_faults.is_empty()
    }

    /// The timed availability events, sorted by `(time, server)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The input-level faults.
    pub fn input_faults(&self) -> &[InputFault] {
        &self.input_faults
    }

    /// Adds one availability event, keeping the canonical order.
    pub fn push_event(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.sort_events();
    }

    /// Adds one input-level fault.
    pub fn push_input_fault(&mut self, fault: InputFault) {
        self.input_faults.push(fault);
    }

    fn sort_events(&mut self) {
        // Canonical order: time, then server id, then downs before ups
        // (a down/up pair on the same server at the same instant is a
        // zero-length outage and must resolve as "down then up").
        self.events.sort_by_key(|e| {
            (
                e.at(),
                e.server().index(),
                matches!(e, FaultEvent::ServerUp { .. }),
            )
        });
    }

    /// A forward cursor over the plan's canonical event order, for
    /// feeding faults into a live session interleaved with a request
    /// stream (see `esvm chaos --live`).
    pub fn cursor(&self) -> PlanCursor<'_> {
        PlanCursor {
            events: &self.events,
            next: 0,
        }
    }

    /// Generates a seeded plan for a fleet of `server_count` servers
    /// over `[1, horizon]`. Deterministic: the same `(config, seed,
    /// fleet, horizon)` always yields the same plan, and servers draw
    /// from the stream in id order so the plan for server `i` does not
    /// depend on the fleet size beyond `i`.
    pub fn generate(
        config: &FaultPlanConfig,
        server_count: usize,
        horizon: TimeUnit,
        seed: u64,
    ) -> Self {
        let mut plan = FaultPlan::default();
        if horizon < 2 {
            return plan;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5_C4A0_5u64);
        let outage = |rng: &mut StdRng, server: u32, cause: FaultCause, plan: &mut FaultPlan| {
            let at = rng.gen_range(2..=horizon);
            let len = Self::outage_len(rng, config.mean_outage);
            plan.events.push(FaultEvent::ServerDown {
                server: ServerId(server),
                at,
                cause,
            });
            let back = at.saturating_add(len);
            if back <= horizon {
                plan.events.push(FaultEvent::ServerUp {
                    server: ServerId(server),
                    at: back,
                });
            }
        };
        for s in 0..server_count as u32 {
            if rng.gen_bool(config.fault_rate) {
                outage(&mut rng, s, FaultCause::Crash, &mut plan);
            }
            if rng.gen_bool(config.drain_rate) {
                outage(&mut rng, s, FaultCause::Drain, &mut plan);
            }
        }
        if config.rack_size > 0 {
            let racks = (server_count as u32).div_ceil(config.rack_size);
            for rack in 0..racks {
                if !rng.gen_bool(config.rack_outage_rate) {
                    continue;
                }
                let at = rng.gen_range(2..=horizon);
                let len = Self::outage_len(&mut rng, config.mean_outage);
                let back = at.saturating_add(len);
                let lo = rack * config.rack_size;
                let hi = (lo + config.rack_size).min(server_count as u32);
                for s in lo..hi {
                    plan.events.push(FaultEvent::ServerDown {
                        server: ServerId(s),
                        at,
                        cause: FaultCause::RackOutage,
                    });
                    if back <= horizon {
                        plan.events.push(FaultEvent::ServerUp {
                            server: ServerId(s),
                            at: back,
                        });
                    }
                }
            }
        }
        plan.sort_events();
        plan
    }

    /// Geometric-ish outage length with the given mean, at least 1.
    fn outage_len(rng: &mut StdRng, mean: f64) -> u32 {
        let mean = mean.max(1.0);
        let u: f64 = rng.gen_range(0.0..1.0);
        // Inverse-CDF of the exponential, rounded up to a whole unit.
        let len = -mean * (1.0 - u).ln();
        (len.ceil() as u32).max(1)
    }

    /// Serialises the plan to its line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.events {
            match e {
                FaultEvent::ServerDown { server, at, cause } => {
                    out.push_str(&format!("down,{},{at},{cause}\n", server.index()));
                }
                FaultEvent::ServerUp { server, at } => {
                    out.push_str(&format!("up,{},{at}\n", server.index()));
                }
            }
        }
        for f in &self.input_faults {
            out.push_str(&format!("input,{}\n", f.to_field_text()));
        }
        out
    }

    /// Parses a plan serialised by [`FaultPlan::to_text`].
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] on a missing header or malformed line.
    pub fn from_text(text: &str) -> Result<Self, PlanParseError> {
        let mut saw_header = false;
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line == HEADER {
                saw_header = true;
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            let bad = |reason: String| PlanParseError::BadLine {
                line: lineno,
                reason,
            };
            let parse_u32 = |s: &str, what: &str| {
                s.parse::<u32>()
                    .map_err(|_| bad(format!("{what} is not a non-negative integer: {s:?}")))
            };
            match fields.first().copied() {
                Some("down") if fields.len() == 4 => {
                    let cause = match fields[3] {
                        "crash" => FaultCause::Crash,
                        "drain" => FaultCause::Drain,
                        "rack-outage" => FaultCause::RackOutage,
                        other => return Err(bad(format!("unknown fault cause {other:?}"))),
                    };
                    plan.events.push(FaultEvent::ServerDown {
                        server: ServerId(parse_u32(fields[1], "server")?),
                        at: parse_u32(fields[2], "time")?,
                        cause,
                    });
                }
                Some("up") if fields.len() == 3 => {
                    plan.events.push(FaultEvent::ServerUp {
                        server: ServerId(parse_u32(fields[1], "server")?),
                        at: parse_u32(fields[2], "time")?,
                    });
                }
                Some("input") if fields.len() >= 2 => {
                    let fault = InputFault::from_field_text(&fields[1..])
                        .map_err(|reason| bad(reason))?;
                    plan.input_faults.push(fault);
                }
                _ => return Err(bad(format!("unrecognised plan line: {line:?}"))),
            }
        }
        if !saw_header {
            return Err(PlanParseError::BadHeader);
        }
        plan.sort_events();
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = FaultPlanConfig::with_fault_rate(0.5);
        let a = FaultPlan::generate(&config, 20, 100, 7);
        let b = FaultPlan::generate(&config, 20, 100, 7);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&config, 20, 100, 8);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn zero_rate_yields_empty_plan() {
        let config = FaultPlanConfig::with_fault_rate(0.0);
        assert!(FaultPlan::generate(&config, 50, 200, 3).is_empty());
    }

    #[test]
    fn events_are_time_ordered() {
        let config = FaultPlanConfig::with_fault_rate(0.8);
        let plan = FaultPlan::generate(&config, 30, 150, 11);
        assert!(!plan.is_empty());
        for pair in plan.events().windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
    }

    #[test]
    fn text_round_trip() {
        let config = FaultPlanConfig::with_fault_rate(0.6);
        let mut plan = FaultPlan::generate(&config, 12, 80, 5);
        plan.push_input_fault(InputFault::DuplicateVmLine { line: 9 });
        plan.push_input_fault(InputFault::TruncateAt { line: 4 });
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            FaultPlan::from_text("down,0,5,crash\n").unwrap_err(),
            PlanParseError::BadHeader
        );
        let bad = format!("{HEADER}\ndown,0,x,crash\n");
        assert!(matches!(
            FaultPlan::from_text(&bad).unwrap_err(),
            PlanParseError::BadLine { line: 2, .. }
        ));
        let bad = format!("{HEADER}\ndown,0,5,meteor\n");
        assert!(matches!(
            FaultPlan::from_text(&bad).unwrap_err(),
            PlanParseError::BadLine { .. }
        ));
    }

    #[test]
    fn rack_outage_hits_whole_rack() {
        let config = FaultPlanConfig {
            fault_rate: 0.0,
            drain_rate: 0.0,
            rack_outage_rate: 1.0,
            rack_size: 4,
            mean_outage: 5.0,
        };
        let plan = FaultPlan::generate(&config, 8, 100, 1);
        let downed: Vec<u32> = plan
            .events()
            .iter()
            .filter_map(|e| match e {
                FaultEvent::ServerDown {
                    server,
                    cause: FaultCause::RackOutage,
                    ..
                } => Some(server.index() as u32),
                _ => None,
            })
            .collect();
        assert_eq!(downed.len(), 8, "both racks of 4 go down: {downed:?}");
    }
}
