//! Repair and graceful-degradation policies.
//!
//! When a server goes down, its live VMs are displaced and queued for
//! repair. The engine retries placement a bounded number of times with
//! deterministic exponential backoff; when a displaced VM exhausts its
//! retries (or its interval ends first) it is *shed* — dropped from the
//! schedule and counted, never panicked over. [`ShedPolicy`] decides
//! which queued VMs take priority when capacity is scarce.

use std::fmt;
use std::str::FromStr;

/// Order in which queued displaced VMs compete for scarce capacity.
///
/// The policy orders the retry queue at each processing instant; VMs at
/// the *front* get first claim on capacity, so the ones a policy ranks
/// last are the ones shed first under sustained pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Give capacity to the VMs with the most remaining runtime;
    /// smallest-remaining VMs are sacrificed first. This minimises the
    /// displaced VM-minutes lost per shed and is the default.
    #[default]
    SmallestRemainingFirst,
    /// Give capacity to the smallest-remaining VMs (cheapest to finish)
    /// and shed long tails first.
    LargestRemainingFirst,
    /// First displaced, first served: shed the most recent arrivals.
    ArrivalOrder,
}

impl ShedPolicy {
    /// Stable lower-case name used by the CLI and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::SmallestRemainingFirst => "smallest-remaining-first",
            ShedPolicy::LargestRemainingFirst => "largest-remaining-first",
            ShedPolicy::ArrivalOrder => "arrival-order",
        }
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smallest-remaining-first" | "smallest" => Ok(ShedPolicy::SmallestRemainingFirst),
            "largest-remaining-first" | "largest" => Ok(ShedPolicy::LargestRemainingFirst),
            "arrival-order" | "arrival" => Ok(ShedPolicy::ArrivalOrder),
            other => Err(format!(
                "unknown shed policy {other:?} (expected smallest-remaining-first, \
                 largest-remaining-first, or arrival-order)"
            )),
        }
    }
}

/// Knobs governing repair retries and admission shedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Retries after the immediate repair attempt before a VM is shed.
    pub max_retries: u32,
    /// Base backoff in time units; attempt `k` waits `backoff * 2^(k-1)`.
    pub backoff: u32,
    /// Queue-ordering policy deciding which VMs are shed under pressure.
    pub shed: ShedPolicy,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff: 2,
            shed: ShedPolicy::SmallestRemainingFirst,
        }
    }
}

impl RepairPolicy {
    /// Delay before retry attempt `attempt` (1-based): `backoff *
    /// 2^(attempt-1)`, saturating, never less than 1 so the engine
    /// always makes forward progress.
    pub fn delay_for(&self, attempt: u32) -> u32 {
        let shift = attempt.saturating_sub(1).min(31);
        self.backoff.saturating_mul(1u32 << shift).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let policy = RepairPolicy::default();
        assert_eq!(policy.delay_for(1), 2);
        assert_eq!(policy.delay_for(2), 4);
        assert_eq!(policy.delay_for(3), 8);
        let extreme = RepairPolicy {
            backoff: u32::MAX,
            ..RepairPolicy::default()
        };
        assert_eq!(extreme.delay_for(30), u32::MAX);
        let zero = RepairPolicy {
            backoff: 0,
            ..RepairPolicy::default()
        };
        assert_eq!(zero.delay_for(1), 1, "progress is guaranteed");
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            ShedPolicy::SmallestRemainingFirst,
            ShedPolicy::LargestRemainingFirst,
            ShedPolicy::ArrivalOrder,
        ] {
            assert_eq!(policy.name().parse::<ShedPolicy>().unwrap(), policy);
        }
        assert!("meteor".parse::<ShedPolicy>().is_err());
    }
}
