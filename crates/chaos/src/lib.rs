//! Deterministic fault injection and failure-aware replay.
//!
//! The paper's model (Eqs. 1–14) assumes every server stays healthy
//! over the whole horizon; real fleets do not. This crate scripts what
//! goes wrong — timed server outages and input-level trace corruption —
//! as serialisable, seeded [`FaultPlan`]s, and replays any allocator's
//! intended placement against a plan with [`ChaosEngine`]: evictions
//! charge the energy ledger exactly up to the crash instant, displaced
//! work is repaired through the same incremental-cost scoring MIEC
//! uses, and sustained pressure degrades gracefully into bounded
//! retries and policy-ordered shedding instead of panics.
//!
//! Two properties anchor the design, both enforced by tests:
//!
//! * **Empty-plan equivalence** — replaying under [`FaultPlan::empty`]
//!   reproduces the offline allocator's placements, cost, and Eq. 7
//!   energy breakdown bit for bit, for every allocator kind.
//! * **Energy conservation under faults** — after any crash/recover
//!   sequence, every ledger's run + idle + transition decomposition
//!   still sums exactly to its `cost()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod input;
pub mod plan;
pub mod policy;

pub use engine::{ChaosEngine, ChaosError, ChaosReport, RepairRecord};
pub use input::InputFault;
pub use plan::{FaultCause, FaultEvent, FaultPlan, FaultPlanConfig, PlanCursor, PlanParseError};
pub use policy::{RepairPolicy, ShedPolicy};
