//! The `esvm serve` write-ahead journal (ESVJ v1).
//!
//! A serve session is a long-lived process making irrevocable
//! decisions; losing its state to a crash would strand every placement
//! it acknowledged. The journal makes the session crash-recoverable
//! with the standard write-ahead contract: every state-changing event
//! is appended (and, on the batched [`fsync`](JournalWriter::sync)
//! cadence, made durable) *before* the reply leaves the process, and
//! recovery replays the log through a fresh [`OnlineEngine`] — which is
//! deterministic, so the replayed state is bit-exact, checkable against
//! the retired-cost telescoping invariant snapshotted in
//! [`JournalRecord::Checkpoint`] records.
//!
//! ## On-disk format
//!
//! Little-endian throughout, FNV-1a 64 checksums (the same function as
//! the ESVT trace codec):
//!
//! ```text
//! magic    "ESVJ" (4 bytes)
//! version  u16
//! fleet    u32 server count, then per server:
//!          id u32 · cpu f64 · mem f64 · p_idle f64 · p_peak f64 · alpha f64
//! sum      u64 FNV-1a over version..fleet (a journal is self-contained:
//!          recovery needs no side channel to rebuild the engine)
//! records  each: len u32 · payload (len bytes) · u64 FNV-1a(payload)
//! ```
//!
//! Record payloads are a tag byte plus fixed fields — see
//! [`JournalRecord`]. The framing makes a torn tail (a crash mid-append
//! or mid-sync) detectable: recovery accepts the longest prefix of
//! valid records and reports the rest as
//! [`torn_bytes`](Recovered::torn_bytes) for the caller to truncate
//! before appending again. A header that fails validation is a typed
//! error instead — there is no prefix state to fall back to (the
//! header is synced before the first record is acknowledged, so a
//! journal that ever acked anything has a durable header).
//!
//! Nothing in this module panics on untrusted bytes: every decoded
//! quantity is validated before it reaches a constructor with
//! invariants ([`Resources`], [`PowerModel`], [`Interval`]).
//!
//! [`OnlineEngine`]: esvm_core::OnlineEngine

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use esvm_simcore::{PowerModel, Resources, ServerId, ServerSpec, TimeUnit, Vm, VmId, MAX_TIME};
use esvm_workload::trace::fields;

/// File magic: an ESVJ journal, not an ESVT trace.
pub const MAGIC: [u8; 4] = *b"ESVJ";
/// Format version this build writes and reads.
pub const VERSION: u16 = 1;
/// Sanity cap on one record's payload length; a larger declared length
/// is treated as a torn/corrupt frame, bounding recovery allocations.
pub const MAX_RECORD_LEN: u32 = 1024;

/// Bytes per serialized server spec in the header.
const SERVER_BYTES: usize = 4 + 5 * 8;

/// Write-buffer size: large enough that a whole group-commit window
/// (`--fsync-every` records at ~41 bytes each) coalesces into one
/// `write(2)` at the sync barrier instead of dribbling out in 8 KiB
/// default-BufWriter chunks between barriers.
const WRITE_BUF_BYTES: usize = 64 * 1024;

const TAG_REQ: u8 = 1;
const TAG_DRAIN: u8 = 2;
const TAG_DOWN: u8 = 3;
const TAG_UP: u8 = 4;
const TAG_SHED: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;

/// FNV-1a 64-bit, matching the ESVT codec's checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Typed journal failures. Like the serve protocol's errors, every
/// variant describes *why* without panicking; corrupt input can never
/// poison a recovery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JournalError {
    /// The file does not start with the ESVJ magic bytes.
    BadMagic,
    /// The journal's format version is unsupported.
    BadVersion(u16),
    /// The header (fleet section) is structurally invalid: truncated,
    /// checksum mismatch, or a server spec that violates the physical
    /// invariants. Unrecoverable — without a fleet there is no engine.
    CorruptHeader(String),
    /// A record with a *valid* checksum decodes to an impossible value
    /// (unknown tag, undersized payload, non-finite demand). This is
    /// version drift or in-memory corruption, not a torn tail, so it
    /// is an error rather than a silent truncation point.
    CorruptRecord {
        /// 0-based index of the offending record.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A [`JournalRecord::Checkpoint`] disagrees with the replayed
    /// engine state: the journal and the engine have diverged and the
    /// recovered state cannot be trusted.
    CheckpointMismatch {
        /// The checkpoint field that differs.
        field: &'static str,
        /// Value recorded in the journal.
        journal: u64,
        /// Value reached by replay.
        replayed: u64,
    },
    /// Reading or writing the underlying byte stream failed.
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "not an ESVJ journal (bad magic bytes)"),
            JournalError::BadVersion(v) => write!(f, "unsupported ESVJ version {v}"),
            JournalError::CorruptHeader(reason) => write!(f, "corrupt journal header: {reason}"),
            JournalError::CorruptRecord { index, reason } => {
                write!(f, "corrupt journal record {index}: {reason}")
            }
            JournalError::CheckpointMismatch {
                field,
                journal,
                replayed,
            } => write!(
                f,
                "checkpoint mismatch on {field}: journal recorded {journal}, replay reached {replayed}"
            ),
            JournalError::Io(e) => write!(f, "journal I/O failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

/// A consistency snapshot of the replayed engine, written on `DRAIN`
/// and graceful shutdown. Replay verifies every field bit-for-bit
/// (costs compare by `f64::to_bits`), turning silent divergence into
/// [`JournalError::CheckpointMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Session clock.
    pub clock: TimeUnit,
    /// Currently live VMs.
    pub live: u64,
    /// Arrivals answered `PLACED`.
    pub placed: u64,
    /// Arrivals answered `REJECTED`.
    pub rejected: u64,
    /// Departures fired (scheduled or explicit).
    pub departed: u64,
    /// VMs evicted by `DOWN` verbs.
    pub evicted: u64,
    /// Evicted VMs re-placed by the repair path.
    pub repaired: u64,
    /// `OnlineEngine::committed_cost().to_bits()`.
    pub committed_cost_bits: u64,
    /// `OnlineEngine::retired_cost().to_bits()`.
    pub retired_cost_bits: u64,
}

/// One journaled event, in the order it was applied to the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalRecord {
    /// An admitted `REQ` — journaled before the engine decides, so a
    /// request the engine then rejects (duplicate id, out-of-order)
    /// replays to the identical rejection.
    Req(Vm),
    /// A `DRAIN` verb: every live VM departed.
    Drain,
    /// A `DOWN` verb with the repair policy in force when it was
    /// applied, so replay repairs with the same retry schedule even if
    /// the process restarts with different flags.
    Down {
        /// The downed server.
        server: ServerId,
        /// `--retries` at the time of the fault.
        retries: u32,
        /// `--backoff` at the time of the fault.
        backoff: u32,
    },
    /// An `UP` verb.
    Up(ServerId),
    /// A request shed by the bounded admission queue. The engine never
    /// saw it; replay only restores the overload counter.
    Shed(VmId),
    /// A consistency snapshot (see [`Checkpoint`]).
    Checkpoint(Checkpoint),
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A little-endian cursor that can never read past its slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64_bits(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Encodes one record's payload (tag + fields, no framing).
pub fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    encode_record_into(record, &mut buf);
    buf
}

/// [`encode_record`] into a caller-owned buffer (appended, not
/// cleared) — the allocation-free path the hot append loop uses.
pub fn encode_record_into(record: &JournalRecord, buf: &mut Vec<u8>) {
    match record {
        JournalRecord::Req(vm) => {
            buf.push(TAG_REQ);
            put_u32(buf, vm.id().0);
            put_u32(buf, vm.start());
            put_u32(buf, vm.end());
            put_f64(buf, vm.demand().cpu);
            put_f64(buf, vm.demand().mem);
        }
        JournalRecord::Drain => buf.push(TAG_DRAIN),
        JournalRecord::Down {
            server,
            retries,
            backoff,
        } => {
            buf.push(TAG_DOWN);
            put_u32(buf, server.0);
            put_u32(buf, *retries);
            put_u32(buf, *backoff);
        }
        JournalRecord::Up(server) => {
            buf.push(TAG_UP);
            put_u32(buf, server.0);
        }
        JournalRecord::Shed(vm) => {
            buf.push(TAG_SHED);
            put_u32(buf, vm.0);
        }
        JournalRecord::Checkpoint(c) => {
            buf.push(TAG_CHECKPOINT);
            put_u32(buf, c.clock);
            put_u64(buf, c.live);
            put_u64(buf, c.placed);
            put_u64(buf, c.rejected);
            put_u64(buf, c.departed);
            put_u64(buf, c.evicted);
            put_u64(buf, c.repaired);
            put_u64(buf, c.committed_cost_bits);
            put_u64(buf, c.retired_cost_bits);
        }
    }
}

/// Decodes one payload whose checksum already verified. Failure here
/// means the bytes are *consistently* wrong (version drift), which is
/// reported as a reason string for [`JournalError::CorruptRecord`].
pub fn decode_record(payload: &[u8]) -> Result<JournalRecord, String> {
    let mut c = Cursor::new(payload);
    let tag = c.u8().ok_or("empty payload")?;
    let record = match tag {
        TAG_REQ => {
            let id = c.u32().ok_or("REQ truncated")?;
            let start = c.u32().ok_or("REQ truncated")?;
            let end = c.u32().ok_or("REQ truncated")?;
            let cpu = c.f64_bits().ok_or("REQ truncated")?;
            let mem = c.f64_bits().ok_or("REQ truncated")?;
            if !(cpu.is_finite() && mem.is_finite() && cpu >= 0.0 && mem >= 0.0) {
                return Err(format!("REQ {id} has impossible demand cpu={cpu} mem={mem}"));
            }
            if start > end || end > MAX_TIME {
                return Err(format!("REQ {id} has impossible interval [{start}, {end}]"));
            }
            let interval = fields::checked_interval(start, end).map_err(|e| e.reason)?;
            JournalRecord::Req(Vm::new(id, Resources::new(cpu, mem), interval))
        }
        TAG_DRAIN => JournalRecord::Drain,
        TAG_DOWN => {
            let server = c.u32().ok_or("DOWN truncated")?;
            let retries = c.u32().ok_or("DOWN truncated")?;
            let backoff = c.u32().ok_or("DOWN truncated")?;
            JournalRecord::Down {
                server: ServerId(server),
                retries,
                backoff,
            }
        }
        TAG_UP => JournalRecord::Up(ServerId(c.u32().ok_or("UP truncated")?)),
        TAG_SHED => JournalRecord::Shed(VmId(c.u32().ok_or("SHED truncated")?)),
        TAG_CHECKPOINT => {
            let clock = c.u32().ok_or("CHECKPOINT truncated")?;
            let mut next = || c.u64().ok_or("CHECKPOINT truncated");
            JournalRecord::Checkpoint(Checkpoint {
                clock,
                live: next()?,
                placed: next()?,
                rejected: next()?,
                departed: next()?,
                evicted: next()?,
                repaired: next()?,
                committed_cost_bits: next()?,
                retired_cost_bits: next()?,
            })
        }
        other => return Err(format!("unknown record tag {other}")),
    };
    if !c.done() {
        return Err("trailing bytes after record payload".to_owned());
    }
    Ok(record)
}

fn encode_header(servers: &[ServerSpec]) -> Vec<u8> {
    let mut body = Vec::with_capacity(2 + 4 + servers.len() * SERVER_BYTES);
    body.extend_from_slice(&VERSION.to_le_bytes());
    put_u32(&mut body, servers.len() as u32);
    for s in servers {
        put_u32(&mut body, s.id().0);
        put_f64(&mut body, s.capacity().cpu);
        put_f64(&mut body, s.capacity().mem);
        put_f64(&mut body, s.power().p_idle());
        put_f64(&mut body, s.power().p_peak());
        put_f64(&mut body, s.transition_cost());
    }
    let sum = fnv1a(&body);
    let mut out = Vec::with_capacity(4 + body.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn decode_header(bytes: &[u8]) -> Result<(Vec<ServerSpec>, usize), JournalError> {
    if bytes.len() < 4 {
        return Err(JournalError::BadMagic);
    }
    if bytes[..4] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let corrupt = |reason: &str| JournalError::CorruptHeader(reason.to_owned());
    let mut c = Cursor::new(&bytes[4..]);
    let version_bytes = c.take(2).ok_or_else(|| corrupt("truncated version"))?;
    let version = u16::from_le_bytes(version_bytes.try_into().expect("2 bytes"));
    // The version is covered by the checksum, but a *recognisably*
    // different version deserves its typed error even if a later
    // corruption check would also fire.
    if version != VERSION {
        return Err(JournalError::BadVersion(version));
    }
    let count = c.u32().ok_or_else(|| corrupt("truncated server count"))? as usize;
    // A flipped count byte could demand gigabytes; the checksummed
    // region must actually be present before anything is trusted.
    let body_len = 2 + 4 + count
        .checked_mul(SERVER_BYTES)
        .ok_or_else(|| corrupt("server count overflows"))?;
    let body = bytes
        .get(4..4 + body_len)
        .ok_or_else(|| corrupt("truncated fleet section"))?;
    let sum_bytes = bytes
        .get(4 + body_len..4 + body_len + 8)
        .ok_or_else(|| corrupt("truncated header checksum"))?;
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(corrupt("header checksum mismatch"));
    }

    let mut servers = Vec::with_capacity(count);
    let mut c = Cursor::new(&body[6..]);
    for i in 0..count {
        let id = c.u32().expect("length checked");
        let cpu = c.f64_bits().expect("length checked");
        let mem = c.f64_bits().expect("length checked");
        let p_idle = c.f64_bits().expect("length checked");
        let p_peak = c.f64_bits().expect("length checked");
        let alpha = c.f64_bits().expect("length checked");
        // Constructor invariants, validated so corrupt-but-checksummed
        // bytes (version drift) fail typed instead of panicking.
        if !(cpu.is_finite() && mem.is_finite() && cpu > 0.0 && mem >= 0.0) {
            return Err(corrupt(&format!("server {i} has impossible capacity")));
        }
        if !(p_idle.is_finite() && p_peak.is_finite() && 0.0 <= p_idle && p_idle <= p_peak) {
            return Err(corrupt(&format!("server {i} has impossible power model")));
        }
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(corrupt(&format!("server {i} has impossible transition cost")));
        }
        servers.push(ServerSpec::new(
            id,
            Resources::new(cpu, mem),
            PowerModel::new(p_idle, p_peak),
            alpha,
        ));
    }
    Ok((servers, 4 + body_len + 8))
}

/// The result of reading a journal: the fleet, the longest valid
/// record prefix, and how much of a torn tail was discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The fleet the session ran over, from the self-contained header.
    pub servers: Vec<ServerSpec>,
    /// Every record of the longest valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte offset one past the last valid record — the length to
    /// truncate the file to before appending to it again.
    pub valid_len: u64,
    /// Bytes after `valid_len` discarded as a torn tail.
    pub torn_bytes: u64,
}

/// Parses journal bytes: header strictly, then the longest prefix of
/// records whose framing and checksums verify. A record that frames
/// and checksums correctly but decodes to an impossible value is
/// [`JournalError::CorruptRecord`] — that is divergence, not tearing.
///
/// # Errors
///
/// [`JournalError::BadMagic`] / [`BadVersion`](JournalError::BadVersion)
/// / [`CorruptHeader`](JournalError::CorruptHeader) for an unusable
/// header, [`CorruptRecord`](JournalError::CorruptRecord) as above.
/// A torn tail is *not* an error.
pub fn recover_bytes(bytes: &[u8]) -> Result<Recovered, JournalError> {
    let (servers, header_len) = decode_header(bytes)?;
    let mut records = Vec::new();
    let mut off = header_len;
    loop {
        let Some(len_bytes) = bytes.get(off..off + 4) else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        let Some(payload) = bytes.get(off + 4..off + 4 + len) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(off + 4 + len..off + 4 + len + 8) else {
            break;
        };
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a(payload) != stored {
            break;
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                return Err(JournalError::CorruptRecord {
                    index: records.len(),
                    reason,
                })
            }
        }
        off += 4 + len + 8;
    }
    Ok(Recovered {
        servers,
        records,
        valid_len: off as u64,
        torn_bytes: (bytes.len() - off) as u64,
    })
}

/// Reads and parses a journal file. See [`recover_bytes`].
///
/// # Errors
///
/// [`JournalError::Io`] on read failure, else as [`recover_bytes`].
pub fn recover_file(path: impl AsRef<Path>) -> Result<Recovered, JournalError> {
    recover_bytes(&std::fs::read(path)?)
}

/// Truncates a recovered journal's torn tail in place so the file ends
/// at the last valid record and can be appended to again.
///
/// # Errors
///
/// [`JournalError::Io`] on filesystem failure.
pub fn truncate_torn_tail(path: impl AsRef<Path>, recovered: &Recovered) -> Result<(), JournalError> {
    if recovered.torn_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(recovered.valid_len)?;
        file.sync_data()?;
    }
    Ok(())
}

/// The append side of the journal: length-prefixed checksummed frames
/// through a buffered writer, with an every-`fsync_every`-records
/// durability barrier (`0` = only explicit [`sync`](Self::sync) calls,
/// e.g. at checkpoints). Appends land in the writer's buffer; the
/// flush + `fsync` pair is batched — group commit, exactly like a
/// database log. A crash inside the window loses at most the last
/// `fsync_every` acknowledged events **as a torn tail**, which
/// [`recover_bytes`] truncates to the longest valid record prefix; it
/// can never corrupt the replayable prefix, because every frame
/// carries its own checksum.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
    fsync_every: u32,
    unsynced: u32,
    appends: u64,
    fsyncs: u64,
    /// Reused payload buffer so the hot append path allocates nothing.
    scratch: Vec<u8>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing
    /// file), writes the fleet header and makes it durable.
    ///
    /// # Errors
    ///
    /// I/O errors from creation, writing or syncing.
    pub fn create(
        path: impl AsRef<Path>,
        servers: &[ServerSpec],
        fsync_every: u32,
    ) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::with_capacity(WRITE_BUF_BYTES, file);
        out.write_all(&encode_header(servers))?;
        out.flush()?;
        out.get_ref().sync_data()?;
        Ok(Self {
            out,
            fsync_every,
            unsynced: 0,
            appends: 0,
            fsyncs: 1,
            scratch: Vec::with_capacity(128),
        })
    }

    /// Opens an existing journal for appending. The caller is expected
    /// to have validated it with [`recover_file`] and truncated any
    /// torn tail with [`truncate_torn_tail`] first.
    ///
    /// # Errors
    ///
    /// I/O errors from opening the file.
    pub fn open_append(path: impl AsRef<Path>, fsync_every: u32) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            out: BufWriter::with_capacity(WRITE_BUF_BYTES, file),
            fsync_every,
            unsynced: 0,
            appends: 0,
            fsyncs: 0,
            scratch: Vec::with_capacity(128),
        })
    }

    /// Appends one record frame; every `fsync_every` appends the
    /// buffer is flushed and made durable.
    ///
    /// # Errors
    ///
    /// I/O errors from writing or syncing. On error the record must be
    /// considered unjournaled and the event must not be applied.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0u8; 4]);
        encode_record_into(record, &mut self.scratch);
        let len = (self.scratch.len() - 4) as u32;
        self.scratch[..4].copy_from_slice(&len.to_le_bytes());
        let sum = fnv1a(&self.scratch[4..]);
        self.scratch.extend_from_slice(&sum.to_le_bytes());
        self.out.write_all(&self.scratch)?;
        self.appends += 1;
        self.unsynced += 1;
        if self.fsync_every > 0 && self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes and fsyncs pending appends (a durability barrier).
    ///
    /// # Errors
    ///
    /// I/O errors from flushing or syncing.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.unsynced = 0;
        self.fsyncs += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Durability barriers issued so far (including the header sync).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::Interval;

    fn fleet() -> Vec<ServerSpec> {
        (0..3u32)
            .map(|i| {
                ServerSpec::new(
                    i,
                    Resources::new(8.0, 16.0),
                    PowerModel::new(100.0, 200.0),
                    120.0,
                )
            })
            .collect()
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Req(Vm::new(
                0,
                Resources::new(2.0, 4.0),
                Interval::new(1, 10),
            )),
            JournalRecord::Down {
                server: ServerId(1),
                retries: 3,
                backoff: 2,
            },
            JournalRecord::Up(ServerId(1)),
            JournalRecord::Shed(VmId(9)),
            JournalRecord::Drain,
            JournalRecord::Checkpoint(Checkpoint {
                clock: 10,
                live: 0,
                placed: 1,
                rejected: 0,
                departed: 1,
                evicted: 0,
                repaired: 0,
                committed_cost_bits: 4_618_441_417_868_443_648,
                retired_cost_bits: 0,
            }),
        ]
    }

    #[test]
    fn records_round_trip() {
        for record in sample_records() {
            let payload = encode_record(&record);
            assert_eq!(decode_record(&payload), Ok(record), "{record:?}");
        }
    }

    #[test]
    fn file_round_trip_and_counters() {
        let path = std::env::temp_dir().join("esvj_round_trip.wal");
        let mut w = JournalWriter::create(&path, &fleet(), 2).unwrap();
        let records = sample_records();
        for r in &records {
            w.append(r).unwrap();
        }
        assert_eq!(w.appends(), records.len() as u64);
        // Header sync + one barrier per two appends.
        assert_eq!(w.fsyncs(), 1 + records.len() as u64 / 2);
        drop(w);

        let rec = recover_file(&path).unwrap();
        assert_eq!(rec.records, records);
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.servers.len(), 3);
        assert_eq!(rec.servers[1].capacity().cpu, 8.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = std::env::temp_dir().join("esvj_torn.wal");
        let mut w = JournalWriter::create(&path, &fleet(), 0).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Cut mid-record: the prefix parses, the tail is reported.
        let cut = full.len() - 5;
        let rec = recover_bytes(&full[..cut]).unwrap();
        assert!(rec.records.len() < sample_records().len());
        assert_eq!(rec.valid_len + rec.torn_bytes, cut as u64);
        // Truncation brings the file back to a clean append point.
        std::fs::write(&path, &full[..cut]).unwrap();
        truncate_torn_tail(&path, &rec).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            rec.valid_len
        );
        let again = recover_file(&path).unwrap();
        assert_eq!(again.records, rec.records);
        assert_eq!(again.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_is_typed() {
        let bytes = encode_header(&fleet());
        assert_eq!(recover_bytes(b"ESVT"), Err(JournalError::BadMagic));
        assert_eq!(recover_bytes(&bytes[..3]), Err(JournalError::BadMagic));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert_eq!(
            recover_bytes(&wrong_version),
            Err(JournalError::BadVersion(9))
        );
        let mut flipped = bytes.clone();
        let last = flipped.len() - 20;
        flipped[last] ^= 0x10;
        assert!(matches!(
            recover_bytes(&flipped),
            Err(JournalError::CorruptHeader(_))
        ));
        // Truncated fleet section.
        assert!(matches!(
            recover_bytes(&bytes[..bytes.len() - 9]),
            Err(JournalError::CorruptHeader(_))
        ));
    }

    #[test]
    fn valid_checksum_with_impossible_payload_is_corrupt_record() {
        let mut bytes = encode_header(&fleet());
        // Hand-forge a frame with a valid checksum over an unknown tag.
        let payload = [42u8, 1, 2, 3];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        assert!(matches!(
            recover_bytes(&bytes),
            Err(JournalError::CorruptRecord { index: 0, .. })
        ));
    }
}
