//! The `esvm` command-line front end.
//!
//! ```text
//! esvm table1 | table2                  # reproduce Tables I / II
//! esvm fig2 … fig9 [--seeds N] [--quick] [--csv]
//! esvm all [--seeds N] [--quick]        # every artefact in order
//! esvm compare --vms N --servers N [--interarrival F] [--duration F]
//!              [--transition F] [--algos a,b,…] [--seed N]
//! esvm exact [--vms N] [--servers N] [--seed N]
//! esvm timeline [--vms N] [--servers N] [--seed N] [--algos a,b,…]
//! esvm chaos [--fault-rate F] [--seed N] [--retries N] [--backoff N]
//!            [--shed-policy P] [--plan FILE | --plan-out FILE]
//! ```
//!
//! Parsing is deliberately dependency-free; [`run`] returns the rendered
//! output so it is fully testable.

use crate::options::ExpOptions;
use crate::runner::{MonteCarlo, RunError};
use crate::{experiments, Figure};
use esvm_analysis::Table;
use esvm_core::AllocatorKind;
use esvm_ilp::Formulation;
use esvm_par::Parallelism;
use esvm_workload::WorkloadConfig;
use std::fmt;

/// CLI errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Unknown command or malformed flags; carries the usage text.
    Usage(String),
    /// An experiment failed.
    Run(RunError),
    /// The exact solver failed.
    Exact(esvm_ilp::MilpError),
    /// Decoding/auditing failed.
    Sim(esvm_simcore::Error),
    /// A chaos replay failed.
    Chaos(esvm_chaos::ChaosError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Run(e) => write!(f, "experiment failed: {e}"),
            CliError::Exact(e) => write!(f, "exact solve failed: {e}"),
            CliError::Sim(e) => write!(f, "simulation error: {e}"),
            CliError::Chaos(e) => write!(f, "chaos replay failed: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        CliError::Run(e)
    }
}

const USAGE: &str = "\
usage: esvm <command> [options]

commands:
  table1            VM type catalog (paper Table I)
  table2            server type catalog (paper Table II)
  fig2 .. fig9      reproduce the corresponding paper figure
  ext-migration     extension E1: live-migration consolidation trade-off
  ext-arrivals      extension E2: diurnal / bursty arrival streams
  ext-overload      extension E3: admission control under overload
  all               every table and figure in order
  compare           one Monte-Carlo comparison at explicit parameters
  exact             certify heuristics against the exact ILP optimum
  timeline          replay one instance and chart power / active servers
  gen               generate a workload and write it as a trace file
                    (--out x.esvt streams the binary columnar format)
  solve             load a trace file (text or ESVT) and compare
                    allocators on it
  query             run a piped query plan over a trace or an
                    --events-out JSONL file, e.g.
                    esvm query \"load t.esvt | filter start >= 50 \\
                                | agg count,mean:cpu by:end\"
                    stages: load PATH | filter COL OP VALUE | sel COL,…
                            | agg count,sum:C,mean:C,min:C,max:C [by:C]
                            | head N
  plan              capacity planning: admission/energy frontier over
                    fleet sizes (--target F, --sizes a,b,c)
  report            standalone HTML report with SVG plots of every
                    artefact (use --out report.html)
  chaos             fault-injection run: replay allocations under a
                    seeded plan of server outages with repair + shedding
  serve             long-running online allocation loop: REQ lines in,
                    irrevocable PLACED/REJECTED decisions out
                    (stdin by default; --socket PATH for a Unix socket;
                    --trace FILE replays a text or ESVT trace as the
                    event stream)
  gap               online/offline optimality gap: per-seed empirical
                    competitive ratio of online greedy vs offline MIEC
                    (--adversary break-even|sawtooth for the
                    Albers-Quedenfeld lower-bound traces)

options (figures):
  --seeds N         Monte-Carlo seeds per point (default 50)
  --threads N       worker threads fanning seeds out (default: all
                    cores, or ESVM_THREADS when set)
  --algo-threads N  threads inside each allocator's scoring loops
                    (default: ESVM_THREADS, else 1; results are
                    bit-identical for every value)
  --shards K        server-shard count of the sharded parallel engine
                    (default: ESVM_SHARDS, else auto from the thread
                    count; 0 = auto; bit-identical for every value)
  --batch B         arrival-batch size per pool wake-up (default:
                    ESVM_BATCH, else 16; bit-identical for every value)
  --quick           scaled-down VM counts and 6 seeds
  --csv             emit CSV instead of aligned tables

options (compare):
  --vms N --servers N --interarrival F --duration F --transition F
  --algos a,b,…     default: miec,ffps (--algo is an alias)
  --seed N          base seed (default 0)
  --standard-vms    restrict VM catalog to the four standard types
  --small-servers   restrict server catalog to types 1-3

options (exact):
  --vms N (default 4) --servers N (default 2) --seed N (default 0)

options (chaos):
  --fault-rate F    per-server crash probability over the horizon
                    (default 0.1; drains and rack outages scale with it)
  --rack-size N     servers per rack for correlated outages (default 8)
  --mean-outage F   mean outage length in time units (default 10)
  --retries N       repair retries before a displaced VM is shed
                    (default 3)
  --backoff N       base retry backoff in time units, doubling per
                    attempt (default 2)
  --shed-policy P   smallest-remaining-first | largest-remaining-first |
                    arrival-order (default smallest-remaining-first)
  --plan FILE       replay a serialized fault plan instead of
                    generating one from --fault-rate/--seed
  --plan-out FILE   write the fault plan used, for later replay
  --live            drill the plan against a *live* serve session: the
                    DOWN/UP events interleave with the arrival stream
                    through the serve fault verbs (evict + bounded
                    backoff repair); --journal/--queue apply
  (--vms/--servers/--seed/--algos and the telemetry flags also apply)

options (serve):
  --trace FILE      replay a trace file instead of reading stdin (ESVT
                    streams through TraceReader::records; text traces
                    are materialised and fed in arrival order)
  --socket PATH     accept one connection on a Unix socket and serve
                    it to EOF (unix only)
  --servers N       fleet size for the stdin/socket fleet (default 50)
  --seed N          seed of the generated fleet specs (default 0)
  --journal FILE    write-ahead journal: every accepted event is
                    appended (checksummed) before its reply; pass the
                    same path as --recover to resume a crashed journal
  --fsync-every N   group-commit cadence: fsync after every N journal
                    appends (default 4096, a ~10ms durability window
                    at full throughput; 0 = only at checkpoints)
  --recover FILE    replay a journal before serving: the fleet comes
                    from the journal header, a torn tail is truncated,
                    and the engine state is rebuilt bit-exactly
  --queue N         bounded admission queue: at most N simultaneous
                    arrivals admitted per burst, the rest answered
                    ERR overloaded (trace feeds; default unbounded)
  --retries N / --backoff N   repair policy for DOWN evictions
  (protocol: REQ id start dur cpu mem | DOWN s | UP s | STATS | DRAIN;
   replies PLACED id server | REJECTED id | DOWNED s evicted=…
   repaired=… shed=… | UPPED s | ERR code detail)

options (gap):
  --seeds N         seeds to measure (default 10), starting at --seed
  --adversary P     break-even | sawtooth adversarial preset instead
                    of the paper workload model
  (--vms/--servers and the workload flags shape the instances)

options (telemetry, compare/solve/chaos/serve):
  --metrics-out F   run one instrumented pass per algorithm and write
                    its decision metrics as CSV (histogram rows carry
                    exact p50/p95/p99; a summary table is also
                    appended to the output)
  --events-out F    stream the per-decision events of that pass as
                    JSON lines (one object per placement / move)
  --trace-out F     write the decision-provenance trace of that pass:
                    hierarchical spans, per-placement explain records
                    and span-latency percentiles. A .json extension
                    selects Chrome trace_event JSON (load in Perfetto
                    / chrome://tracing); anything else is flat JSONL
                    that `esvm query` can load
  --force           allow --metrics-out / --events-out / --trace-out
                    to overwrite an existing file (refused by default)
";

/// Flag accumulator.
#[derive(Debug, Default, Clone)]
struct Flags {
    seeds: Option<u64>,
    threads: Option<usize>,
    quick: bool,
    csv: bool,
    vms: Option<usize>,
    servers: Option<usize>,
    interarrival: Option<f64>,
    duration: Option<f64>,
    transition: Option<f64>,
    algos: Option<Vec<AllocatorKind>>,
    seed: Option<u64>,
    standard_vms: bool,
    small_servers: bool,
    out: Option<String>,
    trace: Option<String>,
    target: Option<f64>,
    sizes: Option<Vec<usize>>,
    metrics_out: Option<String>,
    events_out: Option<String>,
    trace_out: Option<String>,
    force: bool,
    algo_threads: Option<usize>,
    algo_shards: Option<usize>,
    algo_batch: Option<usize>,
    fault_rate: Option<f64>,
    rack_size: Option<u32>,
    mean_outage: Option<f64>,
    retries: Option<u32>,
    backoff: Option<u32>,
    shed_policy: Option<esvm_chaos::ShedPolicy>,
    plan: Option<String>,
    plan_out: Option<String>,
    socket: Option<String>,
    adversary: Option<esvm_workload::AdversaryPreset>,
    journal: Option<String>,
    fsync_every: Option<u32>,
    recover: Option<String>,
    queue: Option<usize>,
    live: bool,
}

impl Flags {
    /// The thread policy for each allocator's scoring loops:
    /// `--algo-threads` wins, otherwise the `ESVM_THREADS` default, and
    /// the sharded-engine knobs `--shards` / `--batch` override
    /// `ESVM_SHARDS` / `ESVM_BATCH` the same way. A malformed
    /// environment variable is a hard error here rather than a silent
    /// fall-back to a default — the user asked for a configuration and
    /// would otherwise get a different one without warning.
    fn algo_parallelism(&self) -> Result<Parallelism, CliError> {
        let mut par = match self.algo_threads {
            Some(n) => Parallelism::try_from_env()
                .map(|env| env.with_threads(n))
                .unwrap_or_else(|_| Parallelism::new(n)),
            None => Parallelism::try_from_env().map_err(|e| {
                CliError::Usage(format!("{e} (or pass --algo-threads N)"))
            })?,
        };
        if let Some(k) = self.algo_shards {
            par = par.with_shards(k);
        }
        if let Some(b) = self.algo_batch {
            par = par.with_batch(b);
        }
        Ok(par)
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    let usage = |msg: String| CliError::Usage(format!("{msg}\n\n{USAGE}"));
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| usage(format!("flag {name} needs a value")))
        };
        match arg.as_str() {
            "--seeds" => {
                flags.seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|_| usage("--seeds must be an integer".into()))?,
                )
            }
            "--threads" => {
                flags.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| usage("--threads must be an integer".into()))?,
                )
            }
            "--quick" => flags.quick = true,
            "--csv" => flags.csv = true,
            "--force" => flags.force = true,
            "--algo-threads" => {
                flags.algo_threads = Some(
                    value("--algo-threads")?
                        .parse()
                        .map_err(|_| usage("--algo-threads must be an integer".into()))?,
                )
            }
            "--shards" => {
                flags.algo_shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|_| usage("--shards must be an integer".into()))?,
                )
            }
            "--batch" => {
                flags.algo_batch = Some(
                    value("--batch")?
                        .parse()
                        .map_err(|_| usage("--batch must be an integer".into()))?,
                )
            }
            "--standard-vms" => flags.standard_vms = true,
            "--small-servers" => flags.small_servers = true,
            "--vms" => {
                flags.vms = Some(
                    value("--vms")?
                        .parse()
                        .map_err(|_| usage("--vms must be an integer".into()))?,
                )
            }
            "--servers" => {
                flags.servers = Some(
                    value("--servers")?
                        .parse()
                        .map_err(|_| usage("--servers must be an integer".into()))?,
                )
            }
            "--interarrival" => {
                flags.interarrival = Some(
                    value("--interarrival")?
                        .parse()
                        .map_err(|_| usage("--interarrival must be a number".into()))?,
                )
            }
            "--duration" => {
                flags.duration = Some(
                    value("--duration")?
                        .parse()
                        .map_err(|_| usage("--duration must be a number".into()))?,
                )
            }
            "--transition" => {
                flags.transition = Some(
                    value("--transition")?
                        .parse()
                        .map_err(|_| usage("--transition must be a number".into()))?,
                )
            }
            "--out" => flags.out = Some(value("--out")?),
            "--metrics-out" => flags.metrics_out = Some(value("--metrics-out")?),
            "--events-out" => flags.events_out = Some(value("--events-out")?),
            "--trace-out" => flags.trace_out = Some(value("--trace-out")?),
            "--target" => {
                flags.target = Some(
                    value("--target")?
                        .parse()
                        .map_err(|_| usage("--target must be a number in (0, 1]".into()))?,
                )
            }
            "--sizes" => {
                let list = value("--sizes")?;
                let mut sizes = Vec::new();
                for item in list.split(',') {
                    sizes.push(item.parse::<usize>().map_err(|_| {
                        usage("--sizes must be a comma-separated list of integers".into())
                    })?);
                }
                flags.sizes = Some(sizes);
            }
            "--trace" => flags.trace = Some(value("--trace")?),
            "--fault-rate" => {
                let rate: f64 = value("--fault-rate")?
                    .parse()
                    .map_err(|_| usage("--fault-rate must be a number in [0, 1]".into()))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(usage("--fault-rate must be a number in [0, 1]".into()));
                }
                flags.fault_rate = Some(rate);
            }
            "--rack-size" => {
                flags.rack_size = Some(
                    value("--rack-size")?
                        .parse()
                        .map_err(|_| usage("--rack-size must be an integer".into()))?,
                )
            }
            "--mean-outage" => {
                flags.mean_outage = Some(
                    value("--mean-outage")?
                        .parse()
                        .map_err(|_| usage("--mean-outage must be a number".into()))?,
                )
            }
            "--retries" => {
                flags.retries = Some(
                    value("--retries")?
                        .parse()
                        .map_err(|_| usage("--retries must be an integer".into()))?,
                )
            }
            "--backoff" => {
                flags.backoff = Some(
                    value("--backoff")?
                        .parse()
                        .map_err(|_| usage("--backoff must be an integer".into()))?,
                )
            }
            "--shed-policy" => {
                flags.shed_policy = Some(
                    value("--shed-policy")?
                        .parse::<esvm_chaos::ShedPolicy>()
                        .map_err(usage)?,
                )
            }
            "--plan" => flags.plan = Some(value("--plan")?),
            "--plan-out" => flags.plan_out = Some(value("--plan-out")?),
            "--socket" => flags.socket = Some(value("--socket")?),
            "--journal" => flags.journal = Some(value("--journal")?),
            "--recover" => flags.recover = Some(value("--recover")?),
            "--live" => flags.live = true,
            "--fsync-every" => {
                flags.fsync_every = Some(
                    value("--fsync-every")?
                        .parse()
                        .map_err(|_| usage("--fsync-every must be an integer".into()))?,
                )
            }
            "--queue" => {
                flags.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|_| usage("--queue must be an integer".into()))?,
                )
            }
            "--adversary" => {
                flags.adversary = Some(
                    value("--adversary")?
                        .parse::<esvm_workload::AdversaryPreset>()
                        .map_err(|e| usage(e.to_string()))?,
                )
            }
            "--seed" => {
                flags.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| usage("--seed must be an integer".into()))?,
                )
            }
            "--algos" | "--algo" => {
                let list = value(arg)?;
                let mut kinds = Vec::new();
                for name in list.split(',') {
                    kinds.push(
                        name.parse::<AllocatorKind>()
                            .map_err(|e| usage(e.to_string()))?,
                    );
                }
                flags.algos = Some(kinds);
            }
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok(flags)
}

fn options_from(flags: &Flags) -> ExpOptions {
    let mut opts = if flags.quick {
        ExpOptions::quick()
    } else {
        ExpOptions::paper()
    };
    if let Some(s) = flags.seeds {
        opts.seeds = s;
    }
    if let Some(t) = flags.threads {
        opts.threads = t;
    }
    opts
}

fn render_figure(figure: &Figure, csv: bool) -> String {
    if csv {
        figure.to_csv()
    } else {
        figure.render()
    }
}

fn render_table(title: &str, table: &Table, csv: bool) -> String {
    if csv {
        table.to_csv()
    } else {
        format!("{title}\n\n{table}")
    }
}

/// Runs the CLI and returns the rendered output.
///
/// # Errors
///
/// [`CliError::Usage`] for malformed invocations, otherwise the
/// underlying experiment error.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    // `query` takes a free-form pipe expression, not flags.
    if command == "query" {
        let expr = rest.join(" ");
        if expr.trim().is_empty() {
            return Err(CliError::Usage(format!(
                "query needs a plan, e.g. `esvm query \"load trace.esvt | agg count\"`\n\n{USAGE}"
            )));
        }
        return crate::query::run_query(&expr)
            .map_err(|e| CliError::Usage(e.to_string()));
    }
    let flags = parse_flags(rest)?;
    let opts = options_from(&flags);

    let output = dispatch(command, &flags, &opts)?;
    // `gen` manages --out itself (it writes the trace, not the message).
    match (&flags.out, command.as_str()) {
        (Some(path), cmd) if cmd != "gen" => {
            std::fs::write(path, &output)
                .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
            Ok(format!("wrote output to {path}"))
        }
        _ => Ok(output),
    }
}

fn dispatch(command: &str, flags: &Flags, opts: &ExpOptions) -> Result<String, CliError> {
    let flags = flags.clone();
    let opts = *opts;

    let figure = |f: fn(&ExpOptions) -> Result<Figure, RunError>| -> Result<String, CliError> {
        Ok(render_figure(&f(&opts)?, flags.csv))
    };

    match command {
        "table1" => Ok(render_table(
            "Table I — the types of resource demands of VMs",
            &experiments::table1(),
            flags.csv,
        )),
        "table2" => Ok(render_table(
            "Table II — the types of resource capacities and power consumption parameters of servers",
            &experiments::table2(),
            flags.csv,
        )),
        "fig2" => figure(experiments::fig2),
        "fig3" => figure(experiments::fig3),
        "fig4" => figure(experiments::fig4),
        "fig5" => figure(experiments::fig5),
        "fig6" => figure(experiments::fig6),
        "fig7" => figure(experiments::fig7),
        "fig8" => figure(experiments::fig8),
        "fig9" => figure(experiments::fig9),
        "all" => {
            let mut out = String::new();
            out.push_str(&render_table(
                "Table I — the types of resource demands of VMs",
                &experiments::table1(),
                flags.csv,
            ));
            out.push_str("\n\n");
            out.push_str(&render_table(
                "Table II — the types of resource capacities and power consumption parameters of servers",
                &experiments::table2(),
                flags.csv,
            ));
            for f in [
                experiments::fig2,
                experiments::fig3,
                experiments::fig4,
                experiments::fig5,
                experiments::fig6,
                experiments::fig7,
                experiments::fig8,
                experiments::fig9,
            ] {
                out.push_str("\n\n");
                out.push_str(&render_figure(&f(&opts)?, flags.csv));
            }
            for (title, table) in [
                (
                    "E1 — extra saving from live-migration consolidation",
                    experiments::ext_migration(&opts)?,
                ),
                (
                    "E2 — sensitivity to the arrival process",
                    experiments::ext_arrivals(&opts)?,
                ),
                (
                    "E3 — overload behaviour with admission control",
                    experiments::ext_overload(&opts)?,
                ),
            ] {
                out.push_str("\n\n");
                out.push_str(&render_table(title, &table, flags.csv));
            }
            Ok(out)
        }
        "ext-overload" => Ok(format!(
            "E3 — overload behaviour with admission control ({} seeds)\n\n{}",
            opts.seeds,
            experiments::ext_overload(&opts)?
        )),
        "ext-arrivals" => Ok(format!(
            "E2 — sensitivity to the arrival process ({} seeds)\n\n{}",
            opts.seeds,
            experiments::ext_arrivals(&opts)?
        )),
        "ext-migration" => Ok(format!(
            "E1 — extra saving from live-migration consolidation ({} seeds)\n\n{}",
            opts.seeds,
            experiments::ext_migration(&opts)?
        )),
        "compare" => run_compare(&flags, &opts),
        "chaos" => run_chaos(&flags),
        "exact" => run_exact(&flags),
        "timeline" => run_timeline(&flags),
        "gen" => run_gen(&flags),
        "plan" => run_plan(&flags, &opts),
        "report" => crate::report::html_report(&opts).map_err(CliError::Run),
        "solve" => run_solve(&flags),
        "serve" => run_serve(&flags),
        "gap" => run_gap(&flags),
        _ => Err(CliError::Usage(format!(
            "unknown command {command:?}\n\n{USAGE}"
        ))),
    }
}

/// Fails fast when an output path cannot be written: refuses to
/// overwrite an existing file without `--force` (a silently
/// overwritten metrics file is an easy way to compare an algorithm
/// against itself) and rejects a missing parent directory *before*
/// the possibly long run, not after it.
fn preflight_out_path(path: &str, force: bool) -> Result<(), CliError> {
    let p = std::path::Path::new(path);
    if !force && p.exists() {
        return Err(CliError::Usage(format!(
            "refusing to overwrite existing file {path:?} (pass --force to allow)"
        )));
    }
    match p.parent() {
        Some(parent) if !parent.as_os_str().is_empty() && !parent.is_dir() => {
            Err(CliError::Usage(format!(
                "cannot write {path:?}: directory {parent:?} does not exist"
            )))
        }
        _ => Ok(()),
    }
}

/// One instrumented run per algorithm on `problem`: decision metrics
/// become rows of `table`, per-decision events stream into `sink`,
/// provenance spans and explain records land in `tracer` (each
/// algorithm's run nested under a span named after it), and the audited
/// energy decomposition is exported as `energy.*` gauges.
fn telemetry_rows<S: esvm_obs::EventSink, T: esvm_obs::Tracer>(
    problem: &esvm_simcore::AllocationProblem,
    algos: &[AllocatorKind],
    seed: u64,
    par: Parallelism,
    sink: &mut S,
    tracer: &T,
    table: &mut Table,
) -> Result<(), CliError> {
    use esvm_obs::{Event, FieldValue, MetricsRegistry};
    use rand::SeedableRng;
    for &algo in algos {
        sink.emit(&Event {
            name: "run.start",
            fields: &[
                ("algo", FieldValue::Str(algo.name())),
                ("seed", FieldValue::U64(seed)),
            ],
        });
        let _algo_span = tracer.span(algo.name());
        let metrics = MetricsRegistry::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let assignment = algo
            .allocate_traced_with(problem, &mut rng, sink, &metrics, par, tracer)
            .map_err(|error| RunError::Alloc { algo, seed, error })?;
        let report = assignment.audit().map_err(RunError::Audit)?;
        metrics.set_gauge("energy.run", report.breakdown.run);
        metrics.set_gauge("energy.idle", report.breakdown.idle);
        metrics.set_gauge("energy.transition", report.breakdown.transition);
        metrics.set_gauge("energy.total", report.total_cost);
        for (name, value) in metrics.snapshot() {
            table.row(vec![
                algo.name().to_owned(),
                name,
                value.kind().to_owned(),
                value.render(),
            ]);
        }
    }
    Ok(())
}

/// Routes `telemetry_rows` through the `--events-out` sink choice with
/// a caller-chosen tracer.
fn telemetry_capture<T: esvm_obs::Tracer>(
    problem: &esvm_simcore::AllocationProblem,
    algos: &[AllocatorKind],
    seed: u64,
    par: Parallelism,
    events_out: Option<&str>,
    tracer: &T,
    table: &mut Table,
) -> Result<(), CliError> {
    match events_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
            let mut sink = esvm_obs::JsonlWriter::new(std::io::BufWriter::new(file));
            telemetry_rows(problem, algos, seed, par, &mut sink, tracer, &mut *table)?;
            sink.finish()
                .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        }
        None => {
            telemetry_rows(
                problem,
                algos,
                seed,
                par,
                &mut esvm_obs::DiscardSink,
                tracer,
                table,
            )?;
        }
    }
    Ok(())
}

/// Serialises a collected provenance trace to `path` — Chrome
/// `trace_event` JSON for a `.json` extension, flat JSON Lines
/// otherwise — and renders the span-latency percentile table.
fn write_trace_output(
    path: &str,
    tracer: &esvm_obs::CollectingTracer,
) -> Result<String, CliError> {
    let body = if path.ends_with(".json") {
        tracer.to_chrome_trace()
    } else {
        tracer.to_jsonl()
    };
    std::fs::write(path, body)
        .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
    let mut out = String::new();
    let latencies = tracer.latencies();
    if !latencies.is_empty() {
        let mut t = Table::new(vec!["span", "count", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"]);
        for (name, s) in latencies {
            t.row(vec![
                name.to_owned(),
                s.count.to_string(),
                format!("{:.4}", s.p50 * 1e3),
                format!("{:.4}", s.p95 * 1e3),
                format!("{:.4}", s.p99 * 1e3),
                format!("{:.4}", s.max * 1e3),
            ]);
        }
        out.push_str(&format!("\nspan latency percentiles\n\n{t}"));
    }
    out.push_str(&format!(
        "provenance trace ({} spans, {} explain records) written to {path}\n",
        tracer.spans().len(),
        tracer.explains().len()
    ));
    Ok(out)
}

/// Renders the `--metrics-out` / `--events-out` / `--trace-out`
/// telemetry section (an empty string when none of the flags is set):
/// a metric summary table for one instrumented run per algorithm, plus
/// the side files.
fn telemetry_section(
    problem: &esvm_simcore::AllocationProblem,
    algos: &[AllocatorKind],
    seed: u64,
    flags: &Flags,
) -> Result<String, CliError> {
    if flags.metrics_out.is_none() && flags.events_out.is_none() && flags.trace_out.is_none() {
        return Ok(String::new());
    }
    for path in [&flags.metrics_out, &flags.events_out, &flags.trace_out]
        .into_iter()
        .flatten()
    {
        preflight_out_path(path, flags.force)?;
    }
    let par = flags.algo_parallelism()?;
    let mut table = Table::new(vec!["algorithm", "metric", "kind", "value"]);
    let events_out = flags.events_out.as_deref();
    let trace_note = match &flags.trace_out {
        Some(path) => {
            let tracer = esvm_obs::CollectingTracer::new();
            telemetry_capture(problem, algos, seed, par, events_out, &tracer, &mut table)?;
            write_trace_output(path, &tracer)?
        }
        None => {
            telemetry_capture(
                problem,
                algos,
                seed,
                par,
                events_out,
                &esvm_obs::NoopTracer,
                &mut table,
            )?;
            String::new()
        }
    };
    let mut out = format!(
        "\n\ntelemetry — one instrumented run per algorithm (seed {seed})\n\n{table}"
    );
    if let Some(path) = &flags.metrics_out {
        std::fs::write(path, table.to_csv())
            .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = &flags.events_out {
        out.push_str(&format!("events written to {path}\n"));
    }
    out.push_str(&trace_note);
    Ok(out)
}

fn run_compare(flags: &Flags, opts: &ExpOptions) -> Result<String, CliError> {
    let config = workload_from(flags);
    let vms = config.vm_count_value();
    let servers = config.server_count_value();
    let algos = flags
        .algos
        .clone()
        .unwrap_or_else(|| vec![AllocatorKind::Miec, AllocatorKind::Ffps]);
    let point = MonteCarlo::new(opts.seeds, opts.threads)
        .with_algo_parallelism(flags.algo_parallelism()?)
        .compare(&config, &algos)?;

    let mut table = Table::new(vec![
        "algorithm",
        "mean cost",
        "std dev",
        "run",
        "idle",
        "transition",
        "cpu util (%)",
        "mem util (%)",
        "vs ffps (%)",
        "95% CI",
    ]);
    for &algo in &algos {
        let s = point.cost_summary(algo);
        let (run, idle, transition) = point.mean_breakdown(algo);
        let (reduction, ci) = if algos.contains(&AllocatorKind::Ffps) {
            let r = point.reduction_ratio(AllocatorKind::Ffps, algo) * 100.0;
            let ci = point
                .reduction_ratio_ci(AllocatorKind::Ffps, algo)
                .map(|(lo, hi)| format!("[{:.1}; {:.1}]", lo * 100.0, hi * 100.0))
                .unwrap_or_default();
            (format!("{r:.2}"), ci)
        } else {
            (String::new(), String::new())
        };
        table.row(vec![
            algo.name().to_owned(),
            format!("{:.1}", s.mean),
            format!("{:.1}", s.std_dev),
            format!("{run:.0}"),
            format!("{idle:.0}"),
            format!("{transition:.0}"),
            format!("{:.1}", point.mean_cpu_utilization(algo) * 100.0),
            format!("{:.1}", point.mean_mem_utilization(algo) * 100.0),
            reduction,
            ci,
        ]);
    }
    let mut out = format!(
        "{} VMs on {} servers, {} seeds\n\n{}",
        vms, servers, opts.seeds, table
    );
    // Significance of the headline saving, when both contenders ran.
    if let (Some(miec), Some(ffps)) = (
        point.try_index_of(AllocatorKind::Miec),
        point.try_index_of(AllocatorKind::Ffps),
    ) {
        if let Some(p) = esvm_analysis::stats::paired_permutation_test(
            &point.costs[ffps],
            &point.costs[miec],
            4000,
        ) {
            out.push_str(&format!(
                "\nmiec saving significance (paired sign-flip permutation): p = {p:.4}\n"
            ));
        }
    }
    if flags.metrics_out.is_some() || flags.events_out.is_some() || flags.trace_out.is_some() {
        let seed = flags.seed.unwrap_or(0);
        let problem = config
            .generate(seed)
            .map_err(|e| CliError::Run(RunError::Generate(e)))?;
        out.push_str(&telemetry_section(&problem, &algos, seed, flags)?);
    }
    Ok(out)
}

/// One instrumented chaos replay per algorithm: summary rows into
/// `table`, the full robustness metric snapshot into `metric_table`,
/// chaos events into `sink`, repair/shed provenance into `tracer`.
#[allow(clippy::too_many_arguments)]
fn chaos_rows<S: esvm_obs::EventSink, T: esvm_obs::Tracer>(
    engine: &esvm_chaos::ChaosEngine,
    problem: &esvm_simcore::AllocationProblem,
    algos: &[AllocatorKind],
    seed: u64,
    par: Parallelism,
    sink: &mut S,
    tracer: &T,
    table: &mut Table,
    metric_table: &mut Table,
) -> Result<(), CliError> {
    use esvm_obs::MetricsRegistry;
    use rand::SeedableRng;
    for &algo in algos {
        let _algo_span = tracer.span(algo.name());
        let metrics = MetricsRegistry::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let allocator = algo.build_with(par);
        let report = engine
            .run_traced(problem, allocator.as_ref(), &mut rng, sink, &metrics, tracer)
            .map_err(|e| match e {
                esvm_chaos::ChaosError::Offline(error) => {
                    CliError::Run(RunError::Alloc { algo, seed, error })
                }
                other => CliError::Chaos(other),
            })?;
        table.row(vec![
            algo.name().to_owned(),
            format!("{:.1}", report.offline_cost),
            format!("{:.1}", report.cost),
            format!("{:.1}", report.adjusted_cost()),
            report.displaced.to_string(),
            report.repairs.len().to_string(),
            report.shed.len().to_string(),
            report.refused.len().to_string(),
            report.extra_transitions.to_string(),
        ]);
        for (name, value) in metrics.snapshot() {
            metric_table.row(vec![
                algo.name().to_owned(),
                name,
                value.kind().to_owned(),
                value.render(),
            ]);
        }
    }
    Ok(())
}

/// Routes `chaos_rows` through the `--events-out` sink choice with a
/// caller-chosen tracer.
#[allow(clippy::too_many_arguments)]
fn chaos_capture<T: esvm_obs::Tracer>(
    engine: &esvm_chaos::ChaosEngine,
    problem: &esvm_simcore::AllocationProblem,
    algos: &[AllocatorKind],
    seed: u64,
    par: Parallelism,
    events_out: Option<&str>,
    tracer: &T,
    table: &mut Table,
    metric_table: &mut Table,
) -> Result<(), CliError> {
    match events_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
            let mut sink = esvm_obs::JsonlWriter::new(std::io::BufWriter::new(file));
            chaos_rows(
                engine,
                problem,
                algos,
                seed,
                par,
                &mut sink,
                tracer,
                table,
                metric_table,
            )?;
            sink.finish()
                .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        }
        None => {
            chaos_rows(
                engine,
                problem,
                algos,
                seed,
                par,
                &mut esvm_obs::DiscardSink,
                tracer,
                table,
                metric_table,
            )?;
        }
    }
    Ok(())
}

fn run_chaos(flags: &Flags) -> Result<String, CliError> {
    use esvm_chaos::{ChaosEngine, FaultPlan, FaultPlanConfig, RepairPolicy};

    let seed = flags.seed.unwrap_or(0);
    let config = workload_from(flags);
    let mut problem = config
        .generate(seed)
        .map_err(|e| CliError::Run(RunError::Generate(e)))?;

    let plan = match &flags.plan {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                CliError::Usage(format!("cannot read fault plan {path:?}: {e}"))
            })?;
            FaultPlan::from_text(&text)
                .map_err(|e| CliError::Usage(format!("bad fault plan {path:?}: {e}")))?
        }
        None => {
            let mut plan_config =
                FaultPlanConfig::with_fault_rate(flags.fault_rate.unwrap_or(0.1));
            if let Some(r) = flags.rack_size {
                plan_config.rack_size = r;
            }
            if let Some(m) = flags.mean_outage {
                plan_config.mean_outage = m;
            }
            FaultPlan::generate(&plan_config, problem.server_count(), problem.horizon(), seed)
        }
    };

    // Fail before the run, not after it, on unwritable outputs.
    for path in [
        &flags.plan_out,
        &flags.metrics_out,
        &flags.events_out,
        &flags.trace_out,
    ]
    .into_iter()
    .flatten()
    {
        preflight_out_path(path, flags.force)?;
    }

    // Input-level faults mutate the serialized trace and go through the
    // hardened parser; a trace the parser rejects ends the run with its
    // typed error — degraded, reported, never a panic.
    if !plan.input_faults().is_empty() {
        let mut text = esvm_workload::trace::to_text(&problem);
        for fault in plan.input_faults() {
            text = fault.apply(&text);
        }
        problem = esvm_workload::trace::from_text(&text).map_err(|e| {
            CliError::Usage(format!(
                "input faults made the trace unparsable (parser rejected it: {e})"
            ))
        })?;
    }

    if flags.live {
        return run_chaos_live(flags, &problem, &plan, seed);
    }

    let mut policy = RepairPolicy::default();
    if let Some(r) = flags.retries {
        policy.max_retries = r;
    }
    if let Some(b) = flags.backoff {
        policy.backoff = b;
    }
    if let Some(shed) = flags.shed_policy {
        policy.shed = shed;
    }
    let par = flags.algo_parallelism()?;
    let engine = ChaosEngine::new(plan)
        .with_policy(policy)
        .with_parallelism(par);

    let algos = flags
        .algos
        .clone()
        .unwrap_or_else(|| vec![AllocatorKind::Miec, AllocatorKind::Ffps]);
    let mut table = Table::new(vec![
        "algorithm",
        "offline cost",
        "replay cost",
        "adjusted cost",
        "displaced",
        "repairs",
        "shed",
        "refused",
        "extra transitions",
    ]);
    let mut metric_table = Table::new(vec!["algorithm", "metric", "kind", "value"]);
    let trace_note = match &flags.trace_out {
        Some(path) => {
            let tracer = esvm_obs::CollectingTracer::new();
            chaos_capture(
                &engine,
                &problem,
                &algos,
                seed,
                par,
                flags.events_out.as_deref(),
                &tracer,
                &mut table,
                &mut metric_table,
            )?;
            write_trace_output(path, &tracer)?
        }
        None => {
            chaos_capture(
                &engine,
                &problem,
                &algos,
                seed,
                par,
                flags.events_out.as_deref(),
                &esvm_obs::NoopTracer,
                &mut table,
                &mut metric_table,
            )?;
            String::new()
        }
    };

    let plan_ref = engine.plan();
    let mut out = format!(
        "chaos replay: {} VMs on {} servers, seed {seed}, {} availability events, \
         {} input faults\npolicy: {} (retries {}, backoff {})\n\n{}",
        problem.vm_count(),
        problem.server_count(),
        plan_ref.events().len(),
        plan_ref.input_faults().len(),
        policy.shed,
        policy.max_retries,
        policy.backoff,
        table
    );
    if let Some(path) = &flags.plan_out {
        std::fs::write(path, plan_ref.to_text())
            .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("\nfault plan written to {path}\n"));
    }
    if let Some(path) = &flags.metrics_out {
        std::fs::write(path, metric_table.to_csv())
            .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("\nmetrics written to {path}\n"));
    }
    if let Some(path) = &flags.events_out {
        out.push_str(&format!("\nevents written to {path}\n"));
    }
    out.push_str(&trace_note);
    Ok(out)
}

/// `esvm chaos --live`: the fault plan strikes a *running* serve
/// session through the `DOWN`/`UP` verbs, interleaved with the arrival
/// stream — the drill exercises the live eviction + bounded-backoff
/// repair path (and the journal, when `--journal` is set) instead of
/// the offline replay engine.
fn run_chaos_live(
    flags: &Flags,
    problem: &esvm_simcore::AllocationProblem,
    plan: &esvm_chaos::FaultPlan,
    seed: u64,
) -> Result<String, CliError> {
    use crate::serve::{feed_problem_with_faults, ServeSession};
    let metrics = esvm_obs::MetricsRegistry::new();
    let mut session = ServeSession::new(problem.servers(), &metrics, &esvm_obs::NoopTracer)
        .with_config(serve_config_from(flags));
    attach_journal(flags, problem.servers(), None, &mut session)?;
    let report = feed_problem_with_faults(problem, plan, &mut session);
    session
        .finish()
        .map_err(|e| CliError::Usage(format!("journal checkpoint failed: {e}")))?;

    // Eq. 7 conservation after the drill — the same telescoping
    // invariant the engine's tests enforce, checked here so the CLI
    // run is itself a verification, not just a demo.
    let engine = session.engine();
    let live: f64 = engine.ledgers().iter().map(|l| l.cost()).sum();
    let recomputed = engine.retired_cost() + live;
    if engine.committed_cost().to_bits() != recomputed.to_bits() {
        return Err(CliError::Usage(format!(
            "energy conservation violated after the drill: committed {} != retired+live {}",
            engine.committed_cost(),
            recomputed
        )));
    }

    let stats = engine.stats();
    let config = session.config();
    let mut table = Table::new(vec!["metric", "value"]);
    for (name, value) in [
        ("arrivals", stats.arrivals.to_string()),
        ("placed", stats.placed.to_string()),
        ("rejected", stats.rejected.to_string()),
        ("overloaded", metrics.counter(esvm_obs::names::serve::OVERLOADED).to_string()),
        ("downs applied", report.downs.to_string()),
        ("ups applied", report.ups.to_string()),
        ("evicted", stats.evicted.to_string()),
        ("repaired", stats.repaired.to_string()),
        ("departed", stats.departed.to_string()),
        ("live at end", engine.live_count().to_string()),
        ("committed cost", format!("{:.1}", engine.committed_cost())),
    ] {
        table.row(vec![name.into(), value]);
    }
    let mut out = format!(
        "live chaos drill: {} VMs on {} servers, seed {seed}, {} availability events \
         (retries {}, backoff {})\n\n{table}\nenergy conservation verified \
         (committed = retired + live, bit-exact)\n",
        problem.vm_count(),
        problem.server_count(),
        plan.events().len(),
        config.max_retries,
        config.backoff,
    );
    if let Some(path) = &flags.plan_out {
        std::fs::write(path, plan.to_text())
            .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("fault plan written to {path}\n"));
    }
    if let Some(path) = &flags.journal {
        out.push_str(&format!("journal written to {path}\n"));
    }
    if let Some(path) = &flags.metrics_out {
        let mut t = Table::new(vec!["metric", "kind", "value"]);
        for (name, value) in metrics.snapshot() {
            t.row(vec![name, value.kind().to_owned(), value.render()]);
        }
        std::fs::write(path, t.to_csv())
            .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(out)
}

fn run_timeline(flags: &Flags) -> Result<String, CliError> {
    use esvm_analysis::chart::strip;
    use esvm_simcore::replay;

    let seed = flags.seed.unwrap_or(0);
    let config = workload_from(flags);
    let vms = config.vm_count_value();
    let servers = config.server_count_value();
    let problem = config
        .generate(seed)
        .map_err(|e| CliError::Run(RunError::Generate(e)))?;
    let algos = flags
        .algos
        .clone()
        .unwrap_or_else(|| vec![AllocatorKind::Miec, AllocatorKind::Ffps]);

    let width = 72;
    let mut out = format!(
        "power timeline: {vms} VMs on {servers} servers, seed {seed}, horizon {} units\n",
        problem.horizon()
    );
    for kind in algos {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let assignment = kind
            .build()
            .allocate(&problem, &mut rng)
            .map_err(|error| RunError::Alloc { algo: kind, seed, error })?;
        let trace = replay(&assignment);
        let active: Vec<f64> = trace
            .active_series()
            .iter()
            .map(|&n| f64::from(n))
            .collect();
        out.push_str(&format!(
            "\n{} — total energy {:.0} W·min (peak {:.0} W)\n{}\n{}\n",
            kind.name(),
            trace.total_energy(),
            trace.peak_power(),
            strip("power (W)", trace.power_series(), width),
            strip("active servers", &active, width),
        ));
    }
    Ok(out)
}

fn workload_from(flags: &Flags) -> WorkloadConfig {
    let vms = flags.vms.unwrap_or(100);
    let servers = flags.servers.unwrap_or_else(|| (vms / 2).max(1));
    let mut config = WorkloadConfig::new(vms, servers)
        .mean_interarrival(flags.interarrival.unwrap_or(4.0))
        .mean_duration(flags.duration.unwrap_or(5.0))
        .transition_time(flags.transition.unwrap_or(1.0));
    if flags.standard_vms {
        config = config.vm_types(esvm_workload::catalog::standard_vm_types());
    }
    if flags.small_servers {
        config = config.server_types(esvm_workload::catalog::server_types_1_3());
    }
    config
}

fn run_plan(flags: &Flags, opts: &ExpOptions) -> Result<String, CliError> {
    let target = flags.target.unwrap_or(0.95);
    if !(target > 0.0 && target <= 1.0) {
        return Err(CliError::Usage(format!(
            "--target must be in (0, 1]\n\n{USAGE}"
        )));
    }
    let template = workload_from(flags);
    let vms = template.vm_count_value();
    let sizes = flags.sizes.clone().unwrap_or_else(|| {
        // Default sweep: powers-of-two fractions of the VM count.
        [16, 8, 4, 2]
            .iter()
            .map(|d| (vms / d).max(1))
            .collect()
    });
    let planner = crate::planner::CapacityPlanner::new(template, target, opts.seeds.clamp(2, 20))
        .with_parallelism(Parallelism::new(opts.threads));
    let plan = planner.plan(sizes)?;
    let verdict = match plan.recommended {
        Some(p) => format!(
            "recommended fleet: {} servers ({:.1}% admission, energy {:.0})",
            p.servers,
            p.admission_rate * 100.0,
            p.energy
        ),
        None => "no evaluated fleet meets the target — try larger --sizes".to_owned(),
    };
    Ok(format!(
        "capacity plan for {vms} VMs, admission target {:.0}%\n\n{}\n{verdict}",
        target * 100.0,
        plan.to_table()
    ))
}

fn run_gen(flags: &Flags) -> Result<String, CliError> {
    let seed = flags.seed.unwrap_or(0);
    let config = workload_from(flags);
    // A `.esvt` output path selects the binary columnar format and the
    // streaming generator: the trace goes straight to disk block by
    // block, never materialising the VM list.
    if let Some(path) = flags.out.as_deref().filter(|p| p.ends_with(".esvt")) {
        config
            .generate_esvt_file(seed, path)
            .map_err(|e| CliError::Run(RunError::Generate(e)))?;
        return Ok(format!(
            "streamed {} VMs / {} servers (seed {seed}) to {path} (ESVT)",
            config.vm_count_value(),
            config.server_count_value(),
        ));
    }
    let problem = config
        .generate(seed)
        .map_err(|e| CliError::Run(RunError::Generate(e)))?;
    let text = esvm_workload::trace::to_text(&problem);
    match &flags.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| {
                CliError::Usage(format!("cannot write {path:?}: {e}"))
            })?;
            Ok(format!(
                "wrote {} VMs / {} servers (seed {seed}) to {path}",
                problem.vm_count(),
                problem.server_count()
            ))
        }
        None => Ok(text),
    }
}

/// Loads a trace for `solve`, accepting both formats: ESVT is detected
/// by its magic bytes (not the extension, so renamed files still work),
/// anything else goes through the text parser.
fn load_trace(path: &str) -> Result<esvm_simcore::AllocationProblem, CliError> {
    use std::io::Read as _;
    let mut magic = [0u8; 4];
    let is_esvt = std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| magic == esvm_workload::esvt::MAGIC)
        .unwrap_or(false);
    if is_esvt {
        return esvm_workload::esvt::read_esvt_file(path)
            .map_err(|e| CliError::Usage(format!("bad trace {path:?}: {e}")));
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        CliError::Usage(format!(
            "cannot read trace {path:?}: {e} (generate one with `esvm gen --out {path}`)"
        ))
    })?;
    esvm_workload::trace::from_text(&text)
        .map_err(|e| CliError::Usage(format!("bad trace {path:?}: {e}")))
}

fn run_solve(flags: &Flags) -> Result<String, CliError> {
    let Some(path) = &flags.trace else {
        return Err(CliError::Usage(format!(
            "solve needs --trace FILE

{USAGE}"
        )));
    };
    let problem = load_trace(path)?;

    let algos = flags
        .algos
        .clone()
        .unwrap_or_else(|| vec![AllocatorKind::Miec, AllocatorKind::Ffps]);
    let seed = flags.seed.unwrap_or(0);
    let mut table = Table::new(vec![
        "algorithm",
        "total cost",
        "run",
        "idle",
        "transition",
        "cpu util (%)",
    ]);
    for &kind in &algos {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let assignment = kind
            .build()
            .allocate(&problem, &mut rng)
            .map_err(|error| RunError::Alloc { algo: kind, seed, error })?;
        let report = assignment.audit().map_err(RunError::Audit)?;
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.0}", report.total_cost),
            format!("{:.0}", report.breakdown.run),
            format!("{:.0}", report.breakdown.idle),
            format!("{:.0}", report.breakdown.transition),
            format!("{:.1}", report.utilization.avg_cpu * 100.0),
        ]);
    }
    let mut out = format!(
        "trace {path}: {} VMs on {} servers, horizon {}

{}",
        problem.vm_count(),
        problem.server_count(),
        problem.horizon(),
        table
    );
    out.push_str(&telemetry_section(&problem, &algos, seed, flags)?);
    Ok(out)
}

fn run_exact(flags: &Flags) -> Result<String, CliError> {
    let vms = flags.vms.unwrap_or(4);
    let servers = flags.servers.unwrap_or(2);
    let seed = flags.seed.unwrap_or(0);
    let config = WorkloadConfig::new(vms, servers)
        .mean_interarrival(2.0)
        .mean_duration(3.0);
    let problem = config
        .generate(seed)
        .map_err(|e| CliError::Run(RunError::Generate(e)))?;

    let exact = Formulation::new(&problem)
        .solve()
        .map_err(CliError::Exact)?;

    let mut table = Table::new(vec!["algorithm", "total cost", "gap vs optimal (%)"]);
    table.row(vec![
        "exact (ILP)".into(),
        format!("{:.2}", exact.objective),
        "0.00".into(),
    ]);
    for kind in [AllocatorKind::Miec, AllocatorKind::Ffps] {
        let report = crate::runner::run_once(&config, kind, seed)?;
        let gap = (report.total_cost - exact.objective) / exact.objective * 100.0;
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.2}", report.total_cost),
            format!("{gap:.2}"),
        ]);
    }
    Ok(format!(
        "exact certification: {vms} VMs on {servers} servers (seed {seed}, {} B&B nodes)\n\n{}",
        exact.nodes, table
    ))
}

/// Renders the end-of-session summary of an online serving run.
fn serve_summary<T: esvm_obs::Tracer>(
    source: &str,
    session: &crate::serve::ServeSession<'_, T>,
    metrics: &esvm_obs::MetricsRegistry,
) -> String {
    use esvm_obs::names::serve as names;
    let stats = session.engine().stats();
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["requests".into(), stats.arrivals.to_string()]);
    table.row(vec!["placed".into(), stats.placed.to_string()]);
    table.row(vec!["rejected".into(), stats.rejected.to_string()]);
    table.row(vec!["departed".into(), stats.departed.to_string()]);
    table.row(vec!["evicted".into(), stats.evicted.to_string()]);
    table.row(vec!["repaired".into(), stats.repaired.to_string()]);
    table.row(vec![
        "overloaded".into(),
        metrics.counter(names::OVERLOADED).to_string(),
    ]);
    table.row(vec!["live at end".into(), session.engine().live_count().to_string()]);
    table.row(vec![
        "live peak".into(),
        stats.live_peak.to_string(),
    ]);
    table.row(vec![
        "protocol errors".into(),
        metrics.counter(names::PROTOCOL_ERRORS).to_string(),
    ]);
    if metrics.counter(names::JOURNAL_APPENDS) > 0 {
        table.row(vec![
            "journal appends".into(),
            metrics.counter(names::JOURNAL_APPENDS).to_string(),
        ]);
        table.row(vec![
            "journal fsyncs".into(),
            metrics.counter(names::JOURNAL_FSYNCS).to_string(),
        ]);
    }
    if let Some(ms) = metrics.gauge(names::RECOVERY_MS) {
        table.row(vec!["recovery (ms)".into(), format!("{ms:.2}")]);
    }
    if let Some(h) = metrics.histogram(names::DECISION_US) {
        table.row(vec!["decision mean (µs)".into(), format!("{:.2}", h.mean())]);
        table.row(vec!["decision p50 (µs)".into(), format!("{:.2}", h.p50)]);
        table.row(vec!["decision p95 (µs)".into(), format!("{:.2}", h.p95)]);
        table.row(vec!["decision p99 (µs)".into(), format!("{:.2}", h.p99)]);
    }
    format!("online serving session — {source}\n\n{table}")
}

/// Accepts one connection on a Unix socket and serves it to EOF.
#[cfg(unix)]
fn serve_socket<T: esvm_obs::Tracer>(
    path: &str,
    session: &mut crate::serve::ServeSession<'_, T>,
) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    let io_err = |e: std::io::Error| CliError::Usage(format!("socket {path:?}: {e}"));
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(io_err)?;
    let (stream, _) = listener.accept().map_err(io_err)?;
    let reader = std::io::BufReader::new(stream.try_clone().map_err(io_err)?);
    crate::serve::serve_lines(reader, stream, session).map_err(io_err)?;
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket<T: esvm_obs::Tracer>(
    _path: &str,
    _session: &mut crate::serve::ServeSession<'_, T>,
) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket needs a Unix platform; use stdin instead".into(),
    ))
}

/// The [`ServeConfig`](crate::serve::ServeConfig) the flags describe.
fn serve_config_from(flags: &Flags) -> crate::serve::ServeConfig {
    let mut config = crate::serve::ServeConfig::default();
    if let Some(q) = flags.queue {
        config.queue_cap = q;
    }
    if let Some(r) = flags.retries {
        config.max_retries = r;
    }
    if let Some(b) = flags.backoff {
        config.backoff = b;
    }
    config
}

/// Recovers a journal into `session`: replay (timed into the
/// `serve.recovery_ms` gauge) plus checkpoint verification. Returns the
/// recovery, for journal resumption and the summary line.
fn recover_into<T: esvm_obs::Tracer>(
    path: &str,
    session: &mut crate::serve::ServeSession<'_, T>,
    metrics: &esvm_obs::MetricsRegistry,
) -> Result<crate::journal::Recovered, CliError> {
    let t0 = std::time::Instant::now();
    let rec = crate::journal::recover_file(path)
        .map_err(|e| CliError::Usage(format!("cannot recover journal {path:?}: {e}")))?;
    session
        .replay(&rec.records)
        .map_err(|e| CliError::Usage(format!("journal {path:?} does not replay: {e}")))?;
    metrics.set_gauge(
        esvm_obs::names::serve::RECOVERY_MS,
        t0.elapsed().as_secs_f64() * 1e3,
    );
    Ok(rec)
}

/// Attaches the `--journal` writer to `session`. Resuming the same
/// file that was just recovered truncates its torn tail and appends;
/// a different (or fresh) path gets a new journal carrying the
/// recovered records forward, so it is self-contained for the *next*
/// recovery.
fn attach_journal<T: esvm_obs::Tracer>(
    flags: &Flags,
    fleet: &[esvm_simcore::ServerSpec],
    recovered: Option<&(String, crate::journal::Recovered)>,
    session: &mut crate::serve::ServeSession<'_, T>,
) -> Result<(), CliError> {
    let Some(path) = &flags.journal else {
        return Ok(());
    };
    let fsync_every = flags.fsync_every.unwrap_or(4096);
    let io_err = |e: std::io::Error| CliError::Usage(format!("journal {path:?}: {e}"));
    let writer = match recovered {
        Some((rec_path, rec)) if rec_path == path => {
            crate::journal::truncate_torn_tail(path, rec)
                .map_err(|e| CliError::Usage(format!("journal {path:?}: {e}")))?;
            crate::journal::JournalWriter::open_append(path, fsync_every).map_err(io_err)?
        }
        _ => {
            preflight_out_path(path, flags.force)?;
            let mut w = crate::journal::JournalWriter::create(path, fleet, fsync_every)
                .map_err(io_err)?;
            if let Some((_, rec)) = recovered {
                for record in &rec.records {
                    w.append(record).map_err(io_err)?;
                }
                w.sync().map_err(io_err)?;
            }
            w
        }
    };
    session.set_journal(Some(writer));
    Ok(())
}

/// The serving loop proper, generic over the tracer choice.
fn serve_with<T: esvm_obs::Tracer>(
    flags: &Flags,
    metrics: &esvm_obs::MetricsRegistry,
    tracer: &T,
) -> Result<String, CliError> {
    use crate::serve::{feed_problem, feed_records, serve_lines, ServeSession};
    use std::io::Read as _;

    // Open the trace feed first so the fleet can come from it. ESVT is
    // detected by magic bytes and streamed through
    // `TraceReader::records` without materialising the VM list.
    let mut esvt_reader = None;
    let mut text_problem = None;
    if let Some(path) = &flags.trace {
        let mut magic = [0u8; 4];
        let is_esvt = std::fs::File::open(path)
            .and_then(|mut f| f.read_exact(&mut magic))
            .map(|()| magic == esvm_workload::esvt::MAGIC)
            .unwrap_or(false);
        if is_esvt {
            let reader = esvm_workload::TraceReader::open(path)
                .map_err(|e| CliError::Usage(format!("bad trace {path:?}: {e}")))?;
            esvt_reader = Some((path.clone(), reader));
        } else {
            text_problem = Some((path.clone(), load_trace(path)?));
        }
    }

    // A recovered journal's header is the authoritative fleet;
    // otherwise the trace's, otherwise one generated from
    // --servers/--seed.
    let recovered_header = match &flags.recover {
        Some(path) => {
            let rec = crate::journal::recover_file(path)
                .map_err(|e| CliError::Usage(format!("cannot recover journal {path:?}: {e}")))?;
            Some((path.clone(), rec))
        }
        None => None,
    };
    let servers = flags.servers.unwrap_or(50);
    let seed = flags.seed.unwrap_or(0);
    let fleet: Vec<esvm_simcore::ServerSpec> = if let Some((_, rec)) = &recovered_header {
        rec.servers.clone()
    } else if let Some((_, reader)) = &esvt_reader {
        reader.servers().to_vec()
    } else if let Some((_, problem)) = &text_problem {
        problem.servers().to_vec()
    } else {
        WorkloadConfig::new(1, servers)
            .transition_time(flags.transition.unwrap_or(1.0))
            .generate(seed)
            .map_err(|e| CliError::Run(RunError::Generate(e)))?
            .servers()
            .to_vec()
    };

    let mut session =
        ServeSession::new(&fleet, metrics, tracer).with_config(serve_config_from(flags));
    let mut source_notes: Vec<String> = Vec::new();
    let recovered = match recovered_header {
        Some((path, _)) => {
            // Re-read inside the timed path so `serve.recovery_ms`
            // covers decode + replay, as a restart would pay it.
            let rec = recover_into(&path, &mut session, metrics)?;
            source_notes.push(format!(
                "recovered {} records from {path}{}",
                rec.records.len(),
                if rec.torn_bytes > 0 {
                    format!(" ({} torn bytes dropped)", rec.torn_bytes)
                } else {
                    String::new()
                }
            ));
            Some((path, rec))
        }
        None => None,
    };
    attach_journal(flags, &fleet, recovered.as_ref(), &mut session)?;
    if let Some(path) = &flags.journal {
        source_notes.push(format!("journaling to {path}"));
    }

    let main_source = if let Some((path, reader)) = esvt_reader {
        feed_records(reader.records(), &mut session)
            .map_err(|e| CliError::Usage(format!("bad trace {path:?}: {e}")))?;
        format!("streamed ESVT trace {path}")
    } else if let Some((path, problem)) = text_problem {
        feed_problem(&problem, &mut session);
        format!("replayed trace {path}")
    } else {
        match &flags.socket {
            Some(path) => {
                serve_socket(path, &mut session)?;
                format!("socket {path}, {} servers (seed {seed})", fleet.len())
            }
            None => {
                let stdin = std::io::stdin();
                let stdout = std::io::stdout();
                serve_lines(stdin.lock(), stdout.lock(), &mut session)
                    .map_err(|e| CliError::Usage(format!("serve I/O failed: {e}")))?;
                format!("stdin, {} servers (seed {seed})", fleet.len())
            }
        }
    };
    // Graceful shutdown: a final verified checkpoint in the journal.
    session
        .finish()
        .map_err(|e| CliError::Usage(format!("journal checkpoint failed: {e}")))?;
    let source = std::iter::once(main_source)
        .chain(source_notes)
        .collect::<Vec<_>>()
        .join(", ");
    Ok(serve_summary(&source, &session, metrics))
}

fn run_serve(flags: &Flags) -> Result<String, CliError> {
    if flags.trace.is_some() && flags.socket.is_some() {
        return Err(CliError::Usage(format!(
            "--trace and --socket are mutually exclusive\n\n{USAGE}"
        )));
    }
    for path in [&flags.metrics_out, &flags.trace_out].into_iter().flatten() {
        preflight_out_path(path, flags.force)?;
    }
    let metrics = esvm_obs::MetricsRegistry::new();
    let mut out = match &flags.trace_out {
        Some(path) => {
            let tracer = esvm_obs::CollectingTracer::new();
            let summary = serve_with(flags, &metrics, &tracer)?;
            format!("{summary}{}", write_trace_output(path, &tracer)?)
        }
        None => serve_with(flags, &metrics, &esvm_obs::NoopTracer)?,
    };
    if let Some(path) = &flags.metrics_out {
        let mut table = Table::new(vec!["metric", "kind", "value"]);
        for (name, value) in metrics.snapshot() {
            table.row(vec![name, value.kind().to_owned(), value.render()]);
        }
        std::fs::write(path, table.to_csv())
            .map_err(|e| CliError::Usage(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(out)
}

fn run_gap(flags: &Flags) -> Result<String, CliError> {
    let seeds = flags.seeds.unwrap_or(10).max(1);
    let base = flags.seed.unwrap_or(0);
    let vms = flags.vms.unwrap_or(100);
    let servers = flags.servers.unwrap_or_else(|| (vms / 2).max(1));
    let mut table = Table::new(vec![
        "seed",
        "online",
        "offline miec",
        "refined online",
        "offline best",
        "ratio",
    ]);
    let mut ratios: Vec<f64> = Vec::new();
    let mut infeasible = 0usize;
    for seed in base..base + seeds {
        let problem = match flags.adversary {
            Some(preset) => preset
                .problem(vms, servers, seed)
                .map_err(CliError::Sim)?,
            None => workload_from(flags)
                .generate(seed)
                .map_err(|e| CliError::Run(RunError::Generate(e)))?,
        };
        match crate::gap::gap_row(&problem, seed) {
            Ok(row) => {
                table.row(vec![
                    seed.to_string(),
                    format!("{:.1}", row.online_cost),
                    format!("{:.1}", row.offline_miec_cost),
                    format!("{:.1}", row.refined_online_cost),
                    format!("{:.1}", row.offline_best_cost),
                    format!("{:.4}", row.ratio),
                ]);
                ratios.push(row.ratio);
            }
            // An instance one side cannot place at all has no defined
            // ratio; report it rather than abort the sweep.
            Err(_) => {
                infeasible += 1;
                table.row(vec![
                    seed.to_string(),
                    "infeasible".into(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    let source = match flags.adversary {
        Some(preset) => format!("adversary {preset}"),
        None => "paper workload model".to_owned(),
    };
    let mut out = format!(
        "online/offline optimality gap — {source}, {vms} VMs on {servers} servers, seeds {base}..{}\n\n{table}",
        base + seeds
    );
    if !ratios.is_empty() {
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        out.push_str(&format!(
            "\nempirical competitive ratio: mean {mean:.4}, max {max:.4} over {} seeds",
            ratios.len()
        ));
    }
    if infeasible > 0 {
        out.push_str(&format!(" ({infeasible} infeasible seeds skipped)"));
    }
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn tables_render() {
        let out = run(&args(&["table1"])).unwrap();
        assert!(out.contains("m1.small"));
        let out = run(&args(&["table2", "--csv"])).unwrap();
        assert!(out.starts_with("type,"));
    }

    #[test]
    fn unknown_command_yields_usage() {
        let err = run(&args(&["fig99"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("usage:"));
    }

    #[test]
    fn missing_command_yields_usage() {
        assert!(matches!(run(&[]).unwrap_err(), CliError::Usage(_)));
    }

    #[test]
    fn malformed_flag_yields_usage() {
        for bad in [
            vec!["fig2", "--seeds"],
            vec!["fig2", "--seeds", "abc"],
            vec!["fig2", "--wat"],
            vec!["compare", "--algos", "nonsense"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}");
        }
    }

    #[test]
    fn quick_fig2_runs_end_to_end() {
        let out = run(&args(&["fig2", "--quick", "--seeds", "2", "--threads", "4"])).unwrap();
        assert!(out.contains("Fig. 2"), "{out}");
        assert!(out.contains("linear fit"), "{out}");
    }

    #[test]
    fn fig_csv_output() {
        let out = run(&args(&[
            "fig3", "--quick", "--seeds", "2", "--threads", "4", "--csv",
        ]))
        .unwrap();
        assert!(out.starts_with("series,x,y"), "{out}");
    }

    #[test]
    fn compare_command_runs() {
        let out = run(&args(&[
            "compare", "--vms", "20", "--servers", "10", "--seeds", "2", "--algos",
            "miec,ffps,best-fit",
        ]))
        .unwrap();
        assert!(out.contains("best-fit"), "{out}");
        assert!(out.contains("vs ffps"), "{out}");
    }

    #[test]
    fn plan_command_runs_and_validates_target() {
        let out = run(&args(&[
            "plan", "--vms", "30", "--interarrival", "0.5", "--duration", "8", "--seeds", "2",
            "--standard-vms", "--sizes", "2,10",
        ]))
        .unwrap();
        assert!(out.contains("capacity plan"), "{out}");
        assert!(out.contains("admission"), "{out}");
        let err = run(&args(&["plan", "--target", "1.5"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn out_flag_redirects_any_command() {
        let path = std::env::temp_dir().join("esvm_cli_out_test.txt");
        let path_str = path.to_str().unwrap().to_owned();
        let msg = run(&args(&["table1", "--out", &path_str])).unwrap();
        assert!(msg.contains("wrote output"), "{msg}");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("m1.small"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn telemetry_flags_write_metrics_and_events() {
        let dir = std::env::temp_dir();
        let metrics_path = dir.join("esvm_cli_metrics_test.csv");
        let events_path = dir.join("esvm_cli_events_test.jsonl");
        let out = run(&args(&[
            "compare",
            "--vms",
            "20",
            "--servers",
            "10",
            "--seeds",
            "2",
            "--algos",
            "miec,miec-ls",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--events-out",
            events_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("telemetry"), "{out}");
        assert!(out.contains("miec.vms_placed"), "{out}");
        assert!(out.contains("local_search.rounds"), "{out}");
        assert!(out.contains("energy.total"), "{out}");

        let csv = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(csv.starts_with("algorithm,metric,kind,value"), "{csv}");
        assert!(csv.contains("miec.candidates_considered,counter"), "{csv}");
        assert!(csv.contains("energy.transition,gauge"), "{csv}");

        let events = std::fs::read_to_string(&events_path).unwrap();
        let lines: Vec<&str> = events.lines().collect();
        // One run.start marker per algorithm, then its decision events.
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.starts_with("{\"event\":\"run.start\""))
                .count(),
            2
        );
        assert!(lines.iter().any(|l| l.starts_with("{\"event\":\"miec.place\"")));
        std::fs::remove_file(&metrics_path).ok();
        std::fs::remove_file(&events_path).ok();
    }

    #[test]
    fn telemetry_out_refuses_to_overwrite_without_force() {
        let path = std::env::temp_dir().join("esvm_cli_overwrite_test.csv");
        let path_str = path.to_str().unwrap().to_owned();
        std::fs::write(&path, "precious data from an earlier run\n").unwrap();
        let base = [
            "compare", "--vms", "12", "--servers", "6", "--seeds", "2", "--algos", "miec",
            "--metrics-out", &path_str,
        ];

        let err = run(&args(&base)).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("refusing to overwrite")
                && msg.contains("--force")),
            "{err}"
        );
        // The existing file is untouched after the refusal.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "precious data from an earlier run\n"
        );

        let mut forced: Vec<&str> = base.to_vec();
        forced.push("--force");
        let out = run(&args(&forced)).unwrap();
        assert!(out.contains("metrics written"), "{out}");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("algorithm,metric,kind,value"), "{csv}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_telemetry_out_needs_no_force() {
        let path = std::env::temp_dir().join("esvm_cli_fresh_out_test.jsonl");
        std::fs::remove_file(&path).ok();
        let out = run(&args(&[
            "compare", "--vms", "12", "--servers", "6", "--seeds", "2", "--algos", "miec",
            "--events-out", path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("events written"), "{out}");
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }

    /// Satellite: the histogram rows of `--metrics-out` carry exact
    /// p50/p95/p99 and the whole CSV is reproducible byte-for-byte —
    /// pinned against the committed golden file.
    #[test]
    fn metrics_out_matches_committed_golden_file() {
        let path = std::env::temp_dir().join("esvm_cli_metrics_golden_test.csv");
        std::fs::remove_file(&path).ok();
        run(&args(&[
            "compare", "--vms", "24", "--servers", "8", "--seed", "5", "--algos", "miec",
            "--metrics-out", path.to_str().unwrap(),
        ]))
        .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        let golden = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures/metrics_golden.csv");
        let want = std::fs::read_to_string(&golden).unwrap();
        assert_eq!(got, want, "metrics CSV drifted from tests/fixtures/metrics_golden.csv");
        assert!(got.contains("p50=") && got.contains("p95=") && got.contains("p99="), "{got}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_out_writes_jsonl_with_one_explain_per_placement() {
        let path = std::env::temp_dir().join("esvm_cli_trace_test.jsonl");
        std::fs::remove_file(&path).ok();
        let out = run(&args(&[
            "compare", "--vms", "20", "--servers", "10", "--algos", "miec", "--trace-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("provenance trace"), "{out}");
        assert!(out.contains("span latency percentiles"), "{out}");
        // One explain record per placed VM, as the summary table reports.
        let placed: usize = out
            .lines()
            .find(|l| l.contains("miec.vms_placed"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|n| n.parse().ok())
            .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let explains = body
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"explain\""))
            .count();
        assert_eq!(explains, placed, "{out}");
        assert!(body.lines().any(|l| l.starts_with("{\"type\":\"span\"")), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_out_json_extension_writes_chrome_trace() {
        let path = std::env::temp_dir().join("esvm_cli_trace_test.json");
        std::fs::remove_file(&path).ok();
        let out = run(&args(&[
            "compare", "--vms", "12", "--servers", "6", "--algos", "miec", "--trace-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("provenance trace"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.trim_start().starts_with('{'), "{body}");
        assert!(body.contains("\"traceEvents\""), "{body}");
        assert!(body.contains("\"ph\":\"X\""), "{body}");
        std::fs::remove_file(&path).ok();
    }

    /// Satellite: `--trace-out` shares the overwrite-refusal semantics
    /// of the other out flags — fail before the run, yield to --force.
    #[test]
    fn trace_out_refuses_overwrite_without_force() {
        let path = std::env::temp_dir().join("esvm_cli_trace_overwrite_test.jsonl");
        let path_str = path.to_str().unwrap().to_owned();
        std::fs::write(&path, "an earlier trace\n").unwrap();
        let base = [
            "compare", "--vms", "12", "--servers", "6", "--algos", "miec", "--trace-out",
            &path_str,
        ];
        let err = run(&args(&base)).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("refusing to overwrite")
                && msg.contains("--force")),
            "{err}"
        );
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "an earlier trace\n");

        let mut forced: Vec<&str> = base.to_vec();
        forced.push("--force");
        let out = run(&args(&forced)).unwrap();
        assert!(out.contains("provenance trace"), "{out}");
        assert!(
            std::fs::read_to_string(&path)
                .unwrap()
                .starts_with("{\"type\":"),
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_trace_out_writes_repair_provenance() {
        let path = std::env::temp_dir().join("esvm_cli_chaos_trace_test.jsonl");
        std::fs::remove_file(&path).ok();
        let out = run(&args(&[
            "chaos", "--vms", "60", "--servers", "10", "--seed", "7", "--fault-rate", "0.6",
            "--algos", "miec", "--trace-out", path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("provenance trace"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\":\"chaos.replay\""), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn algo_is_an_alias_for_algos() {
        let a = run(&args(&["compare", "--vms", "12", "--servers", "6", "--algo", "miec"])).unwrap();
        let b = run(&args(&["compare", "--vms", "12", "--servers", "6", "--algos", "miec"])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_figure_name_yields_usage() {
        for bad in ["fig1", "fig10", "figure2", "fig"] {
            let err = run(&args(&[bad])).unwrap_err();
            assert!(
                matches!(&err, CliError::Usage(msg) if msg.contains("unknown command")),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn algo_threads_flag_is_parsed_and_validated() {
        let err = run(&args(&["fig2", "--algo-threads", "many"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let out = run(&args(&[
            "compare", "--vms", "12", "--servers", "6", "--seeds", "2", "--algo-threads", "2",
        ]))
        .unwrap();
        assert!(out.contains("mean cost"), "{out}");
    }

    #[test]
    fn shard_and_batch_flags_are_parsed_and_validated() {
        for (flag, bad) in [("--shards", "many"), ("--batch", "2.5")] {
            let err = run(&args(&["fig2", flag, bad])).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{flag}");
        }
        let out = run(&args(&[
            "compare", "--vms", "12", "--servers", "6", "--seeds", "2", "--algo-threads", "2",
            "--shards", "3", "--batch", "8",
        ]))
        .unwrap();
        assert!(out.contains("mean cost"), "{out}");
        // The builder surface the flags map onto.
        let mut flags = Flags::default();
        flags.algo_threads = Some(2);
        flags.algo_shards = Some(5);
        flags.algo_batch = Some(64);
        let par = flags.algo_parallelism().unwrap();
        assert_eq!(par.threads(), 2);
        assert_eq!(par.shards_override(), 5);
        assert_eq!(par.batch(), 64);
    }

    #[test]
    fn chaos_command_runs_and_reports_robustness_columns() {
        let out = run(&args(&[
            "chaos", "--vms", "20", "--servers", "10", "--seed", "7", "--fault-rate", "0.3",
            "--algos", "miec,ffps",
        ]))
        .unwrap();
        assert!(out.contains("chaos replay"), "{out}");
        assert!(out.contains("adjusted cost"), "{out}");
        assert!(out.contains("miec"), "{out}");
        assert!(out.contains("smallest-remaining-first"), "{out}");
    }

    #[test]
    fn chaos_plan_round_trips_through_files() {
        let path = std::env::temp_dir().join("esvm_cli_chaos_plan_test.txt");
        std::fs::remove_file(&path).ok();
        let base = [
            "chaos", "--vms", "16", "--servers", "8", "--seed", "3", "--fault-rate", "0.5",
            "--algos", "miec",
        ];
        let mut first: Vec<&str> = base.to_vec();
        first.extend(["--plan-out", path.to_str().unwrap()]);
        let out1 = run(&args(&first)).unwrap();
        assert!(out1.contains("fault plan written"), "{out1}");
        let plan_text = std::fs::read_to_string(&path).unwrap();
        assert!(plan_text.starts_with("# esvm faultplan v1"), "{plan_text}");

        let mut second: Vec<&str> = base.to_vec();
        second.extend(["--plan", path.to_str().unwrap()]);
        let out2 = run(&args(&second)).unwrap();
        // Same plan, same seed: the replay row is identical.
        let row_of = |s: &str| s.lines().find(|l| l.starts_with("miec")).unwrap().to_owned();
        assert_eq!(row_of(&out1), row_of(&out2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_with_zero_fault_rate_matches_offline_cost() {
        let out = run(&args(&[
            "chaos", "--vms", "16", "--servers", "8", "--seed", "1", "--fault-rate", "0",
            "--algos", "miec",
        ]))
        .unwrap();
        assert!(out.contains("0 availability events"), "{out}");
        // The summary row repeats the offline cost for replay/adjusted.
        let row = out.lines().find(|l| l.contains("miec")).unwrap();
        let cells: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cells[1], cells[2], "{row}");
        assert_eq!(cells[1], cells[3], "{row}");
        assert!(row.contains(" 0"), "{row}");
    }

    #[test]
    fn chaos_writes_metrics_and_events() {
        let dir = std::env::temp_dir();
        let metrics_path = dir.join("esvm_cli_chaos_metrics_test.csv");
        let events_path = dir.join("esvm_cli_chaos_events_test.jsonl");
        std::fs::remove_file(&metrics_path).ok();
        std::fs::remove_file(&events_path).ok();
        let out = run(&args(&[
            "chaos", "--vms", "20", "--servers", "6", "--seed", "5", "--fault-rate", "0.8",
            "--algos", "miec",
            "--metrics-out", metrics_path.to_str().unwrap(),
            "--events-out", events_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("metrics written"), "{out}");
        let csv = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(csv.starts_with("algorithm,metric,kind,value"), "{csv}");
        assert!(csv.contains("chaos."), "{csv}");
        std::fs::remove_file(&metrics_path).ok();
        std::fs::remove_file(&events_path).ok();
    }

    #[test]
    fn chaos_flag_validation() {
        for bad in [
            vec!["chaos", "--fault-rate", "1.5"],
            vec!["chaos", "--fault-rate", "lots"],
            vec!["chaos", "--shed-policy", "nonsense"],
            vec!["chaos", "--retries", "-1"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}: {err}");
        }
        let err = run(&args(&["chaos", "--plan", "/definitely/not/here.txt"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("cannot read fault plan")),
            "{err}"
        );
    }

    #[test]
    fn out_paths_into_missing_directories_fail_before_the_run() {
        let bad = "/definitely/not/a/dir/esvm_metrics.csv";
        for cmd in [
            vec!["chaos", "--vms", "12", "--servers", "6", "--metrics-out", bad],
            vec![
                "compare", "--vms", "12", "--servers", "6", "--seeds", "2", "--metrics-out", bad,
            ],
        ] {
            let err = run(&args(&cmd)).unwrap_err();
            assert!(
                matches!(&err, CliError::Usage(msg) if msg.contains("does not exist")),
                "{cmd:?}: {err}"
            );
        }
    }

    #[test]
    fn missing_trace_error_suggests_gen() {
        let err = run(&args(&["solve", "--trace", "/no/such/trace.txt"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("esvm gen --out")),
            "{err}"
        );
    }

    #[test]
    fn exact_command_certifies() {
        // Seed 0 draws a feasible 3-VM/2-server instance; not every seed
        // does at this tiny scale.
        let out = run(&args(&["exact", "--vms", "3", "--servers", "2", "--seed", "0"])).unwrap();
        assert!(out.contains("exact (ILP)"), "{out}");
        assert!(out.contains("miec"), "{out}");
    }

    #[test]
    fn gap_command_reports_ratios() {
        let out = run(&args(&[
            "gap", "--vms", "20", "--servers", "10", "--seeds", "3",
        ]))
        .unwrap();
        assert!(out.contains("optimality gap"), "{out}");
        assert!(out.contains("empirical competitive ratio"), "{out}");
        // Three seed rows plus the header.
        assert!(out.contains("offline best"), "{out}");
    }

    #[test]
    fn gap_command_accepts_adversary_presets() {
        let out = run(&args(&[
            "gap",
            "--vms",
            "24",
            "--servers",
            "8",
            "--seeds",
            "2",
            "--adversary",
            "break-even",
        ]))
        .unwrap();
        assert!(out.contains("adversary break-even"), "{out}");
        let err = run(&args(&["gap", "--adversary", "nonsense"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn serve_replays_text_and_esvt_traces() {
        let dir = std::env::temp_dir();
        let text_path = dir.join("esvm_cli_serve_test.txt");
        let esvt_path = dir.join("esvm_cli_serve_test.esvt");
        for path in [&text_path, &esvt_path] {
            run(&args(&[
                "gen",
                "--vms",
                "30",
                "--servers",
                "10",
                "--seed",
                "7",
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let text = run(&args(&["serve", "--trace", text_path.to_str().unwrap()])).unwrap();
        assert!(text.contains("online serving session"), "{text}");
        assert!(text.contains("decision p99"), "{text}");
        let esvt = run(&args(&["serve", "--trace", esvt_path.to_str().unwrap()])).unwrap();
        assert!(esvt.contains("streamed ESVT trace"), "{esvt}");
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&esvt_path).ok();
    }

    #[test]
    fn serve_journal_round_trips_and_survives_a_torn_tail() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("esvm_cli_serve_wal_trace.txt");
        let journal_path = dir.join("esvm_cli_serve_wal.esvj");
        let torn_path = dir.join("esvm_cli_serve_wal_torn.esvj");
        for p in [&trace_path, &journal_path, &torn_path] {
            std::fs::remove_file(p).ok();
        }
        run(&args(&[
            "gen", "--vms", "40", "--servers", "10", "--seed", "9", "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let first = run(&args(&[
            "serve", "--trace", trace_path.to_str().unwrap(), "--journal",
            journal_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(first.contains("journaling to"), "{first}");
        assert!(first.contains("journal appends"), "{first}");
        let placed_row = |s: &str| {
            s.lines()
                .find(|l| l.trim_start().starts_with("placed"))
                .unwrap()
                .to_owned()
        };

        // Clean recovery replays every record and reports no torn bytes.
        let recovered = run(&args(&["serve", "--recover", journal_path.to_str().unwrap()]))
            .unwrap();
        assert!(recovered.contains("recovered"), "{recovered}");
        assert!(!recovered.contains("torn bytes"), "{recovered}");
        assert!(recovered.contains("recovery (ms)"), "{recovered}");
        assert_eq!(placed_row(&first), placed_row(&recovered));

        // A crash mid-append leaves a torn tail: recovery truncates it
        // and still reaches a valid state.
        let bytes = std::fs::read(&journal_path).unwrap();
        std::fs::write(&torn_path, &bytes[..bytes.len() - 7]).unwrap();
        let torn = run(&args(&["serve", "--recover", torn_path.to_str().unwrap()])).unwrap();
        assert!(torn.contains("torn bytes dropped"), "{torn}");

        // Resuming the same journal file truncates the tail in place
        // and appends — the file stays recoverable afterwards.
        let resumed = run(&args(&[
            "serve", "--recover", torn_path.to_str().unwrap(), "--journal",
            torn_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(resumed.contains("journaling to"), "{resumed}");
        let again = run(&args(&["serve", "--recover", torn_path.to_str().unwrap()])).unwrap();
        assert!(!again.contains("torn bytes"), "{again}");
        for p in [&trace_path, &journal_path, &torn_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_queue_cap_sheds_bursts() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("esvm_cli_serve_queue_trace.txt");
        std::fs::remove_file(&trace_path).ok();
        // A tight interarrival packs many same-step arrivals per burst.
        run(&args(&[
            "gen", "--vms", "60", "--servers", "20", "--seed", "2", "--interarrival", "0.1",
            "--out", trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&args(&[
            "serve", "--trace", trace_path.to_str().unwrap(), "--queue", "1",
        ]))
        .unwrap();
        let overloaded: u64 = out
            .lines()
            .find(|l| l.trim_start().starts_with("overloaded"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(overloaded > 0, "{out}");
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn chaos_live_drills_the_serve_session() {
        let dir = std::env::temp_dir();
        let journal_path = dir.join("esvm_cli_chaos_live.esvj");
        std::fs::remove_file(&journal_path).ok();
        let out = run(&args(&[
            "chaos", "--vms", "40", "--servers", "10", "--seed", "7", "--fault-rate", "0.6",
            "--live", "--journal", journal_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("live chaos drill"), "{out}");
        assert!(out.contains("energy conservation verified"), "{out}");
        assert!(out.contains("downs applied"), "{out}");
        // The drill's journal recovers like any serve journal.
        let recovered = run(&args(&["serve", "--recover", journal_path.to_str().unwrap()]))
            .unwrap();
        assert!(recovered.contains("recovered"), "{recovered}");
        std::fs::remove_file(&journal_path).ok();
    }

    #[test]
    fn serve_flag_validation() {
        for bad in [
            vec!["serve", "--fsync-every", "often"],
            vec!["serve", "--queue", "-2"],
            vec!["serve", "--journal"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}: {err}");
        }
        let err = run(&args(&["serve", "--recover", "/no/such/journal.esvj"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("cannot recover journal")),
            "{err}"
        );
    }

    #[test]
    fn serve_trace_and_socket_are_mutually_exclusive() {
        let err = run(&args(&[
            "serve", "--trace", "/tmp/x.txt", "--socket", "/tmp/x.sock",
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("mutually exclusive")),
            "{err}"
        );
    }

    #[test]
    fn serve_writes_metrics_and_trace_side_files() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("esvm_cli_serve_side_test.txt");
        let metrics_path = dir.join("esvm_cli_serve_metrics_test.csv");
        let spans_path = dir.join("esvm_cli_serve_spans_test.jsonl");
        run(&args(&[
            "gen",
            "--vms",
            "20",
            "--servers",
            "8",
            "--seed",
            "3",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&args(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--trace-out",
            spans_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("metrics written"), "{out}");
        let csv = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(csv.contains("serve.requests"), "{csv}");
        assert!(csv.contains("serve.decision_us"), "{csv}");
        let spans = std::fs::read_to_string(&spans_path).unwrap();
        assert!(spans.contains("online.decision"), "{spans}");
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&metrics_path).ok();
        std::fs::remove_file(&spans_path).ok();
    }
}
