//! Seeded, multi-threaded Monte-Carlo comparison runner.
//!
//! Every sweep point of every figure boils down to: generate `k` seeded
//! workloads, run a set of allocation algorithms on each, audit the
//! assignments, and aggregate costs and utilizations. [`MonteCarlo`]
//! does exactly that, fanning seeds out over a scoped thread pool.
//! Results are deterministic: workload generation is seeded by the run
//! seed, and each algorithm's RNG is seeded by `(run seed, algorithm
//! index)`, independent of thread scheduling.

use esvm_analysis::metrics::mean_energy_reduction_ratio;
use esvm_analysis::Summary;
use esvm_core::AllocatorKind;
use esvm_par::{par_map, Parallelism};
use esvm_simcore::AuditReport;
use esvm_workload::{GenerateError, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Errors from a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// Workload generation failed.
    Generate(GenerateError),
    /// An algorithm could not place a VM (overloaded instance).
    Alloc {
        /// Which algorithm failed.
        algo: AllocatorKind,
        /// Seed of the failing run.
        seed: u64,
        /// The underlying error.
        error: esvm_core::AllocError,
    },
    /// Auditing an assignment failed (would indicate an algorithm bug).
    Audit(esvm_simcore::Error),
    /// No algorithms were requested.
    NoAlgorithms,
    /// Every seeded instance was overloaded (no feasible placement), so
    /// there is nothing to aggregate.
    AllSeedsOverloaded {
        /// How many seeds were attempted and skipped.
        skipped: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Generate(e) => write!(f, "workload generation failed: {e}"),
            RunError::Alloc { algo, seed, error } => {
                write!(f, "{algo} failed on seed {seed}: {error}")
            }
            RunError::Audit(e) => write!(f, "audit failed: {e}"),
            RunError::NoAlgorithms => write!(f, "no algorithms requested"),
            RunError::AllSeedsOverloaded { skipped } => {
                write!(f, "all {skipped} seeded instances were overloaded")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<GenerateError> for RunError {
    fn from(e: GenerateError) -> Self {
        RunError::Generate(e)
    }
}

/// Aggregated comparison of several algorithms at one sweep point.
#[derive(Debug, Clone)]
pub struct ComparisonPoint {
    /// The compared algorithms, in request order.
    pub algos: Vec<AllocatorKind>,
    /// Per-algorithm total energy per seed: `costs[a][s]`.
    pub costs: Vec<Vec<f64>>,
    /// Per-algorithm mean CPU utilization (busy servers) per seed.
    pub cpu_utilization: Vec<Vec<f64>>,
    /// Per-algorithm mean memory utilization per seed.
    pub mem_utilization: Vec<Vec<f64>>,
    /// Per-algorithm energy breakdown `(run, idle, transition)` per seed.
    pub breakdowns: Vec<Vec<(f64, f64, f64)>>,
    /// Seeds skipped because the instance was overloaded for some
    /// algorithm (the whole seed is dropped for *all* algorithms, keeping
    /// the comparison paired). The paper's settings make this vanishingly
    /// rare; scaled-down quick runs can hit it.
    pub skipped_seeds: u64,
}

impl ComparisonPoint {
    fn index_of(&self, algo: AllocatorKind) -> usize {
        self.try_index_of(algo)
            .unwrap_or_else(|| panic!("{algo} was not part of this comparison"))
    }

    /// Position of `algo` in the comparison, if it took part — the
    /// non-panicking lookup front ends should use before indexing
    /// [`ComparisonPoint::costs`] directly.
    pub fn try_index_of(&self, algo: AllocatorKind) -> Option<usize> {
        self.algos.iter().position(|&a| a == algo)
    }

    /// Cost summary for one algorithm, or `None` when `algo` was not
    /// part of the comparison. An empty sample cannot occur: `compare`
    /// fails with [`RunError::AllSeedsOverloaded`] instead of
    /// returning one.
    pub fn try_cost_summary(&self, algo: AllocatorKind) -> Option<Summary> {
        Summary::of(&self.costs[self.try_index_of(algo)?])
    }

    /// Cost summary for one algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `algo` was not part of the comparison.
    pub fn cost_summary(&self, algo: AllocatorKind) -> Summary {
        self.try_cost_summary(algo)
            .unwrap_or_else(|| panic!("{algo} was not part of this comparison"))
    }

    /// Mean per-seed energy-reduction ratio of `ours` against
    /// `baseline`, as a fraction (the paper's headline metric).
    ///
    /// # Panics
    ///
    /// Panics if either algorithm was not part of the comparison.
    pub fn reduction_ratio(&self, baseline: AllocatorKind, ours: AllocatorKind) -> f64 {
        mean_energy_reduction_ratio(
            &self.costs[self.index_of(baseline)],
            &self.costs[self.index_of(ours)],
        )
    }

    /// Mean CPU utilization (fraction) of one algorithm over all seeds.
    pub fn mean_cpu_utilization(&self, algo: AllocatorKind) -> f64 {
        let xs = &self.cpu_utilization[self.index_of(algo)];
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Mean memory utilization (fraction) of one algorithm over all
    /// seeds.
    pub fn mean_mem_utilization(&self, algo: AllocatorKind) -> f64 {
        let xs = &self.mem_utilization[self.index_of(algo)];
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// A 95 % bootstrap confidence interval on the mean reduction ratio
    /// of `ours` vs `baseline` (fractions).
    ///
    /// # Panics
    ///
    /// Panics if either algorithm was not part of the comparison.
    pub fn reduction_ratio_ci(
        &self,
        baseline: AllocatorKind,
        ours: AllocatorKind,
    ) -> Option<(f64, f64)> {
        let base = &self.costs[self.index_of(baseline)];
        let our = &self.costs[self.index_of(ours)];
        let ratios: Vec<f64> = base
            .iter()
            .zip(our)
            .map(|(&b, &o)| if b == 0.0 { 0.0 } else { (b - o) / b })
            .collect();
        esvm_analysis::stats::bootstrap_mean_ci(&ratios, 2000, 0.95)
    }

    /// Mean energy breakdown `(run, idle, transition)` of one algorithm
    /// over all seeds.
    pub fn mean_breakdown(&self, algo: AllocatorKind) -> (f64, f64, f64) {
        let xs = &self.breakdowns[self.index_of(algo)];
        let n = xs.len() as f64;
        let sum = xs.iter().fold((0.0, 0.0, 0.0), |acc, b| {
            (acc.0 + b.0, acc.1 + b.1, acc.2 + b.2)
        });
        (sum.0 / n, sum.1 / n, sum.2 / n)
    }

    /// Number of seeds.
    pub fn seed_count(&self) -> usize {
        self.costs.first().map_or(0, Vec::len)
    }
}

/// One seeded run of one algorithm on one generated problem.
///
/// Standalone entry point used by examples and tests that want a single
/// audited comparison rather than an aggregate.
pub fn run_once(
    config: &WorkloadConfig,
    algo: AllocatorKind,
    seed: u64,
) -> Result<AuditReport, RunError> {
    let problem = config.generate(seed)?;
    // Honors `ESVM_THREADS` for the allocator's scoring loops;
    // placements are bit-identical for every thread count.
    let allocator = algo.build_with(Parallelism::from_env());
    let mut rng = algo_rng(seed, 0, algo);
    let assignment = allocator
        .allocate(&problem, &mut rng)
        .map_err(|error| RunError::Alloc { algo, seed, error })?;
    assignment.audit().map_err(RunError::Audit)
}

/// [`run_once`] with telemetry: decision counters and histograms land
/// in `metrics`, per-decision events in `sink`, and the audited energy
/// decomposition is exported as `energy.run` / `energy.idle` /
/// `energy.transition` / `energy.total` gauges. Placements (and hence
/// the audit) are identical to [`run_once`] for the same arguments.
///
/// # Errors
///
/// Same contract as [`run_once`].
pub fn run_once_observed<S: esvm_obs::EventSink>(
    config: &WorkloadConfig,
    algo: AllocatorKind,
    seed: u64,
    sink: &mut S,
    metrics: &esvm_obs::MetricsRegistry,
) -> Result<AuditReport, RunError> {
    let problem = config.generate(seed)?;
    let mut rng = algo_rng(seed, 0, algo);
    let assignment = algo
        .allocate_observed_with(&problem, &mut rng, sink, metrics, Parallelism::from_env())
        .map_err(|error| RunError::Alloc { algo, seed, error })?;
    let report = assignment.audit().map_err(RunError::Audit)?;
    metrics.set_gauge("energy.run", report.breakdown.run);
    metrics.set_gauge("energy.idle", report.breakdown.idle);
    metrics.set_gauge("energy.transition", report.breakdown.transition);
    metrics.set_gauge("energy.total", report.total_cost);
    Ok(report)
}

/// Derives the per-algorithm RNG for a run, mixing the seed, the
/// algorithm's position and its name so streams are independent.
fn algo_rng(seed: u64, index: usize, algo: AllocatorKind) -> StdRng {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for b in algo.name().bytes() {
        h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b));
    }
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(index as u64)
            .wrapping_add(h),
    )
}

/// One algorithm's audited metrics on one seeded instance.
#[derive(Debug, Clone, Copy)]
struct AlgoRun {
    cost: f64,
    cpu_util: f64,
    mem_util: f64,
    breakdown: (f64, f64, f64),
}

/// The Monte-Carlo executor.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Seeds `0..seeds` are run.
    pub seeds: u64,
    /// Worker threads fanning *seeds* out (outer parallelism).
    pub threads: usize,
    /// Thread-count policy for each allocator's scoring loops (inner
    /// parallelism). Defaults to the `ESVM_THREADS` policy; results are
    /// bit-identical for every setting, so the two axes compose freely
    /// — though at full seed fan-out the outer axis alone usually
    /// saturates the machine.
    pub algo_parallelism: Parallelism,
}

impl MonteCarlo {
    /// Creates an executor with the given seed count and threads. The
    /// per-allocator scoring parallelism defaults to
    /// [`Parallelism::from_env`].
    pub fn new(seeds: u64, threads: usize) -> Self {
        Self {
            seeds,
            threads: threads.max(1),
            algo_parallelism: Parallelism::from_env(),
        }
    }

    /// Overrides the thread-count policy of each allocator's scoring
    /// loops (default: the `ESVM_THREADS` policy).
    pub fn with_algo_parallelism(mut self, par: Parallelism) -> Self {
        self.algo_parallelism = par;
        self
    }

    /// Runs every algorithm on every seeded workload and aggregates.
    ///
    /// # Errors
    ///
    /// The [`RunError`] of the lowest-numbered failing seed (the whole
    /// comparison is abandoned: partial Monte-Carlo aggregates would
    /// silently bias the figures). The reported error is independent of
    /// the thread count — every seed runs to completion and the
    /// first-in-seed-order failure wins, rather than whichever thread
    /// lost a race.
    pub fn compare(
        &self,
        config: &WorkloadConfig,
        algos: &[AllocatorKind],
    ) -> Result<ComparisonPoint, RunError> {
        if algos.is_empty() {
            return Err(RunError::NoAlgorithms);
        }
        let n_algos = algos.len();
        let n_seeds = self.seeds as usize;

        enum SeedOutcome {
            Done(Vec<AlgoRun>),
            Overloaded,
            Failed(RunError),
        }

        let seeds: Vec<u64> = (0..self.seeds).collect();
        let outcomes = par_map(Parallelism::new(self.threads), &seeds, |_i, &seed| {
            match Self::run_seed(config, algos, seed, self.algo_parallelism) {
                Ok(row) => SeedOutcome::Done(row),
                // An overloaded instance is dropped for every
                // algorithm, keeping the comparison paired.
                Err(RunError::Alloc {
                    error: esvm_core::AllocError::NoFeasibleServer(_),
                    ..
                }) => SeedOutcome::Overloaded,
                Err(e) => SeedOutcome::Failed(e),
            }
        });
        let results = {
            let mut done = Vec::with_capacity(n_seeds);
            for outcome in outcomes {
                match outcome {
                    SeedOutcome::Failed(e) => return Err(e),
                    other => done.push(other),
                }
            }
            done
        };

        let mut point = ComparisonPoint {
            algos: algos.to_vec(),
            costs: vec![Vec::with_capacity(n_seeds); n_algos],
            cpu_utilization: vec![Vec::with_capacity(n_seeds); n_algos],
            mem_utilization: vec![Vec::with_capacity(n_seeds); n_algos],
            breakdowns: vec![Vec::with_capacity(n_seeds); n_algos],
            skipped_seeds: 0,
        };
        for outcome in results {
            match outcome {
                SeedOutcome::Done(row) => {
                    for (a, run) in row.into_iter().enumerate() {
                        point.costs[a].push(run.cost);
                        point.cpu_utilization[a].push(run.cpu_util);
                        point.mem_utilization[a].push(run.mem_util);
                        point.breakdowns[a].push(run.breakdown);
                    }
                }
                SeedOutcome::Overloaded => point.skipped_seeds += 1,
                SeedOutcome::Failed(_) => unreachable!("failures returned above"),
            }
        }
        if point.seed_count() == 0 {
            return Err(RunError::AllSeedsOverloaded {
                skipped: point.skipped_seeds,
            });
        }
        Ok(point)
    }

    fn run_seed(
        config: &WorkloadConfig,
        algos: &[AllocatorKind],
        seed: u64,
        par: Parallelism,
    ) -> Result<Vec<AlgoRun>, RunError> {
        let problem = config.generate(seed)?;
        algos
            .iter()
            .enumerate()
            .map(|(index, &algo)| {
                let allocator = algo.build_with(par);
                let mut rng = algo_rng(seed, index, algo);
                let assignment = allocator
                    .allocate(&problem, &mut rng)
                    .map_err(|error| RunError::Alloc { algo, seed, error })?;
                let report = assignment.audit().map_err(RunError::Audit)?;
                Ok(AlgoRun {
                    cost: report.total_cost,
                    cpu_util: report.utilization.avg_cpu,
                    mem_util: report.utilization.avg_mem,
                    breakdown: (
                        report.breakdown.run,
                        report.breakdown.idle,
                        report.breakdown.transition,
                    ),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig::new(30, 15).mean_interarrival(3.0)
    }

    #[test]
    fn compare_is_deterministic_across_thread_counts() {
        let algos = [AllocatorKind::Miec, AllocatorKind::Ffps];
        let a = MonteCarlo::new(6, 1).compare(&config(), &algos).unwrap();
        let b = MonteCarlo::new(6, 4).compare(&config(), &algos).unwrap();
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.cpu_utilization, b.cpu_utilization);
    }

    #[test]
    fn compare_is_independent_of_algo_parallelism() {
        let algos = [
            AllocatorKind::Miec,
            AllocatorKind::MiecLocalSearch,
            AllocatorKind::Ffps,
        ];
        let sequential = MonteCarlo::new(4, 1)
            .with_algo_parallelism(Parallelism::sequential())
            .compare(&config(), &algos)
            .unwrap();
        for (outer, inner) in [(1usize, 4usize), (2, 2), (4, 4)] {
            let parallel = MonteCarlo::new(4, outer)
                .with_algo_parallelism(Parallelism::new(inner))
                .compare(&config(), &algos)
                .unwrap();
            assert_eq!(sequential.costs, parallel.costs, "outer={outer} inner={inner}");
            assert_eq!(sequential.breakdowns, parallel.breakdowns);
            assert_eq!(sequential.cpu_utilization, parallel.cpu_utilization);
        }
    }

    #[test]
    fn first_failing_seed_wins_regardless_of_threads() {
        // A workload that audits fine but whose generation fails for
        // every seed would mask ordering; instead check the error is
        // stable across thread counts on a failing configuration.
        use esvm_workload::catalog;
        let bad = WorkloadConfig::new(10, 5)
            .vm_types(vec![catalog::VM_TYPES[6]])
            .server_types(vec![catalog::SERVER_TYPES[0]]);
        let a = MonteCarlo::new(6, 1)
            .compare(&bad, &[AllocatorKind::Miec])
            .unwrap_err();
        let b = MonteCarlo::new(6, 4)
            .compare(&bad, &[AllocatorKind::Miec])
            .unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn miec_beats_ffps_on_average() {
        let algos = [AllocatorKind::Miec, AllocatorKind::Ffps];
        let point = MonteCarlo::new(8, 4).compare(&config(), &algos).unwrap();
        let ratio = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec);
        assert!(ratio > 0.0, "expected positive saving, got {ratio}");
        assert_eq!(point.seed_count(), 8);
    }

    #[test]
    fn summaries_and_utilizations_are_reported() {
        let algos = [AllocatorKind::Miec, AllocatorKind::Ffps];
        let point = MonteCarlo::new(4, 2).compare(&config(), &algos).unwrap();
        let s = point.cost_summary(AllocatorKind::Miec);
        assert_eq!(s.n, 4);
        assert!(s.mean > 0.0);
        let u = point.mean_cpu_utilization(AllocatorKind::Miec);
        assert!((0.0..=1.0).contains(&u));
        assert!(point.mean_mem_utilization(AllocatorKind::Ffps) > 0.0);
    }

    #[test]
    fn reduction_ratio_ci_brackets_the_point_estimate() {
        let algos = [AllocatorKind::Miec, AllocatorKind::Ffps];
        let point = MonteCarlo::new(10, 4).compare(&config(), &algos).unwrap();
        let r = point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec);
        let (lo, hi) = point
            .reduction_ratio_ci(AllocatorKind::Ffps, AllocatorKind::Miec)
            .unwrap();
        assert!(lo <= r && r <= hi, "[{lo}, {hi}] vs {r}");
        // The baseline against itself is exactly zero with a zero CI.
        let (lo, hi) = point
            .reduction_ratio_ci(AllocatorKind::Ffps, AllocatorKind::Ffps)
            .unwrap();
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn empty_algorithm_list_is_rejected() {
        let err = MonteCarlo::new(2, 1).compare(&config(), &[]).unwrap_err();
        assert_eq!(err, RunError::NoAlgorithms);
    }

    #[test]
    fn run_once_produces_an_audit() {
        let report = run_once(&config(), AllocatorKind::Miec, 3).unwrap();
        assert!(report.total_cost > 0.0);
        assert!(report.breakdown.run > 0.0);
    }

    #[test]
    fn run_once_observed_matches_run_once_and_exports_gauges() {
        let plain = run_once(&config(), AllocatorKind::Miec, 3).unwrap();
        let metrics = esvm_obs::MetricsRegistry::new();
        let observed = run_once_observed(
            &config(),
            AllocatorKind::Miec,
            3,
            &mut esvm_obs::DiscardSink,
            &metrics,
        )
        .unwrap();
        assert_eq!(observed.total_cost.to_bits(), plain.total_cost.to_bits());
        assert_eq!(metrics.gauge("energy.total"), Some(plain.total_cost));
        assert_eq!(metrics.gauge("energy.run"), Some(plain.breakdown.run));
        assert!(metrics.counter("miec.vms_placed") > 0);
    }

    #[test]
    fn generation_errors_propagate() {
        use esvm_workload::catalog;
        let bad = WorkloadConfig::new(10, 5)
            .vm_types(vec![catalog::VM_TYPES[6]]) // m2.4xlarge
            .server_types(vec![catalog::SERVER_TYPES[0]]); // too small
        let err = MonteCarlo::new(2, 1)
            .compare(&bad, &[AllocatorKind::Miec])
            .unwrap_err();
        assert!(matches!(err, RunError::Generate(_)));
    }

    #[test]
    fn try_lookups_report_missing_algorithms_without_panicking() {
        let point = MonteCarlo::new(2, 1)
            .compare(&config(), &[AllocatorKind::Miec])
            .unwrap();
        assert_eq!(point.try_index_of(AllocatorKind::Miec), Some(0));
        assert_eq!(point.try_index_of(AllocatorKind::Ffps), None);
        assert!(point.try_cost_summary(AllocatorKind::Miec).is_some());
        assert!(point.try_cost_summary(AllocatorKind::Ffps).is_none());
    }

    #[test]
    #[should_panic(expected = "was not part")]
    fn querying_missing_algorithm_panics() {
        let point = MonteCarlo::new(2, 1)
            .compare(&config(), &[AllocatorKind::Miec])
            .unwrap();
        let _ = point.cost_summary(AllocatorKind::Ffps);
    }
}
