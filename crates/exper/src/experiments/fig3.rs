//! Fig. 3 — average CPU and memory utilization of servers (100 VMs),
//! MIEC vs FFPS, vs mean inter-arrival time.
//!
//! Paper shape: FFPS CPU utilization is low and uneven against memory;
//! MIEC raises CPU utilization substantially and evens out the two
//! resources; utilization decreases with growing inter-arrival time.

use super::{executor, interarrival_sweep, pct, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_core::AllocatorKind;
use esvm_workload::WorkloadConfig;

/// Reproduces Fig. 3: utilization of servers with 100 VMs allocated.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig3(opts: &ExpOptions) -> Result<Figure, RunError> {
    let vm_count = opts.scale_vms(100);
    let mut figure = Figure::new(
        "Fig. 3",
        format!("average CPU and memory utilization of servers with {vm_count} VMs allocated"),
        "mean inter-arrival time",
        "resource utilization (%)",
    );
    let exec = executor(opts);

    let mut xs = Vec::new();
    let mut cpu_miec = Vec::new();
    let mut mem_miec = Vec::new();
    let mut cpu_ffps = Vec::new();
    let mut mem_ffps = Vec::new();
    for ia in interarrival_sweep() {
        let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
            .mean_interarrival(ia)
            .mean_duration(5.0)
            .transition_time(1.0);
        let point = exec.compare(&config, &COMPARED)?;
        xs.push(ia);
        cpu_miec.push(pct(point.mean_cpu_utilization(AllocatorKind::Miec)));
        mem_miec.push(pct(point.mean_mem_utilization(AllocatorKind::Miec)));
        cpu_ffps.push(pct(point.mean_cpu_utilization(AllocatorKind::Ffps)));
        mem_ffps.push(pct(point.mean_mem_utilization(AllocatorKind::Ffps)));
    }
    figure.push(Series::plain("CPU utilization of MIEC", xs.clone(), cpu_miec));
    figure.push(Series::plain(
        "memory utilization of MIEC",
        xs.clone(),
        mem_miec,
    ));
    figure.push(Series::plain("CPU utilization of FFPS", xs.clone(), cpu_ffps));
    figure.push(Series::plain("memory utilization of FFPS", xs, mem_ffps));
    figure.note("utilization averaged over (server, time-unit) pairs hosting ≥ 1 VM");
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn miec_utilization_dominates_ffps() {
        let fig = fig3(&tiny()).unwrap();
        let cpu_miec = fig.series_by_label("CPU utilization of MIEC").unwrap();
        let cpu_ffps = fig.series_by_label("CPU utilization of FFPS").unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&cpu_miec.y) > mean(&cpu_ffps.y),
            "MIEC {:?} vs FFPS {:?}",
            cpu_miec.y,
            cpu_ffps.y
        );
    }

    #[test]
    fn utilizations_are_percentages() {
        let fig = fig3(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            for &v in &s.y {
                assert!((0.0..=100.0).contains(&v), "{}: {v}", s.label);
            }
        }
    }

    #[test]
    fn miec_evens_out_cpu_and_memory() {
        // The gap |cpu − mem| should be smaller for MIEC than FFPS on
        // average (the paper's "more even" claim).
        let fig = fig3(&tiny()).unwrap();
        let get = |l: &str| fig.series_by_label(l).unwrap().y.clone();
        let gap = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
                / a.len() as f64
        };
        let miec_gap = gap(
            &get("CPU utilization of MIEC"),
            &get("memory utilization of MIEC"),
        );
        let ffps_gap = gap(
            &get("CPU utilization of FFPS"),
            &get("memory utilization of FFPS"),
        );
        assert!(
            miec_gap <= ffps_gap + 5.0,
            "MIEC gap {miec_gap} vs FFPS gap {ffps_gap}"
        );
    }
}
