//! One module per paper artefact: Tables I–II and Figs. 2–9.
//!
//! Every `figN` function returns a [`Figure`](crate::Figure) holding the
//! same series the paper plots, with the same fitting-curve families
//! attached. All of them accept `ExpOptions` so the
//! CLI runs them at paper scale while tests and benches run them in
//! quick mode. [`ext_migration`], [`ext_arrivals`] and [`ext_overload`]
//! are extension experiments beyond the paper: the
//! allocation-vs-migration trade-off of Section V, the sensitivity to
//! non-Poisson arrival streams, and behaviour under overload with
//! admission control.

mod ext_arrivals;
mod ext_migration;
mod ext_overload;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod tables;

pub use ext_arrivals::{ext_arrivals, ext_arrivals_rows, ArrivalRow};
pub use ext_migration::{ext_migration, ext_migration_rows, MigrationRow};
pub use ext_overload::{ext_overload, ext_overload_rows, OverloadRow};
pub use fig2::fig2;
pub use fig3::fig3;
pub use fig4::fig4;
pub use fig5::fig5;
pub use fig6::fig6;
pub use fig7::fig7;
pub use fig8::fig8;
pub use fig9::fig9;
pub use tables::{table1, table2};

use crate::{ExpOptions, MonteCarlo};
use esvm_core::AllocatorKind;

/// The paper's inter-arrival sweep: "The mean inter-arrival time varies
/// from 0.5 to 10 time units."
pub(crate) fn interarrival_sweep() -> Vec<f64> {
    vec![0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
}

/// The paper's VM-count sweep (Fig. 2/7): 100–500 VMs, servers = half
/// the VMs; scaled down in quick mode.
pub(crate) fn vm_count_sweep(opts: &ExpOptions) -> Vec<usize> {
    [100, 200, 300, 400, 500]
        .into_iter()
        .map(|c| opts.scale_vms(c))
        .collect()
}

/// The two algorithms every figure compares.
pub(crate) const COMPARED: [AllocatorKind; 2] = [AllocatorKind::Miec, AllocatorKind::Ffps];

/// Shorthand for the executor configured by `opts`.
pub(crate) fn executor(opts: &ExpOptions) -> MonteCarlo {
    MonteCarlo::new(opts.seeds, opts.threads)
}

/// Percentage helper.
pub(crate) fn pct(fraction: f64) -> f64 {
    fraction * 100.0
}
