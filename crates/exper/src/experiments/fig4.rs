//! Fig. 4 — energy reduction ratio vs the memory load of the system,
//! one series per VM count, logarithmic fits.
//!
//! The paper quantifies the *load* of the system by the average
//! utilization obtained with the FFPS method (Section IV-C). Shape: the
//! reduction ratio decreases with load and the decrease flattens.

use super::{executor, interarrival_sweep, pct, vm_count_sweep, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_analysis::fit::FitKind;
use esvm_core::AllocatorKind;
use esvm_workload::WorkloadConfig;

/// Reproduces Fig. 4: the Fig. 2 sweep re-plotted against memory load.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig4(opts: &ExpOptions) -> Result<Figure, RunError> {
    let mut figure = Figure::new(
        "Fig. 4",
        "energy reduction ratio vs the memory load of the system",
        "memory load of the system (%)",
        "energy reduction ratio (%)",
    );
    let exec = executor(opts);

    for vm_count in vm_count_sweep(opts) {
        // (load, ratio) pairs; load varies inversely with inter-arrival.
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(5.0)
                .transition_time(1.0);
            let point = exec.compare(&config, &COMPARED)?;
            let load = pct(point.mean_mem_utilization(AllocatorKind::Ffps));
            let ratio = pct(point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec));
            pairs.push((load, ratio));
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        figure.push(Series::with_fit(
            format!("{vm_count} VMs"),
            xs,
            ys,
            FitKind::Logarithmic,
        ));
    }
    figure.note("load = average memory utilization measured under FFPS (Section IV-C)");
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn ratio_decreases_with_load() {
        let fig = fig4(&tiny()).unwrap();
        for s in &fig.series {
            // Compare the mean ratio over the lighter half vs the heavier
            // half of the load range (robust to Monte-Carlo noise).
            let n = s.y.len();
            let light: f64 = s.y[n / 2..].iter().sum::<f64>() / (n - n / 2) as f64;
            let heavy: f64 = s.y[..n / 2].iter().sum::<f64>() / (n / 2) as f64;
            // x ascends with load, so the light-load points are the LAST
            // ones only if load descends... pairs are sorted by load, so
            // the first half is light load.
            let (light, heavy) = (heavy, light);
            assert!(
                light > heavy,
                "{}: light-load saving {light}% ≤ heavy-load {heavy}%",
                s.label
            );
        }
    }

    #[test]
    fn log_fits_are_attached() {
        let fig = fig4(&tiny()).unwrap();
        for s in &fig.series {
            let fit = s.fit.expect("log fit");
            assert_eq!(fit.kind, FitKind::Logarithmic);
            assert!(fit.b < 0.0, "{}: slope {}", s.label, fit.b);
        }
    }

    #[test]
    fn loads_ascend_within_each_series() {
        let fig = fig4(&tiny()).unwrap();
        for s in &fig.series {
            assert!(s.x.windows(2).all(|w| w[0] <= w[1]), "{:?}", s.x);
        }
    }
}
