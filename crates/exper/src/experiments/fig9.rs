//! Fig. 9 — energy reduction ratio vs the load of the system (standard
//! VMs), linear fits.
//!
//! Load is again measured as the FFPS average utilization
//! (Section IV-C); the figure shows four series: CPU load and memory
//! load, for the all-types fleet and the types-1–3 fleet. Paper shape:
//! the ratio decreases close to linearly with load, and the all-types
//! curves sit above the types-1–3 curves (FFPS wastes more on big
//! servers while MIEC is equally good in both fleets).

use super::{executor, interarrival_sweep, pct, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_analysis::fit::FitKind;
use esvm_core::AllocatorKind;
use esvm_workload::{catalog, ServerType, WorkloadConfig};

/// Reproduces Fig. 9: standard VMs on both fleets, reduction ratio
/// plotted against the measured CPU and memory loads.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig9(opts: &ExpOptions) -> Result<Figure, RunError> {
    let vm_count = opts.scale_vms(100);
    let mut figure = Figure::new(
        "Fig. 9",
        "energy reduction ratio vs the load of the system",
        "load of the system (%)",
        "energy reduction ratio (%)",
    );
    let exec = executor(opts);

    let fleets: [(&str, Vec<ServerType>); 2] = [
        ("all types of servers used", catalog::server_types().to_vec()),
        ("types 1-3 of servers used", catalog::server_types_1_3()),
    ];
    for (tag, fleet) in fleets {
        let mut cpu_pairs: Vec<(f64, f64)> = Vec::new();
        let mut mem_pairs: Vec<(f64, f64)> = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(5.0)
                .transition_time(1.0)
                .vm_types(catalog::standard_vm_types())
                .server_types(fleet.clone());
            let point = exec.compare(&config, &COMPARED)?;
            let ratio = pct(point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec));
            cpu_pairs.push((pct(point.mean_cpu_utilization(AllocatorKind::Ffps)), ratio));
            mem_pairs.push((pct(point.mean_mem_utilization(AllocatorKind::Ffps)), ratio));
        }
        for (kind_label, mut pairs) in [("CPU load", cpu_pairs), ("memory load", mem_pairs)] {
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            figure.push(Series::with_fit(
                format!("vs {kind_label} ({tag})"),
                xs,
                ys,
                FitKind::Linear,
            ));
        }
    }
    figure.note("standard VM types; load = FFPS average utilization");
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn four_series_with_linear_fits() {
        let fig = fig9(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.fit.expect("fit").kind, FitKind::Linear);
        }
    }

    #[test]
    fn savings_are_positive_everywhere() {
        // The strict decreasing-slope shape claim needs paper-scale
        // statistics and lives in the integration tests; at this tiny
        // scale we assert the weaker invariant that MIEC never loses.
        let fig = fig9(&tiny()).unwrap();
        for s in &fig.series {
            let mean = s.y.iter().sum::<f64>() / s.y.len() as f64;
            assert!(mean > 0.0, "{}: mean {mean}%", s.label);
        }
    }

    #[test]
    fn both_fleets_save_substantially() {
        // MIEC's saving over FFPS clears 20 % with either fleet. (The
        // paper's directional claim — the all-types fleet saves at least
        // as much as types 1–3 — needs paper-scale statistics and does
        // not hold at this tiny scale, where the types-1-3 fleet gives
        // FFPS more small servers to strand.)
        let fig = fig9(&tiny()).unwrap();
        let mean = |l: &str| {
            let s = fig.series_by_label(l).unwrap();
            s.y.iter().sum::<f64>() / s.y.len() as f64
        };
        let all = mean("vs CPU load (all types of servers used)");
        let small = mean("vs CPU load (types 1-3 of servers used)");
        assert!(
            all > 20.0 && small > 20.0,
            "savings too small: all-types {all}%, types-1-3 {small}%"
        );
    }
}
