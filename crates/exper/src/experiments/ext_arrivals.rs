//! Extension experiment E2 (not in the paper): sensitivity of the
//! energy saving to the *structure* of the arrival process.
//!
//! The paper only evaluates a homogeneous Poisson stream. Real request
//! streams have day/night cycles and bursts; this experiment holds the
//! mean arrival rate fixed and swaps the process (Poisson vs diurnal
//! NHPP vs bursty MMPP-2), comparing MIEC's reduction ratio under each.

use super::{executor, pct, COMPARED};
use crate::runner::RunError;
use crate::ExpOptions;
use esvm_analysis::Table;
use esvm_core::AllocatorKind;
use esvm_workload::{ArrivalModel, WorkloadConfig};

/// One row of the E2 table.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalRow {
    /// Human name of the arrival model.
    pub model: &'static str,
    /// Mean reduction ratio (percent).
    pub reduction: f64,
    /// 95 % bootstrap CI on the ratio (percent).
    pub ci: (f64, f64),
    /// Mean CPU utilization under MIEC (percent).
    pub miec_cpu_util: f64,
    /// Mean CPU utilization under FFPS (percent).
    pub ffps_cpu_util: f64,
}

/// Runs experiment E2 and returns the raw rows.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn ext_arrivals_rows(opts: &ExpOptions) -> Result<Vec<ArrivalRow>, RunError> {
    let vm_count = opts.scale_vms(100);
    let ia = 4.0;
    let models: [(&'static str, ArrivalModel); 3] = [
        (
            "poisson",
            ArrivalModel::Poisson {
                mean_interarrival: ia,
            },
        ),
        (
            "diurnal (A=0.8, day=240)",
            ArrivalModel::Diurnal {
                mean_interarrival: ia,
                amplitude: 0.8,
                period: 240.0,
            },
        ),
        (
            "bursty (x8, 60/15)",
            ArrivalModel::Bursty {
                quiet_interarrival: ia,
                burstiness: 8.0,
                mean_quiet_sojourn: 60.0,
                mean_burst_sojourn: 15.0,
            },
        ),
    ];

    let exec = executor(opts);
    let mut rows = Vec::new();
    for (name, model) in models {
        let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
            .mean_interarrival(ia)
            .mean_duration(5.0)
            .transition_time(1.0)
            .arrivals(model);
        let point = exec.compare(&config, &COMPARED)?;
        let ci = point
            .reduction_ratio_ci(AllocatorKind::Ffps, AllocatorKind::Miec)
            .unwrap_or((0.0, 0.0));
        rows.push(ArrivalRow {
            model: name,
            reduction: pct(point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec)),
            ci: (pct(ci.0), pct(ci.1)),
            miec_cpu_util: pct(point.mean_cpu_utilization(AllocatorKind::Miec)),
            ffps_cpu_util: pct(point.mean_cpu_utilization(AllocatorKind::Ffps)),
        });
    }
    Ok(rows)
}

/// Renders experiment E2 as a table.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn ext_arrivals(opts: &ExpOptions) -> Result<Table, RunError> {
    let rows = ext_arrivals_rows(opts)?;
    let mut table = Table::new(vec![
        "arrival model",
        "reduction (%)",
        "95% CI",
        "miec cpu util (%)",
        "ffps cpu util (%)",
    ]);
    for r in rows {
        table.row(vec![
            r.model.to_owned(),
            format!("{:.2}", r.reduction),
            format!("[{:.1}; {:.1}]", r.ci.0, r.ci.1),
            format!("{:.1}", r.miec_cpu_util),
            format!("{:.1}", r.ffps_cpu_util),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn three_models_all_save_energy() {
        let rows = ext_arrivals_rows(&tiny()).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.reduction > 0.0, "{}: {r:?}", r.model);
            assert!(r.ci.0 <= r.reduction && r.reduction <= r.ci.1);
        }
    }

    #[test]
    fn table_renders() {
        let t = ext_arrivals(&tiny()).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.to_string().contains("poisson"));
    }
}
