//! Fig. 5 — impact of the server transition time (0.5 / 1 / 3 min) on
//! the energy reduction ratio.
//!
//! Paper shape: the shorter the transition time, the cheaper switching
//! off becomes, and the more energy MIEC saves. The paper fits the
//! 0.5-min and 1-min series linearly and the 3-min series exponentially.

use super::{executor, interarrival_sweep, pct, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_analysis::fit::FitKind;
use esvm_core::AllocatorKind;
use esvm_workload::WorkloadConfig;

/// Reproduces Fig. 5: 100 VMs on 50 servers, mean length 5 min, all VM
/// and server types, transition time ∈ {0.5, 1, 3} min.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig5(opts: &ExpOptions) -> Result<Figure, RunError> {
    let vm_count = opts.scale_vms(100);
    let mut figure = Figure::new(
        "Fig. 5",
        "energy reduction ratio with varying transition time settings",
        "mean inter-arrival time",
        "energy reduction ratio (%)",
    );
    let exec = executor(opts);

    for (transition, fit_kind) in [
        (0.5, FitKind::Linear),
        (1.0, FitKind::Linear),
        (3.0, FitKind::Exponential),
    ] {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(5.0)
                .transition_time(transition);
            let point = exec.compare(&config, &COMPARED)?;
            xs.push(ia);
            ys.push(pct(
                point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec),
            ));
        }
        figure.push(Series::with_fit(
            format!("transition time = {transition} min"),
            xs,
            ys,
            fit_kind,
        ));
    }
    figure.note(format!(
        "{vm_count} VMs on {} servers, mean length 5 min, α = P_peak × transition time",
        vm_count / 2
    ));
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn three_transition_series() {
        let fig = fig5(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 3);
        assert!(fig.series_by_label("transition time = 0.5 min").is_some());
        assert!(fig.series_by_label("transition time = 3 min").is_some());
    }

    #[test]
    fn shorter_transition_saves_more() {
        let fig = fig5(&tiny()).unwrap();
        let mean = |l: &str| {
            let s = fig.series_by_label(l).unwrap();
            s.y.iter().sum::<f64>() / s.y.len() as f64
        };
        let short = mean("transition time = 0.5 min");
        let long = mean("transition time = 3 min");
        assert!(
            short > long,
            "0.5 min saves {short}%, 3 min saves {long}%"
        );
    }
}
