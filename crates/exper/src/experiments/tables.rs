//! Tables I and II of the paper, rendered from the workload catalog.

use esvm_analysis::Table;
use esvm_workload::catalog;

/// Table I — the types of resource demands of VMs.
pub fn table1() -> Table {
    let mut t = Table::new(vec!["type", "class", "CPU (compute unit)", "memory (GB)"]);
    for vm in catalog::vm_types() {
        t.row(vec![
            vm.name.to_owned(),
            vm.class.to_string(),
            format!("{:.1}", vm.cpu),
            format!("{:.2}", vm.mem),
        ]);
    }
    t
}

/// Table II — the types of resource capacities and power consumption
/// parameters of servers.
pub fn table2() -> Table {
    let mut t = Table::new(vec![
        "type",
        "CPU (compute unit)",
        "memory (GB)",
        "P_idle (W)",
        "P_peak (W)",
        "P_idle/P_peak",
    ]);
    for s in catalog::server_types() {
        t.row(vec![
            s.name.to_owned(),
            format!("{:.0}", s.cpu),
            format!("{:.0}", s.mem),
            format!("{:.0}", s.p_idle),
            format!("{:.0}", s.p_peak),
            format!("{:.0}%", s.idle_fraction() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_rows() {
        let t = table1();
        assert_eq!(t.len(), 9);
        let text = t.to_string();
        assert!(text.contains("m1.small") && text.contains("memory-intensive"), "{text}");
    }

    #[test]
    fn table2_has_five_rows_with_idle_fraction() {
        let t = table2();
        assert_eq!(t.len(), 5);
        let text = t.to_string();
        assert!(text.contains("type 3") && text.contains("45%"), "{text}");
    }

    #[test]
    fn tables_render_as_csv_too() {
        assert!(table1().to_csv().starts_with("type,class"));
        assert!(table2().to_csv().contains("type 1,16,32,38,80,48%"));
    }
}
