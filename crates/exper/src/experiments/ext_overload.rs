//! Extension experiment E3 (not in the paper): behaviour under
//! overload, with admission control.
//!
//! The paper's evaluation stays in the light-load regime where every VM
//! fits somewhere. This experiment shrinks the fleet until requests
//! must be rejected and asks two questions the paper cannot answer:
//! does energy-aware placement *cost* admission capacity (it packs
//! differently — worse, more fragmented?), and how do the algorithms'
//! energy-per-served-work compare when saturated?

use super::pct;
use crate::runner::RunError;
use crate::ExpOptions;
use esvm_analysis::Table;
use esvm_core::{Ffps, Miec};
use esvm_simcore::Assignment;
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the E3 table.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadRow {
    /// Servers as a fraction of VMs (the paper uses 1/2).
    pub server_fraction: &'static str,
    /// Mean fraction of VMs admitted by MIEC (percent).
    pub miec_admitted: f64,
    /// Mean fraction of VMs admitted by FFPS (percent).
    pub ffps_admitted: f64,
    /// MIEC energy per admitted CPU·time unit (watts per CU).
    pub miec_energy_per_work: f64,
    /// FFPS energy per admitted CPU·time unit.
    pub ffps_energy_per_work: f64,
}

fn served_cpu_time(assignment: &Assignment<'_>) -> f64 {
    assignment
        .placement()
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_some())
        .map(|(j, _)| assignment.problem().vms()[j].cpu_time())
        .sum()
}

/// Runs experiment E3 and returns the raw rows.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn ext_overload_rows(opts: &ExpOptions) -> Result<Vec<OverloadRow>, RunError> {
    let vm_count = opts.scale_vms(200);
    // High arrival rate and long VMs: heavy concurrent demand. Standard
    // VM types so even a tiny fleet (which may lack type-4/5 servers)
    // yields valid instances.
    let fractions: [(&'static str, usize); 3] = [
        ("1/8", (vm_count / 8).max(1)),
        ("1/16", (vm_count / 16).max(1)),
        ("1/32", (vm_count / 32).max(1)),
    ];

    let mut rows = Vec::new();
    for (label, servers) in fractions {
        let config = WorkloadConfig::new(vm_count, servers)
            .mean_interarrival(0.25)
            .mean_duration(20.0)
            .transition_time(1.0)
            .vm_types(esvm_workload::catalog::standard_vm_types());
        let mut admitted = [0.0f64; 2];
        let mut energy_per_work = [0.0f64; 2];
        for seed in 0..opts.seeds {
            let problem = config.generate(seed)?;
            // MIEC with admission.
            let (a, rejected) = Miec::new()
                .allocate_with_admission(&problem)
                .map_err(|error| RunError::Alloc {
                    algo: esvm_core::AllocatorKind::Miec,
                    seed,
                    error,
                })?;
            admitted[0] += 1.0 - rejected.len() as f64 / problem.vm_count() as f64;
            let work = served_cpu_time(&a);
            if work > 0.0 {
                energy_per_work[0] += a.total_cost() / work;
            }
            // FFPS with admission.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
            let (a, rejected) = Ffps::new()
                .allocate_with_admission(&problem, &mut rng)
                .map_err(|error| RunError::Alloc {
                    algo: esvm_core::AllocatorKind::Ffps,
                    seed,
                    error,
                })?;
            admitted[1] += 1.0 - rejected.len() as f64 / problem.vm_count() as f64;
            let work = served_cpu_time(&a);
            if work > 0.0 {
                energy_per_work[1] += a.total_cost() / work;
            }
        }
        let n = opts.seeds as f64;
        rows.push(OverloadRow {
            server_fraction: label,
            miec_admitted: pct(admitted[0] / n),
            ffps_admitted: pct(admitted[1] / n),
            miec_energy_per_work: energy_per_work[0] / n,
            ffps_energy_per_work: energy_per_work[1] / n,
        });
    }
    Ok(rows)
}

/// Renders experiment E3 as a table.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn ext_overload(opts: &ExpOptions) -> Result<Table, RunError> {
    let rows = ext_overload_rows(opts)?;
    let mut table = Table::new(vec![
        "servers/VMs",
        "miec admitted (%)",
        "ffps admitted (%)",
        "miec energy/work",
        "ffps energy/work",
    ]);
    for r in rows {
        table.row(vec![
            r.server_fraction.to_owned(),
            format!("{:.1}", r.miec_admitted),
            format!("{:.1}", r.ffps_admitted),
            format!("{:.2}", r.miec_energy_per_work),
            format!("{:.2}", r.ffps_energy_per_work),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 2,
            quick: true,
        }
    }

    #[test]
    fn smaller_fleets_admit_less() {
        let rows = ext_overload_rows(&tiny()).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.miec_admitted), "{r:?}");
            assert!((0.0..=100.0).contains(&r.ffps_admitted), "{r:?}");
            assert!(r.miec_energy_per_work > 0.0);
        }
        assert!(
            rows[0].miec_admitted >= rows[2].miec_admitted,
            "1/8 fleet should admit at least as much as 1/32"
        );
        assert!(
            rows[2].miec_admitted < 100.0,
            "the 1/32 fleet must actually reject under this load"
        );
    }

    #[test]
    fn table_renders() {
        let t = ext_overload(&tiny()).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.to_string().contains("admitted"));
    }
}
