//! Fig. 6 — impact of the mean VM duration (2 / 5 / 10 min) on the
//! energy reduction ratio.
//!
//! Paper shape: shorter VMs → lighter, more dynamic load → FFPS wastes
//! more → MIEC saves more. The paper fits the 2-min series
//! logarithmically and the 5-/10-min series linearly.

use super::{executor, interarrival_sweep, pct, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_analysis::fit::FitKind;
use esvm_core::AllocatorKind;
use esvm_workload::WorkloadConfig;

/// Reproduces Fig. 6: 100 VMs on 50 servers, transition time 1 min, all
/// VM and server types, mean VM length ∈ {2, 5, 10} min.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig6(opts: &ExpOptions) -> Result<Figure, RunError> {
    let vm_count = opts.scale_vms(100);
    let mut figure = Figure::new(
        "Fig. 6",
        "energy reduction ratio with varying mean length of VMs",
        "mean inter-arrival time",
        "energy reduction ratio (%)",
    );
    let exec = executor(opts);

    for (mean_len, fit_kind) in [
        (2.0, FitKind::Logarithmic),
        (5.0, FitKind::Linear),
        (10.0, FitKind::Linear),
    ] {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(mean_len)
                .transition_time(1.0);
            let point = exec.compare(&config, &COMPARED)?;
            xs.push(ia);
            ys.push(pct(
                point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec),
            ));
        }
        figure.push(Series::with_fit(
            format!("mean length of time duration = {mean_len} min"),
            xs,
            ys,
            fit_kind,
        ));
    }
    figure.note(format!(
        "{vm_count} VMs on {} servers, transition time 1 min",
        vm_count / 2
    ));
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn three_duration_series() {
        let fig = fig6(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 3);
    }

    #[test]
    fn shorter_vms_save_more() {
        let fig = fig6(&tiny()).unwrap();
        let mean = |l: &str| {
            let s = fig.series_by_label(l).unwrap();
            s.y.iter().sum::<f64>() / s.y.len() as f64
        };
        let short = mean("mean length of time duration = 2 min");
        let long = mean("mean length of time duration = 10 min");
        assert!(short > long, "2 min saves {short}%, 10 min saves {long}%");
    }
}
