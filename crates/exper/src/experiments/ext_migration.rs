//! Extension experiment E1 (not in the paper): how much extra energy
//! can live-migration consolidation recover on top of allocation, and
//! how does that depend on the migration energy cost `μ`?
//!
//! Section V of the paper positions allocation *against* migration;
//! this experiment quantifies the trade-off the paper leaves open. For
//! each `μ` it compares the audited energy of MIEC and FFPS before and
//! after the [`Consolidator`](esvm_core::Consolidator) post-pass.

use super::pct;
use crate::runner::RunError;
use crate::ExpOptions;
use esvm_analysis::Table;
use esvm_core::{AllocatorKind, Consolidator};
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the E1 table.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRow {
    /// Migration energy per GB moved.
    pub mu: f64,
    /// Extra saving of MIEC + consolidation over plain MIEC (percent).
    pub miec_extra_saving: f64,
    /// Extra saving of FFPS + consolidation over plain FFPS (percent).
    pub ffps_extra_saving: f64,
    /// Mean migrations per run under MIEC + consolidation.
    pub miec_migrations: f64,
    /// Mean migrations per run under FFPS + consolidation.
    pub ffps_migrations: f64,
}

/// Runs experiment E1 and returns the raw rows.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn ext_migration_rows(opts: &ExpOptions) -> Result<Vec<MigrationRow>, RunError> {
    let vm_count = opts.scale_vms(100);
    let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
        .mean_interarrival(4.0)
        .mean_duration(5.0)
        .transition_time(1.0);

    let mut rows = Vec::new();
    for mu in [0.0, 1.0, 5.0, 20.0, 100.0] {
        let consolidator = Consolidator::new(mu);
        let mut extra = [0.0f64; 2];
        let mut migrations = [0.0f64; 2];
        let mut runs = 0u64;
        for seed in 0..opts.seeds {
            let problem = config.generate(seed)?;
            let mut ok = true;
            let mut per_algo = [(0.0, 0.0, 0.0); 2];
            for (k, algo) in [AllocatorKind::Miec, AllocatorKind::Ffps].iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(seed * 37 + k as u64);
                let Ok(base) = algo.build().allocate(&problem, &mut rng) else {
                    ok = false;
                    break;
                };
                let schedule = consolidator
                    .consolidate(&base)
                    .map_err(|error| RunError::Alloc {
                        algo: *algo,
                        seed,
                        error,
                    })?;
                let audit = schedule.audit().map_err(RunError::Audit)?;
                per_algo[k] = (base.total_cost(), audit.total_cost, audit.migrations as f64);
            }
            if !ok {
                continue; // overloaded seed, skip paired
            }
            for k in 0..2 {
                let (base, consolidated, moves) = per_algo[k];
                extra[k] += (base - consolidated) / base;
                migrations[k] += moves;
            }
            runs += 1;
        }
        if runs == 0 {
            return Err(RunError::AllSeedsOverloaded { skipped: opts.seeds });
        }
        let n = runs as f64;
        rows.push(MigrationRow {
            mu,
            miec_extra_saving: pct(extra[0] / n),
            ffps_extra_saving: pct(extra[1] / n),
            miec_migrations: migrations[0] / n,
            ffps_migrations: migrations[1] / n,
        });
    }
    Ok(rows)
}

/// Renders experiment E1 as a table.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn ext_migration(opts: &ExpOptions) -> Result<Table, RunError> {
    let rows = ext_migration_rows(opts)?;
    let mut table = Table::new(vec![
        "μ (W·min/GB)",
        "miec +consol. saving (%)",
        "ffps +consol. saving (%)",
        "miec migrations/run",
        "ffps migrations/run",
    ]);
    for r in rows {
        table.row(vec![
            format!("{:.0}", r.mu),
            format!("{:.2}", r.miec_extra_saving),
            format!("{:.2}", r.ffps_extra_saving),
            format!("{:.1}", r.miec_migrations),
            format!("{:.1}", r.ffps_migrations),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 2,
            quick: true,
        }
    }

    #[test]
    fn savings_are_nonnegative_and_decrease_with_mu() {
        let rows = ext_migration_rows(&tiny()).unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.miec_extra_saving >= -1e-9, "{r:?}");
            assert!(r.ffps_extra_saving >= -1e-9, "{r:?}");
        }
        // Cheapest μ recovers at least as much as the dearest.
        assert!(rows[0].miec_extra_saving >= rows.last().unwrap().miec_extra_saving - 1e-9);
        assert!(rows[0].miec_migrations >= rows.last().unwrap().miec_migrations - 1e-9);
    }

    #[test]
    fn table_renders() {
        let t = ext_migration(&tiny()).unwrap();
        assert_eq!(t.len(), 5);
        assert!(t.to_string().contains("migrations/run"));
    }
}
