//! Fig. 8 — utilization for standard VM types: (a) all server types,
//! (b) server types 1–3.
//!
//! Paper shape: MIEC pushes both CPU and memory utilization above ~70 %
//! in both fleets; FFPS drops to ~30 % when large servers (types 4–5)
//! are in the fleet, because first-fit parks small VMs on big machines.

use super::{executor, interarrival_sweep, pct, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_core::AllocatorKind;
use esvm_workload::{catalog, ServerType, WorkloadConfig};

/// Reproduces Fig. 8: standard VMs, 100 VMs on 50 servers, both server
/// fleets. Sub-figure (a) series are labelled `(a) …` (all server
/// types), sub-figure (b) series `(b) …` (types 1–3).
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig8(opts: &ExpOptions) -> Result<Figure, RunError> {
    let vm_count = opts.scale_vms(100);
    let mut figure = Figure::new(
        "Fig. 8",
        format!(
            "average CPU and memory utilization of servers with {vm_count} standard VMs allocated"
        ),
        "mean inter-arrival time",
        "resource utilization (%)",
    );
    let exec = executor(opts);

    let fleets: [(&str, Vec<ServerType>); 2] = [
        ("(a) all types", catalog::server_types().to_vec()),
        ("(b) types 1-3", catalog::server_types_1_3()),
    ];
    for (tag, fleet) in fleets {
        let mut xs = Vec::new();
        let mut cpu_miec = Vec::new();
        let mut mem_miec = Vec::new();
        let mut cpu_ffps = Vec::new();
        let mut mem_ffps = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(5.0)
                .transition_time(1.0)
                .vm_types(catalog::standard_vm_types())
                .server_types(fleet.clone());
            let point = exec.compare(&config, &COMPARED)?;
            xs.push(ia);
            cpu_miec.push(pct(point.mean_cpu_utilization(AllocatorKind::Miec)));
            mem_miec.push(pct(point.mean_mem_utilization(AllocatorKind::Miec)));
            cpu_ffps.push(pct(point.mean_cpu_utilization(AllocatorKind::Ffps)));
            mem_ffps.push(pct(point.mean_mem_utilization(AllocatorKind::Ffps)));
        }
        figure.push(Series::plain(
            format!("{tag} CPU utilization of MIEC"),
            xs.clone(),
            cpu_miec,
        ));
        figure.push(Series::plain(
            format!("{tag} memory utilization of MIEC"),
            xs.clone(),
            mem_miec,
        ));
        figure.push(Series::plain(
            format!("{tag} CPU utilization of FFPS"),
            xs.clone(),
            cpu_ffps,
        ));
        figure.push(Series::plain(
            format!("{tag} memory utilization of FFPS"),
            xs,
            mem_ffps,
        ));
    }
    figure.note("standard VM types; (a) = server types 1-5, (b) = server types 1-3");
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn eight_series() {
        let fig = fig8(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 8);
    }

    #[test]
    fn miec_dominates_ffps_in_both_fleets() {
        let fig = fig8(&tiny()).unwrap();
        let mean = |l: &str| {
            let s = fig.series_by_label(l).unwrap();
            s.y.iter().sum::<f64>() / s.y.len() as f64
        };
        for tag in ["(a) all types", "(b) types 1-3"] {
            assert!(
                mean(&format!("{tag} CPU utilization of MIEC"))
                    > mean(&format!("{tag} CPU utilization of FFPS")),
                "{tag}"
            );
        }
    }

    #[test]
    fn miec_utilization_is_fleet_insensitive() {
        // MIEC consolidates onto the servers it chooses, so its mean
        // utilization barely moves when the big server types 4–5 join
        // the fleet; FFPS's does. (The paper's stronger directional
        // claim — FFPS utilization *drops* with big servers present —
        // needs paper-scale statistics and does not hold at this tiny
        // scale, where first-fit instead strands many small servers.)
        let fig = fig8(&tiny()).unwrap();
        let mean = |l: &str| {
            let s = fig.series_by_label(l).unwrap();
            s.y.iter().sum::<f64>() / s.y.len() as f64
        };
        let all = mean("(a) all types CPU utilization of MIEC");
        let small = mean("(b) types 1-3 CPU utilization of MIEC");
        assert!(
            (all - small).abs() < 5.0,
            "MIEC all-types {all}% vs types-1-3 {small}%"
        );
    }
}
