//! Fig. 7 — standard VM types on server types 1–3: energy reduction
//! ratio vs mean inter-arrival time, one series per VM count,
//! logarithmic fits.
//!
//! Paper shape: with the standard-only workload MIEC saves up to ~20 %,
//! roughly twice the all-types saving of Fig. 2; the printed fits are
//! logarithmic, i.e. the ratio rises with inter-arrival time and then
//! saturates as the load becomes very light.

use super::{executor, interarrival_sweep, pct, vm_count_sweep, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_analysis::fit::FitKind;
use esvm_core::AllocatorKind;
use esvm_workload::{catalog, WorkloadConfig};

/// Reproduces Fig. 7: standard VM types only, server types 1–3 only,
/// transition time 1 min, mean length 5 min.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn fig7(opts: &ExpOptions) -> Result<Figure, RunError> {
    let mut figure = Figure::new(
        "Fig. 7",
        "energy reduction ratio of the allocation of standard types of VMs on types 1-3 of servers",
        "mean inter-arrival time",
        "energy reduction ratio (%)",
    );
    let exec = executor(opts);

    for vm_count in vm_count_sweep(opts) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(5.0)
                .transition_time(1.0)
                .vm_types(catalog::standard_vm_types())
                .server_types(catalog::server_types_1_3());
            let point = exec.compare(&config, &COMPARED)?;
            xs.push(ia);
            ys.push(pct(
                point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec),
            ));
        }
        figure.push(Series::with_fit(
            format!("{vm_count} VMs"),
            xs,
            ys,
            FitKind::Logarithmic,
        ));
    }
    figure.note("standard VM types (m1 family) on server types 1-3 only");
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn five_series_with_log_fits() {
        let fig = fig7(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 5);
        for s in &fig.series {
            assert_eq!(s.fit.expect("fit").kind, FitKind::Logarithmic);
        }
    }

    #[test]
    fn savings_are_positive() {
        let fig = fig7(&tiny()).unwrap();
        for s in &fig.series {
            let mean = s.y.iter().sum::<f64>() / s.y.len() as f64;
            assert!(mean > 0.0, "{}: mean {mean}%", s.label);
        }
    }
}
