//! Fig. 2 — energy reduction ratio vs mean inter-arrival time, one
//! series per VM count (100–500), linear fits.
//!
//! Paper shape: the ratio increases roughly linearly with the mean
//! inter-arrival time, reaching ~10 % at 10 min; the curves for
//! 100–500 VMs coincide (scalability).

use super::{executor, interarrival_sweep, pct, vm_count_sweep, COMPARED};
use crate::runner::RunError;
use crate::{ExpOptions, Figure, Series};
use esvm_analysis::fit::FitKind;
use esvm_core::AllocatorKind;
use esvm_workload::WorkloadConfig;

/// Reproduces Fig. 2: all VM types on all server types, transition time
/// 1 min, mean VM length 5 min.
///
/// # Errors
///
/// Propagates the first [`RunError`] (overload or generation failure).
pub fn fig2(opts: &ExpOptions) -> Result<Figure, RunError> {
    let mut figure = Figure::new(
        "Fig. 2",
        "energy reduction ratio of the allocation of all types of VMs on all types of servers",
        "mean inter-arrival time",
        "energy reduction ratio (%)",
    );
    let exec = executor(opts);

    for vm_count in vm_count_sweep(opts) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for ia in interarrival_sweep() {
            let config = WorkloadConfig::new(vm_count, (vm_count / 2).max(1))
                .mean_interarrival(ia)
                .mean_duration(5.0)
                .transition_time(1.0);
            let point = exec.compare(&config, &COMPARED)?;
            xs.push(ia);
            ys.push(pct(
                point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec),
            ));
        }
        figure.push(Series::with_fit(
            format!("{vm_count} VMs"),
            xs,
            ys,
            FitKind::Linear,
        ));
    }
    figure.note(format!(
        "all 9 VM types, all 5 server types, servers = VMs/2, mean length 5, transition 1, {} seeds",
        opts.seeds
    ));
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            seeds: 3,
            threads: 4,
            quick: true,
        }
    }

    #[test]
    fn produces_five_series_with_linear_fits() {
        let fig = fig2(&tiny()).unwrap();
        assert_eq!(fig.series.len(), 5);
        for s in &fig.series {
            assert_eq!(s.x.len(), interarrival_sweep().len());
            let fit = s.fit.expect("linear fit attached");
            assert_eq!(fit.kind, FitKind::Linear);
        }
    }

    #[test]
    fn saving_is_positive_at_long_interarrival() {
        let fig = fig2(&tiny()).unwrap();
        for s in &fig.series {
            let last = *s.y.last().unwrap();
            assert!(last > 0.0, "series {} ends at {last}%", s.label);
        }
    }
}
