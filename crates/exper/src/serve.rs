//! The `esvm serve` online allocation loop and its line protocol.
//!
//! A session wraps an [`OnlineEngine`] behind a newline-delimited text
//! protocol, one request per line, one reply per request:
//!
//! ```text
//! REQ <id> <start> <dur> <cpu> <mem>   →  PLACED <id> <server>
//!                                      |  REJECTED <id>
//!                                      |  ERR <code> <detail>
//! STATS                                →  STATS requests=… placed=… …
//! DRAIN                                →  DRAINED departed=<n>
//! ```
//!
//! `id`, `start` and `dur` are unsigned integers (`dur ≥ 1` time
//! units), `cpu`/`mem` finite non-negative decimals. Blank lines and
//! `#` comments are ignored without a reply. Malformed input of any
//! kind — unknown verbs, missing fields, NaN demands, negative
//! durations, overflow-scale starts — earns a typed `ERR` reply and
//! leaves the session fully usable; nothing on the wire can panic or
//! poison the engine. Every accepted `REQ` is timed and lands in the
//! [`serve.decision_us`](esvm_obs::names::serve::DECISION_US)
//! histogram, so `--metrics-out` reports p50/p95/p99 per-decision
//! latency and `--trace-out` carries the engine's `online.decision`
//! spans.
//!
//! Feeds: [`serve_lines`] drives a session from any [`BufRead`] (stdin,
//! a Unix socket, a file of `REQ` lines); [`feed_problem`] replays a
//! fully materialised problem; [`feed_records`] streams an ESVT trace
//! through [`TraceReader::records`] without materialising the VM list.
//!
//! [`TraceReader::records`]: esvm_workload::TraceReader::records

use std::fmt;
use std::io::{BufRead, Write};
use std::time::Instant;

use esvm_core::{OnlineDecision, OnlineEngine, OnlineError};
use esvm_obs::names::serve as names;
use esvm_obs::{MetricsRegistry, Tracer};
use esvm_simcore::{Interval, Resources, ServerSpec, Vm, MAX_TIME};

/// A parsed protocol line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// `REQ id start dur cpu mem` — an arrival needing a decision.
    Req(Vm),
    /// `STATS` — one-line session summary.
    Stats,
    /// `DRAIN` — depart every live VM.
    Drain,
}

/// Typed protocol failures; rendered on the wire as
/// `ERR <kebab-code> <detail>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// First word of the line is not a known verb.
    UnknownVerb(String),
    /// `REQ` had the wrong number of fields.
    FieldCount {
        /// Fields found on the line (after the verb).
        got: usize,
    },
    /// A field failed numeric validation (unparseable, NaN, negative,
    /// or beyond the representable range).
    BadNumber {
        /// Field name from the grammar.
        field: &'static str,
        /// The offending token.
        value: String,
    },
    /// `start`/`dur` describe an interval outside `[0, MAX_TIME]`.
    BadInterval {
        /// Requested start.
        start: u64,
        /// Requested duration.
        dur: u64,
    },
    /// The engine refused the event (duplicate id, time travel, …).
    Online(OnlineError),
}

impl ProtocolError {
    /// The stable kebab-case error code of the `ERR` reply.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::UnknownVerb(_) => "unknown-verb",
            ProtocolError::FieldCount { .. } => "field-count",
            ProtocolError::BadNumber { .. } => "bad-number",
            ProtocolError::BadInterval { .. } => "bad-interval",
            ProtocolError::Online(OnlineError::DuplicateVm(_)) => "duplicate-id",
            ProtocolError::Online(OnlineError::OutOfOrder { .. }) => "out-of-order",
            ProtocolError::Online(OnlineError::UnknownVm(_)) => "unknown-id",
            ProtocolError::Online(OnlineError::UnknownServer(_)) => "unknown-server",
            ProtocolError::Online(_) => "online",
        }
    }

    /// The full wire reply for this error.
    pub fn reply(&self) -> String {
        format!("ERR {} {}", self.code(), self)
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownVerb(verb) => {
                write!(f, "unknown verb {verb:?}; expected REQ, STATS or DRAIN")
            }
            ProtocolError::FieldCount { got } => {
                write!(f, "REQ needs 5 fields (id start dur cpu mem), got {got}")
            }
            ProtocolError::BadNumber { field, value } => {
                write!(f, "field {field} cannot be {value:?}")
            }
            ProtocolError::BadInterval { start, dur } => write!(
                f,
                "interval start={start} dur={dur} exceeds the horizon cap {MAX_TIME}"
            ),
            ProtocolError::Online(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn parse_u32(field: &'static str, token: &str) -> Result<u32, ProtocolError> {
    token.parse::<u32>().map_err(|_| ProtocolError::BadNumber {
        field,
        value: token.to_owned(),
    })
}

fn parse_demand(field: &'static str, token: &str) -> Result<f64, ProtocolError> {
    let v: f64 = token.parse().map_err(|_| ProtocolError::BadNumber {
        field,
        value: token.to_owned(),
    })?;
    // NaN, infinities and negatives would panic inside `Resources::new`;
    // they are protocol errors here.
    if !v.is_finite() || v < 0.0 {
        return Err(ProtocolError::BadNumber {
            field,
            value: token.to_owned(),
        });
    }
    Ok(v)
}

/// Parses one protocol line. `Ok(None)` means the line carries nothing
/// (blank or `#` comment) and deserves no reply.
pub fn parse_request(line: &str) -> Result<Option<Request>, ProtocolError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let verb = fields.next().expect("non-empty line has a first token");
    match verb {
        "STATS" => Ok(Some(Request::Stats)),
        "DRAIN" => Ok(Some(Request::Drain)),
        "REQ" => {
            let rest: Vec<&str> = fields.collect();
            if rest.len() != 5 {
                return Err(ProtocolError::FieldCount { got: rest.len() });
            }
            let id = parse_u32("id", rest[0])?;
            let start = parse_u32("start", rest[1])?;
            let dur = parse_u32("dur", rest[2])?;
            let cpu = parse_demand("cpu", rest[3])?;
            let mem = parse_demand("mem", rest[4])?;
            if dur == 0 {
                return Err(ProtocolError::BadNumber {
                    field: "dur",
                    value: rest[2].to_owned(),
                });
            }
            // `Interval::with_len` panics past the horizon cap; check
            // in u64 so `start + dur` itself cannot overflow.
            let end = start as u64 + dur as u64 - 1;
            if start as u64 > MAX_TIME as u64 || end > MAX_TIME as u64 {
                return Err(ProtocolError::BadInterval {
                    start: start as u64,
                    dur: dur as u64,
                });
            }
            Ok(Some(Request::Req(Vm::new(
                id,
                Resources::new(cpu, mem),
                Interval::with_len(start, dur),
            ))))
        }
        other => Err(ProtocolError::UnknownVerb(other.to_owned())),
    }
}

/// One online serving session: engine + instrumentation.
pub struct ServeSession<'a, T: Tracer> {
    engine: OnlineEngine,
    metrics: &'a MetricsRegistry,
    tracer: &'a T,
}

impl<'a, T: Tracer> ServeSession<'a, T> {
    /// A fresh session over `servers`, recording per-decision latency
    /// into `metrics` and decision provenance into `tracer`.
    pub fn new(servers: &[ServerSpec], metrics: &'a MetricsRegistry, tracer: &'a T) -> Self {
        Self {
            engine: OnlineEngine::new(servers),
            metrics,
            tracer,
        }
    }

    /// The engine, for post-session inspection.
    pub fn engine(&self) -> &OnlineEngine {
        &self.engine
    }

    /// Feeds one arrival through the timed decision path and returns
    /// the wire reply.
    pub fn request(&mut self, vm: Vm) -> String {
        self.metrics.add(names::REQUESTS, 1);
        let t0 = Instant::now();
        let decision = self.engine.arrive_traced(vm, self.tracer);
        self.metrics
            .observe(names::DECISION_US, t0.elapsed().as_secs_f64() * 1e6);
        match decision {
            Ok(OnlineDecision::Placed(sid)) => {
                self.metrics.add(names::PLACED, 1);
                format!("PLACED {} {}", vm.id().0, sid.0)
            }
            Ok(OnlineDecision::Rejected) => {
                self.metrics.add(names::REJECTED, 1);
                format!("REJECTED {}", vm.id().0)
            }
            Err(e) => {
                self.metrics.add(names::PROTOCOL_ERRORS, 1);
                ProtocolError::Online(e).reply()
            }
        }
    }

    /// The `STATS` reply line.
    pub fn stats_line(&self) -> String {
        let s = self.engine.stats();
        let lat = self.metrics.histogram(names::DECISION_US);
        let (mean, p50, p95, p99) = lat
            .map(|h| (h.mean(), h.p50, h.p95, h.p99))
            .unwrap_or((0.0, 0.0, 0.0, 0.0));
        format!(
            "STATS requests={} placed={} rejected={} departed={} live={} \
             mean_us={mean:.2} p50_us={p50:.2} p95_us={p95:.2} p99_us={p99:.2}",
            s.arrivals,
            s.placed,
            s.rejected,
            s.departed,
            self.engine.live_count(),
        )
    }

    /// Handles one raw protocol line. `None` = no reply owed (blank or
    /// comment line).
    pub fn handle(&mut self, line: &str) -> Option<String> {
        match parse_request(line) {
            Ok(None) => None,
            Ok(Some(Request::Req(vm))) => Some(self.request(vm)),
            Ok(Some(Request::Stats)) => Some(self.stats_line()),
            Ok(Some(Request::Drain)) => {
                let n = self.engine.drain();
                self.metrics.add(names::DEPARTED, n as u64);
                Some(format!("DRAINED departed={n}"))
            }
            Err(e) => {
                self.metrics.add(names::PROTOCOL_ERRORS, 1);
                Some(e.reply())
            }
        }
    }
}

/// Drives a session from a line stream, writing one reply per
/// non-empty line, until EOF. Protocol errors are replied to and the
/// loop continues; only transport failures end the session early.
///
/// # Errors
///
/// I/O errors from the input or output stream.
pub fn serve_lines<R: BufRead, W: Write, T: Tracer>(
    input: R,
    mut output: W,
    session: &mut ServeSession<'_, T>,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if let Some(reply) = session.handle(&line) {
            output.write_all(reply.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
    }
    Ok(())
}

/// Replays a materialised problem through the session in canonical
/// arrival order (departures fire implicitly as the clock advances).
/// Returns the replies, one per VM.
pub fn feed_problem<T: Tracer>(
    problem: &esvm_simcore::AllocationProblem,
    session: &mut ServeSession<'_, T>,
) -> Vec<String> {
    problem
        .vms_by_start_time()
        .into_iter()
        .map(|j| session.request(problem.vms()[j]))
        .collect()
}

/// Streams ESVT records straight into the session —
/// [`TraceReader::records`](esvm_workload::TraceReader::records) yields
/// VMs in (start, id) order, so the stream is already a valid event
/// feed. Returns `(placed, rejected)`.
///
/// # Errors
///
/// Stops at the first corrupt record with its
/// [`TraceError`](esvm_workload::trace::TraceError).
pub fn feed_records<R: std::io::Read + std::io::Seek, T: Tracer>(
    records: esvm_workload::esvt::Records<R>,
    session: &mut ServeSession<'_, T>,
) -> Result<(u64, u64), esvm_workload::trace::TraceError> {
    let mut placed = 0;
    let mut rejected = 0;
    for record in records {
        let reply = session.request(record?);
        if reply.starts_with("PLACED") {
            placed += 1;
        } else {
            rejected += 1;
        }
    }
    Ok((placed, rejected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_obs::NoopTracer;
    use esvm_simcore::PowerModel;

    fn fleet() -> Vec<ServerSpec> {
        (0..2u32)
            .map(|i| {
                ServerSpec::new(
                    i,
                    Resources::new(8.0, 16.0),
                    PowerModel::new(100.0, 200.0),
                    120.0,
                )
            })
            .collect()
    }

    #[test]
    fn req_round_trip() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        assert_eq!(
            session.handle("REQ 0 1 10 2.0 4.0").as_deref(),
            Some("PLACED 0 0")
        );
        assert_eq!(
            session.handle("REQ 1 1 10 8.0 16.0").as_deref(),
            Some("PLACED 1 1")
        );
        assert_eq!(
            session.handle("REQ 2 1 10 8.0 16.0").as_deref(),
            Some("REJECTED 2")
        );
        assert!(session.handle("STATS").unwrap().contains("placed=2"));
        assert_eq!(
            session.handle("DRAIN").as_deref(),
            Some("DRAINED departed=2")
        );
    }

    #[test]
    fn comments_and_blanks_get_no_reply() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        assert_eq!(session.handle(""), None);
        assert_eq!(session.handle("   "), None);
        assert_eq!(session.handle("# a comment"), None);
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_session_survives() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        for (line, code) in [
            ("FLY 1 2 3", "unknown-verb"),
            ("REQ 0 1 10", "field-count"),
            ("REQ 0 1 10 2.0 4.0 9", "field-count"),
            ("REQ x 1 10 2.0 4.0", "bad-number"),
            ("REQ 0 1 -3 2.0 4.0", "bad-number"),
            ("REQ 0 1 0 2.0 4.0", "bad-number"),
            ("REQ 0 1 10 NaN 4.0", "bad-number"),
            ("REQ 0 1 10 2.0 -1", "bad-number"),
            ("REQ 0 1 10 1e999 4.0", "bad-number"),
            ("REQ 0 99999999999 10 2.0 4.0", "bad-number"),
            ("REQ 0 4294967294 10 2.0 4.0", "bad-interval"),
        ] {
            let reply = session.handle(line).unwrap();
            assert!(
                reply.starts_with(&format!("ERR {code}")),
                "{line:?} → {reply:?}"
            );
        }
        // The session is not poisoned: a good request still works.
        assert_eq!(
            session.handle("REQ 7 1 5 1.0 1.0").as_deref(),
            Some("PLACED 7 0")
        );
        assert_eq!(metrics.counter(names::PROTOCOL_ERRORS), 11);
    }

    #[test]
    fn engine_rejections_are_typed_online_errors() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        session.handle("REQ 0 5 5 1.0 1.0");
        let dup = session.handle("REQ 0 5 5 1.0 1.0").unwrap();
        assert!(dup.starts_with("ERR duplicate-id"), "{dup}");
        let late = session.handle("REQ 1 2 5 1.0 1.0").unwrap();
        assert!(late.starts_with("ERR out-of-order"), "{late}");
    }

    #[test]
    fn serve_lines_replies_per_line() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        let input = b"REQ 0 1 10 2.0 4.0\n# comment\nSTATS\n".to_vec();
        let mut out = Vec::new();
        serve_lines(&input[..], &mut out, &mut session).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "PLACED 0 0");
        assert!(lines[1].starts_with("STATS requests=1"));
    }
}
