//! The `esvm serve` online allocation loop and its line protocol.
//!
//! A session wraps an [`OnlineEngine`] behind a newline-delimited text
//! protocol, one request per line, one reply per request:
//!
//! ```text
//! REQ <id> <start> <dur> <cpu> <mem>   →  PLACED <id> <server>
//!                                      |  REJECTED <id>
//!                                      |  ERR <code> <detail>
//! DOWN <server>                        →  DOWNED <server> evicted=… repaired=… shed=…
//! UP <server>                          →  UPPED <server>
//! STATS                                →  STATS requests=… placed=… …
//! DRAIN                                →  DRAINED departed=<n>
//! ```
//!
//! `id`, `start` and `dur` are unsigned integers (`dur ≥ 1` time
//! units), `cpu`/`mem` finite non-negative decimals — validated by the
//! *same* [`fields`] functions as the text-trace parser, so nothing
//! reachable from the wire is weaker-checked than file ingestion.
//! Blank lines and `#` comments are ignored without a reply. Malformed
//! input of any kind — unknown verbs, missing fields, NaN demands,
//! negative durations, overflow-scale starts — earns a typed `ERR`
//! reply and leaves the session fully usable; nothing on the wire can
//! panic or poison the engine. Every accepted `REQ` is timed and lands
//! in the [`serve.decision_us`](esvm_obs::names::serve::DECISION_US)
//! histogram, so `--metrics-out` reports p50/p95/p99 per-decision
//! latency and `--trace-out` carries the engine's `online.decision`
//! spans.
//!
//! ## Fault verbs and repair
//!
//! `DOWN <server>` evicts the server's live VMs and runs each through
//! the engine's chaos-style bounded-backoff
//! [`repair`](OnlineEngine::repair_traced) path (configured by
//! [`ServeConfig::max_retries`]/[`backoff`](ServeConfig::backoff));
//! `UP <server>` returns it to the argmin scan. Both reply with typed
//! `ERR unknown-server` for an out-of-fleet id and never panic, so a
//! seeded [`FaultPlan`](esvm_chaos::FaultPlan) can be drilled against
//! a *live* session ([`feed_problem_with_faults`], `esvm chaos
//! --live`) instead of only against offline replay.
//!
//! ## Overload protection
//!
//! Arrivals that land in the same time step form a burst; the session
//! admits at most [`ServeConfig::queue_cap`] of them and answers the
//! rest `ERR overloaded` ([`ServeSession::burst`]) — bounded
//! backpressure instead of unbounded queueing latency. Line-at-a-time
//! feeds ([`serve_lines`]) are naturally paced by the wire and are
//! never shed.
//!
//! ## Durability
//!
//! With a [`JournalWriter`] attached, every state-changing event
//! (admitted `REQ`, `DOWN`, `UP`, `DRAIN`, overload shed) is appended
//! to the write-ahead journal *before* it is applied and replied to;
//! [`ServeSession::replay`] reconstructs a crashed session bit-exactly
//! from the recovered records, verifying any
//! [`Checkpoint`](crate::journal::Checkpoint) snapshots along the way.
//! See the [`journal`](crate::journal) module for the format and
//! recovery rules.
//!
//! Feeds: [`serve_lines`] drives a session from any [`BufRead`] (stdin,
//! a Unix socket, a file of `REQ` lines); [`feed_problem`] replays a
//! fully materialised problem; [`feed_records`] streams an ESVT trace
//! through [`TraceReader::records`] without materialising the VM list.
//!
//! [`TraceReader::records`]: esvm_workload::TraceReader::records
//! [`fields`]: esvm_workload::trace::fields

use std::fmt;
use std::io::{BufRead, Write};
use std::time::Instant;

use esvm_chaos::{FaultEvent, FaultPlan};
use esvm_core::{OnlineDecision, OnlineEngine, OnlineError, RepairOutcome};
use esvm_obs::names::serve as names;
use esvm_obs::{MetricsRegistry, Tracer};
use esvm_simcore::{Resources, ServerId, ServerSpec, Vm, MAX_TIME};
use esvm_workload::trace::fields;

use crate::journal::{Checkpoint, JournalError, JournalRecord, JournalWriter};

/// A parsed protocol line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// `REQ id start dur cpu mem` — an arrival needing a decision.
    Req(Vm),
    /// `DOWN server` — fault injection: evict and repair.
    Down(ServerId),
    /// `UP server` — recovery: the server rejoins the argmin.
    Up(ServerId),
    /// `STATS` — one-line session summary.
    Stats,
    /// `DRAIN` — depart every live VM.
    Drain,
}

/// Typed protocol failures; rendered on the wire as
/// `ERR <kebab-code> <detail>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// First word of the line is not a known verb.
    UnknownVerb(String),
    /// A verb had the wrong number of fields.
    FieldCount {
        /// The verb.
        verb: &'static str,
        /// The grammar it expected.
        want: &'static str,
        /// Fields found on the line (after the verb).
        got: usize,
    },
    /// A field failed numeric validation (unparseable, NaN, negative,
    /// or beyond the representable range).
    BadNumber {
        /// Field name from the grammar.
        field: &'static str,
        /// The offending token.
        value: String,
    },
    /// `start`/`dur` describe an interval outside `[0, MAX_TIME]`.
    BadInterval {
        /// Requested start.
        start: u64,
        /// Requested duration.
        dur: u64,
    },
    /// The bounded admission queue is full; the request was shed.
    Overloaded {
        /// The shed request's id.
        id: u32,
        /// The queue capacity in force.
        cap: usize,
    },
    /// The write-ahead journal could not persist the event, so the
    /// event was *not* applied (the write-ahead contract).
    Journal(String),
    /// The engine refused the event (duplicate id, time travel, …).
    Online(OnlineError),
}

impl ProtocolError {
    /// The stable kebab-case error code of the `ERR` reply.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::UnknownVerb(_) => "unknown-verb",
            ProtocolError::FieldCount { .. } => "field-count",
            ProtocolError::BadNumber { .. } => "bad-number",
            ProtocolError::BadInterval { .. } => "bad-interval",
            ProtocolError::Overloaded { .. } => "overloaded",
            ProtocolError::Journal(_) => "journal-io",
            ProtocolError::Online(OnlineError::DuplicateVm(_)) => "duplicate-id",
            ProtocolError::Online(OnlineError::OutOfOrder { .. }) => "out-of-order",
            ProtocolError::Online(OnlineError::UnknownVm(_)) => "unknown-id",
            ProtocolError::Online(OnlineError::UnknownServer(_)) => "unknown-server",
            ProtocolError::Online(_) => "online",
        }
    }

    /// The full wire reply for this error.
    pub fn reply(&self) -> String {
        format!("ERR {} {}", self.code(), self)
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownVerb(verb) => {
                write!(
                    f,
                    "unknown verb {verb:?}; expected REQ, DOWN, UP, STATS or DRAIN"
                )
            }
            ProtocolError::FieldCount { verb, want, got } => {
                write!(f, "{verb} needs {want}, got {got}")
            }
            ProtocolError::BadNumber { field, value } => {
                write!(f, "field {field} cannot be {value:?}")
            }
            ProtocolError::BadInterval { start, dur } => write!(
                f,
                "interval start={start} dur={dur} exceeds the horizon cap {MAX_TIME}"
            ),
            ProtocolError::Overloaded { id, cap } => {
                write!(f, "admission queue full (cap {cap}); request {id} shed")
            }
            ProtocolError::Journal(e) => write!(f, "event not journaled, not applied: {e}"),
            ProtocolError::Online(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn parse_u32(field: &'static str, token: &str) -> Result<u32, ProtocolError> {
    fields::parse_u32(field, token).map_err(|e| ProtocolError::BadNumber {
        field: e.field,
        value: e.value,
    })
}

fn parse_demand(field: &'static str, token: &str) -> Result<f64, ProtocolError> {
    fields::parse_demand(field, token).map_err(|e| ProtocolError::BadNumber {
        field: e.field,
        value: e.value,
    })
}

/// Parses one protocol line. `Ok(None)` means the line carries nothing
/// (blank or `#` comment) and deserves no reply.
pub fn parse_request(line: &str) -> Result<Option<Request>, ProtocolError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().expect("non-empty line has a first token");
    match verb {
        "STATS" => Ok(Some(Request::Stats)),
        "DRAIN" => Ok(Some(Request::Drain)),
        "DOWN" | "UP" => {
            let rest: Vec<&str> = tokens.collect();
            if rest.len() != 1 {
                return Err(ProtocolError::FieldCount {
                    verb: if verb == "DOWN" { "DOWN" } else { "UP" },
                    want: "1 field (server)",
                    got: rest.len(),
                });
            }
            let server = ServerId(parse_u32("server", rest[0])?);
            Ok(Some(if verb == "DOWN" {
                Request::Down(server)
            } else {
                Request::Up(server)
            }))
        }
        "REQ" => {
            let rest: Vec<&str> = tokens.collect();
            if rest.len() != 5 {
                return Err(ProtocolError::FieldCount {
                    verb: "REQ",
                    want: "5 fields (id start dur cpu mem)",
                    got: rest.len(),
                });
            }
            let id = parse_u32("id", rest[0])?;
            let start = parse_u32("start", rest[1])?;
            let dur = parse_u32("dur", rest[2])?;
            let cpu = parse_demand("cpu", rest[3])?;
            let mem = parse_demand("mem", rest[4])?;
            if dur == 0 {
                return Err(ProtocolError::BadNumber {
                    field: "dur",
                    value: rest[2].to_owned(),
                });
            }
            // Check in u64 so `start + dur` itself cannot overflow,
            // then the shared interval validator seals the invariants
            // `Interval::new` would otherwise assert.
            let end = start as u64 + dur as u64 - 1;
            if end > MAX_TIME as u64 {
                return Err(ProtocolError::BadInterval {
                    start: start as u64,
                    dur: dur as u64,
                });
            }
            let interval =
                fields::checked_interval(start, end as u32).map_err(|e| ProtocolError::BadNumber {
                    field: e.field,
                    value: e.value,
                })?;
            Ok(Some(Request::Req(Vm::new(
                id,
                Resources::new(cpu, mem),
                interval,
            ))))
        }
        other => Err(ProtocolError::UnknownVerb(other.to_owned())),
    }
}

/// Session knobs beyond the fleet: overload and repair behaviour.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Arrivals admitted per simultaneous burst before `ERR
    /// overloaded` shedding kicks in ([`ServeSession::burst`]).
    /// `usize::MAX` (the default) never sheds.
    pub queue_cap: usize,
    /// Repair retries after the immediate re-place attempt for each
    /// VM evicted by a `DOWN` verb.
    pub max_retries: u32,
    /// Base backoff (time units) of the exponential retry schedule.
    pub backoff: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_cap: usize::MAX,
            max_retries: 3,
            backoff: 2,
        }
    }
}

/// Tallies of one [`ServeSession::replay`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records applied in total.
    pub records: usize,
    /// `REQ` records re-decided.
    pub requests: u64,
    /// `DOWN`/`UP` records re-applied.
    pub faults: u64,
    /// Overload sheds restored (counter only; the engine never saw
    /// them).
    pub sheds: u64,
    /// Checkpoint records verified against the replayed state.
    pub checkpoints: u64,
}

/// Tallies of one live fault drill ([`feed_problem_with_faults`]).
#[derive(Debug, Clone, Default)]
pub struct DrillReport {
    /// One wire reply per arrival and per fault event, in feed order.
    pub replies: Vec<String>,
    /// `DOWN` events applied.
    pub downs: u64,
    /// `UP` events applied.
    pub ups: u64,
}

/// One online serving session: engine + instrumentation + durability.
pub struct ServeSession<'a, T: Tracer> {
    engine: OnlineEngine,
    metrics: &'a MetricsRegistry,
    tracer: &'a T,
    config: ServeConfig,
    journal: Option<JournalWriter>,
    /// (appends, fsyncs) already mirrored into the metric counters.
    journal_counted: (u64, u64),
}

impl<'a, T: Tracer> ServeSession<'a, T> {
    /// A fresh session over `servers`, recording per-decision latency
    /// into `metrics` and decision provenance into `tracer`.
    pub fn new(servers: &[ServerSpec], metrics: &'a MetricsRegistry, tracer: &'a T) -> Self {
        Self {
            engine: OnlineEngine::new(servers),
            metrics,
            tracer,
            config: ServeConfig::default(),
            journal: None,
            journal_counted: (0, 0),
        }
    }

    /// Replaces the session knobs (builder style).
    pub fn with_config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// The session knobs in force.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Attaches (or detaches) the write-ahead journal. Subsequent
    /// state-changing events are journaled before they are applied.
    pub fn set_journal(&mut self, journal: Option<JournalWriter>) {
        self.journal_counted = journal
            .as_ref()
            .map(|w| (w.appends(), w.fsyncs()))
            .unwrap_or((0, 0));
        self.journal = journal;
    }

    /// The engine, for post-session inspection.
    pub fn engine(&self) -> &OnlineEngine {
        &self.engine
    }

    /// Appends to the journal (no-op when none is attached). The
    /// writer's append/fsync counters are mirrored into the metrics
    /// registry only when a durability barrier fires — per-append
    /// registry lookups would tax every decision; at group-commit
    /// boundaries (and at [`finish`](Self::finish)) the counters are
    /// exact.
    fn journal_append(&mut self, record: &JournalRecord) -> Result<(), ProtocolError> {
        let Some(w) = self.journal.as_mut() else {
            return Ok(());
        };
        w.append(record)
            .map_err(|e| ProtocolError::Journal(e.to_string()))?;
        if w.fsyncs() != self.journal_counted.1 {
            let counted = (w.appends(), w.fsyncs());
            self.metrics
                .add(names::JOURNAL_APPENDS, counted.0 - self.journal_counted.0);
            self.metrics
                .add(names::JOURNAL_FSYNCS, counted.1 - self.journal_counted.1);
            self.journal_counted = counted;
        }
        Ok(())
    }

    /// The engine-state snapshot a graceful shutdown journals.
    fn checkpoint(&self) -> Checkpoint {
        let s = self.engine.stats();
        Checkpoint {
            clock: self.engine.clock(),
            live: self.engine.live_count() as u64,
            placed: s.placed,
            rejected: s.rejected,
            departed: s.departed,
            evicted: s.evicted,
            repaired: s.repaired,
            committed_cost_bits: self.engine.committed_cost().to_bits(),
            retired_cost_bits: self.engine.retired_cost().to_bits(),
        }
    }

    /// Graceful shutdown: journals a final checkpoint record and
    /// fsyncs, so a restart can verify the recovered state bit-exactly.
    /// No-op without a journal.
    ///
    /// # Errors
    ///
    /// I/O errors from the journal append or sync.
    pub fn finish(&mut self) -> std::io::Result<()> {
        let record = JournalRecord::Checkpoint(self.checkpoint());
        if let Some(w) = self.journal.as_mut() {
            w.append(&record)?;
            w.sync()?;
            let counted = (w.appends(), w.fsyncs());
            self.metrics
                .add(names::JOURNAL_APPENDS, counted.0 - self.journal_counted.0);
            self.metrics
                .add(names::JOURNAL_FSYNCS, counted.1 - self.journal_counted.1);
            self.journal_counted = counted;
        }
        Ok(())
    }

    /// Feeds one arrival through the journaled, timed decision path
    /// and returns the wire reply.
    pub fn request(&mut self, vm: Vm) -> String {
        if let Err(e) = self.journal_append(&JournalRecord::Req(vm)) {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return e.reply();
        }
        self.request_inner(vm)
    }

    /// The decision path proper, shared by live requests (after the
    /// journal append) and [`replay`](Self::replay) (which must not
    /// re-journal).
    fn request_inner(&mut self, vm: Vm) -> String {
        self.metrics.add(names::REQUESTS, 1);
        let t0 = Instant::now();
        let decision = self.engine.arrive_traced(vm, self.tracer);
        self.metrics
            .observe(names::DECISION_US, t0.elapsed().as_secs_f64() * 1e6);
        match decision {
            Ok(OnlineDecision::Placed(sid)) => {
                self.metrics.add(names::PLACED, 1);
                format!("PLACED {} {}", vm.id().0, sid.0)
            }
            Ok(OnlineDecision::Rejected) => {
                self.metrics.add(names::REJECTED, 1);
                format!("REJECTED {}", vm.id().0)
            }
            Err(e) => {
                self.metrics.add(names::PROTOCOL_ERRORS, 1);
                ProtocolError::Online(e).reply()
            }
        }
    }

    /// Sheds one request from a full admission queue: journaled (the
    /// reply promises the engine never saw it, and recovery must keep
    /// that promise), counted, answered `ERR overloaded`.
    fn shed(&mut self, vm: Vm) -> String {
        if let Err(e) = self.journal_append(&JournalRecord::Shed(vm.id())) {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return e.reply();
        }
        self.metrics.add(names::OVERLOADED, 1);
        ProtocolError::Overloaded {
            id: vm.id().0,
            cap: self.config.queue_cap,
        }
        .reply()
    }

    /// Feeds a burst of simultaneous arrivals through the bounded
    /// admission queue: the first [`ServeConfig::queue_cap`] are
    /// admitted in order, the rest are shed with `ERR overloaded`.
    /// Returns one reply per input, in input order.
    pub fn burst(&mut self, vms: impl IntoIterator<Item = Vm>) -> Vec<String> {
        let cap = self.config.queue_cap;
        vms.into_iter()
            .enumerate()
            .map(|(i, vm)| {
                if i < cap {
                    self.request(vm)
                } else {
                    self.shed(vm)
                }
            })
            .collect()
    }

    /// Applies a `DOWN` fault: journal, evict, repair each victim
    /// through the bounded-backoff path, reply.
    pub fn fault_down(&mut self, server: ServerId) -> String {
        if server.index() >= self.engine.ledgers().len() {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return ProtocolError::Online(OnlineError::UnknownServer(server)).reply();
        }
        let (retries, backoff) = (self.config.max_retries, self.config.backoff);
        if let Err(e) = self.journal_append(&JournalRecord::Down {
            server,
            retries,
            backoff,
        }) {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return e.reply();
        }
        let (evicted, repaired, shed) = self.apply_down(server, retries, backoff);
        format!(
            "DOWNED {} evicted={evicted} repaired={repaired} shed={shed}",
            server.0
        )
    }

    /// Applies an `UP` recovery: journal, restore, reply.
    pub fn fault_up(&mut self, server: ServerId) -> String {
        if server.index() >= self.engine.ledgers().len() {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return ProtocolError::Online(OnlineError::UnknownServer(server)).reply();
        }
        if let Err(e) = self.journal_append(&JournalRecord::Up(server)) {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return e.reply();
        }
        let _ = self.engine.set_up(server);
        format!("UPPED {}", server.0)
    }

    /// Eviction + repair, shared by the live verb (after journaling)
    /// and replay. The recorded policy travels with the journal record
    /// so replay repairs on the schedule in force at write time.
    fn apply_down(&mut self, server: ServerId, retries: u32, backoff: u32) -> (u64, u64, u64) {
        let victims = match self.engine.set_down(server) {
            Ok(v) => v,
            // Pre-validated by the caller; an unknown server here
            // means a hand-edited journal — nothing to evict.
            Err(_) => return (0, 0, 0),
        };
        self.metrics.add(names::EVICTED, victims.len() as u64);
        let (mut repaired, mut shed) = (0u64, 0u64);
        for vm in &victims {
            match self.engine.repair_traced(*vm, retries, backoff, self.tracer) {
                RepairOutcome::Rehosted { .. } => repaired += 1,
                RepairOutcome::Shed => shed += 1,
            }
        }
        (victims.len() as u64, repaired, shed)
    }

    /// Replays recovered journal records through the engine,
    /// reconstructing the crashed session's state bit-exactly (the
    /// engine is deterministic, and every decision input is in the
    /// log). Checkpoint records are verified field-by-field — costs by
    /// `f64::to_bits` — against the replayed state; a mismatch is a
    /// typed [`JournalError::CheckpointMismatch`].
    ///
    /// An attached journal is suspended for the duration so replay
    /// never re-journals its own input.
    ///
    /// # Errors
    ///
    /// [`JournalError::CorruptRecord`] for a record the live session
    /// could never have written (e.g. a fault verb naming a server
    /// outside the fleet), or a checkpoint mismatch as above.
    pub fn replay(&mut self, records: &[JournalRecord]) -> Result<ReplayReport, JournalError> {
        let suspended = self.journal.take();
        let result = self.replay_inner(records);
        self.journal = suspended;
        result
    }

    fn replay_inner(&mut self, records: &[JournalRecord]) -> Result<ReplayReport, JournalError> {
        let mut report = ReplayReport::default();
        for (index, record) in records.iter().enumerate() {
            report.records += 1;
            match record {
                JournalRecord::Req(vm) => {
                    // Rejections (duplicate id, out-of-order) replay to
                    // the identical rejection: the reply is dropped but
                    // the state transition is the same.
                    let _ = self.request_inner(*vm);
                    report.requests += 1;
                }
                JournalRecord::Drain => {
                    let n = self.engine.drain();
                    self.metrics.add(names::DEPARTED, n as u64);
                }
                JournalRecord::Down {
                    server,
                    retries,
                    backoff,
                } => {
                    if server.index() >= self.engine.ledgers().len() {
                        return Err(JournalError::CorruptRecord {
                            index,
                            reason: format!("DOWN names server {} outside the fleet", server.0),
                        });
                    }
                    self.apply_down(*server, *retries, *backoff);
                    report.faults += 1;
                }
                JournalRecord::Up(server) => {
                    self.engine.set_up(*server).map_err(|e| {
                        JournalError::CorruptRecord {
                            index,
                            reason: e.to_string(),
                        }
                    })?;
                    report.faults += 1;
                }
                JournalRecord::Shed(_) => {
                    self.metrics.add(names::OVERLOADED, 1);
                    report.sheds += 1;
                }
                JournalRecord::Checkpoint(c) => {
                    self.verify_checkpoint(c)?;
                    report.checkpoints += 1;
                }
            }
        }
        Ok(report)
    }

    fn verify_checkpoint(&self, c: &Checkpoint) -> Result<(), JournalError> {
        let replayed = self.checkpoint();
        let fields: [(&'static str, u64, u64); 9] = [
            ("clock", c.clock as u64, replayed.clock as u64),
            ("live", c.live, replayed.live),
            ("placed", c.placed, replayed.placed),
            ("rejected", c.rejected, replayed.rejected),
            ("departed", c.departed, replayed.departed),
            ("evicted", c.evicted, replayed.evicted),
            ("repaired", c.repaired, replayed.repaired),
            (
                "committed_cost",
                c.committed_cost_bits,
                replayed.committed_cost_bits,
            ),
            (
                "retired_cost",
                c.retired_cost_bits,
                replayed.retired_cost_bits,
            ),
        ];
        for (field, journal, replayed) in fields {
            if journal != replayed {
                return Err(JournalError::CheckpointMismatch {
                    field,
                    journal,
                    replayed,
                });
            }
        }
        Ok(())
    }

    /// The `STATS` reply line.
    pub fn stats_line(&self) -> String {
        let s = self.engine.stats();
        let lat = self.metrics.histogram(names::DECISION_US);
        let (mean, p50, p95, p99) = lat
            .map(|h| (h.mean(), h.p50, h.p95, h.p99))
            .unwrap_or((0.0, 0.0, 0.0, 0.0));
        format!(
            "STATS requests={} placed={} rejected={} departed={} evicted={} repaired={} \
             overloaded={} live={} mean_us={mean:.2} p50_us={p50:.2} p95_us={p95:.2} \
             p99_us={p99:.2}",
            s.arrivals,
            s.placed,
            s.rejected,
            s.departed,
            s.evicted,
            s.repaired,
            self.metrics.counter(names::OVERLOADED),
            self.engine.live_count(),
        )
    }

    /// Handles one raw protocol line. `None` = no reply owed (blank or
    /// comment line).
    pub fn handle(&mut self, line: &str) -> Option<String> {
        match parse_request(line) {
            Ok(None) => None,
            Ok(Some(Request::Req(vm))) => Some(self.request(vm)),
            Ok(Some(Request::Down(server))) => Some(self.fault_down(server)),
            Ok(Some(Request::Up(server))) => Some(self.fault_up(server)),
            Ok(Some(Request::Stats)) => Some(self.stats_line()),
            Ok(Some(Request::Drain)) => Some(self.drain()),
            Err(e) => {
                self.metrics.add(names::PROTOCOL_ERRORS, 1);
                Some(e.reply())
            }
        }
    }

    /// The `DRAIN` verb: journal, depart every live VM, then journal a
    /// verified checkpoint and fsync — the graceful-shutdown barrier.
    pub fn drain(&mut self) -> String {
        if let Err(e) = self.journal_append(&JournalRecord::Drain) {
            self.metrics.add(names::PROTOCOL_ERRORS, 1);
            return e.reply();
        }
        let n = self.engine.drain();
        self.metrics.add(names::DEPARTED, n as u64);
        if self.finish().is_err() {
            // The drain itself is applied and journaled; only the
            // checkpoint barrier failed. Recovery still works from the
            // Drain record, so reply with the count plus a warning.
            return format!("DRAINED departed={n} journal=unsynced");
        }
        format!("DRAINED departed={n}")
    }
}

/// Drives a session from a line stream, writing one reply per
/// non-empty line, until EOF. Protocol errors are replied to and the
/// loop continues; only transport failures end the session early.
///
/// # Errors
///
/// I/O errors from the input or output stream.
pub fn serve_lines<R: BufRead, W: Write, T: Tracer>(
    input: R,
    mut output: W,
    session: &mut ServeSession<'_, T>,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if let Some(reply) = session.handle(&line) {
            output.write_all(reply.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
    }
    Ok(())
}

/// Replays a materialised problem through the session in canonical
/// arrival order (departures fire implicitly as the clock advances).
/// Arrivals sharing a start time form one admission burst (see
/// [`ServeSession::burst`]). Returns the replies, one per VM.
pub fn feed_problem<T: Tracer>(
    problem: &esvm_simcore::AllocationProblem,
    session: &mut ServeSession<'_, T>,
) -> Vec<String> {
    let vms = problem.vms();
    let order = problem.vms_by_start_time();
    let mut replies = Vec::with_capacity(order.len());
    let mut i = 0;
    while i < order.len() {
        let start = vms[order[i]].start();
        let mut j = i;
        while j < order.len() && vms[order[j]].start() == start {
            j += 1;
        }
        replies.extend(session.burst(order[i..j].iter().map(|&k| vms[k])));
        i = j;
    }
    replies
}

/// Replays a problem through the session with a [`FaultPlan`] striking
/// live: before each arrival burst at time `t`, every plan event with
/// `at ≤ t` is applied through the session's fault verbs (evictions,
/// bounded-backoff repair, journal and all); trailing events fire
/// after the last arrival. This is `esvm chaos --live` — the drill
/// runs against the real service loop, not an offline replay.
pub fn feed_problem_with_faults<T: Tracer>(
    problem: &esvm_simcore::AllocationProblem,
    plan: &FaultPlan,
    session: &mut ServeSession<'_, T>,
) -> DrillReport {
    let vms = problem.vms();
    let order = problem.vms_by_start_time();
    let mut cursor = plan.cursor();
    let mut report = DrillReport::default();
    let mut i = 0;
    loop {
        let events = if i < order.len() {
            cursor.take_until(vms[order[i]].start())
        } else {
            cursor.rest()
        };
        for event in events {
            match event {
                FaultEvent::ServerDown { server, .. } => {
                    report.replies.push(session.fault_down(*server));
                    report.downs += 1;
                }
                FaultEvent::ServerUp { server, .. } => {
                    report.replies.push(session.fault_up(*server));
                    report.ups += 1;
                }
            }
        }
        if i >= order.len() {
            break;
        }
        let start = vms[order[i]].start();
        let mut j = i;
        while j < order.len() && vms[order[j]].start() == start {
            j += 1;
        }
        report
            .replies
            .extend(session.burst(order[i..j].iter().map(|&k| vms[k])));
        i = j;
    }
    report
}

/// Streams ESVT records straight into the session —
/// [`TraceReader::records`](esvm_workload::TraceReader::records) yields
/// VMs in (start, id) order, so the stream is already a valid event
/// feed; consecutive same-start records form one admission burst.
/// Returns `(placed, rejected)` (overload sheds count via the
/// [`serve.overloaded`](esvm_obs::names::serve::OVERLOADED) counter).
///
/// # Errors
///
/// Stops at the first corrupt record with its
/// [`TraceError`](esvm_workload::trace::TraceError).
pub fn feed_records<R: std::io::Read + std::io::Seek, T: Tracer>(
    records: esvm_workload::esvt::Records<R>,
    session: &mut ServeSession<'_, T>,
) -> Result<(u64, u64), esvm_workload::trace::TraceError> {
    let mut placed = 0;
    let mut rejected = 0;
    let mut batch: Vec<Vm> = Vec::new();
    let mut tally = |replies: Vec<String>| {
        for reply in replies {
            if reply.starts_with("PLACED") {
                placed += 1;
            } else if reply.starts_with("REJECTED") {
                rejected += 1;
            }
        }
    };
    for record in records {
        let vm = record?;
        if batch.last().is_some_and(|prev| prev.start() != vm.start()) {
            tally(session.burst(batch.drain(..)));
        }
        batch.push(vm);
    }
    if !batch.is_empty() {
        tally(session.burst(batch.drain(..)));
    }
    Ok((placed, rejected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_obs::NoopTracer;
    use esvm_simcore::PowerModel;

    fn fleet() -> Vec<ServerSpec> {
        (0..2u32)
            .map(|i| {
                ServerSpec::new(
                    i,
                    Resources::new(8.0, 16.0),
                    PowerModel::new(100.0, 200.0),
                    120.0,
                )
            })
            .collect()
    }

    #[test]
    fn req_round_trip() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        assert_eq!(
            session.handle("REQ 0 1 10 2.0 4.0").as_deref(),
            Some("PLACED 0 0")
        );
        assert_eq!(
            session.handle("REQ 1 1 10 8.0 16.0").as_deref(),
            Some("PLACED 1 1")
        );
        assert_eq!(
            session.handle("REQ 2 1 10 8.0 16.0").as_deref(),
            Some("REJECTED 2")
        );
        assert!(session.handle("STATS").unwrap().contains("placed=2"));
        assert_eq!(
            session.handle("DRAIN").as_deref(),
            Some("DRAINED departed=2")
        );
    }

    #[test]
    fn comments_and_blanks_get_no_reply() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        assert_eq!(session.handle(""), None);
        assert_eq!(session.handle("   "), None);
        assert_eq!(session.handle("# a comment"), None);
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_session_survives() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        for (line, code) in [
            ("FLY 1 2 3", "unknown-verb"),
            ("REQ 0 1 10", "field-count"),
            ("REQ 0 1 10 2.0 4.0 9", "field-count"),
            ("REQ x 1 10 2.0 4.0", "bad-number"),
            ("REQ 0 1 -3 2.0 4.0", "bad-number"),
            ("REQ 0 1 0 2.0 4.0", "bad-number"),
            ("REQ 0 1 10 NaN 4.0", "bad-number"),
            ("REQ 0 1 10 2.0 -1", "bad-number"),
            ("REQ 0 1 10 1e999 4.0", "bad-number"),
            ("REQ 0 99999999999 10 2.0 4.0", "bad-number"),
            ("REQ 0 4294967294 10 2.0 4.0", "bad-interval"),
            ("DOWN", "field-count"),
            ("DOWN 0 1", "field-count"),
            ("DOWN x", "bad-number"),
            ("UP -1", "bad-number"),
            ("DOWN 99", "unknown-server"),
            ("UP 99", "unknown-server"),
        ] {
            let reply = session.handle(line).unwrap();
            assert!(
                reply.starts_with(&format!("ERR {code}")),
                "{line:?} → {reply:?}"
            );
        }
        // The session is not poisoned: a good request still works.
        assert_eq!(
            session.handle("REQ 7 1 5 1.0 1.0").as_deref(),
            Some("PLACED 7 0")
        );
        assert_eq!(metrics.counter(names::PROTOCOL_ERRORS), 17);
    }

    #[test]
    fn engine_rejections_are_typed_online_errors() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        session.handle("REQ 0 5 5 1.0 1.0");
        let dup = session.handle("REQ 0 5 5 1.0 1.0").unwrap();
        assert!(dup.starts_with("ERR duplicate-id"), "{dup}");
        let late = session.handle("REQ 1 2 5 1.0 1.0").unwrap();
        assert!(late.starts_with("ERR out-of-order"), "{late}");
    }

    #[test]
    fn down_evicts_and_repairs_up_restores() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        assert_eq!(
            session.handle("REQ 0 1 10 8.0 16.0").as_deref(),
            Some("PLACED 0 0")
        );
        // Server 1 is free, so the evicted VM repairs immediately.
        assert_eq!(
            session.handle("DOWN 0").as_deref(),
            Some("DOWNED 0 evicted=1 repaired=1 shed=0")
        );
        assert_eq!(metrics.counter(names::EVICTED), 1);
        // Server 1 also goes down: the VM is evicted again and the
        // repair has nowhere to go within the backoff budget.
        assert_eq!(
            session.handle("DOWN 1").as_deref(),
            Some("DOWNED 1 evicted=1 repaired=0 shed=1")
        );
        assert_eq!(session.handle("UP 0").as_deref(), Some("UPPED 0"));
        assert_eq!(
            session.handle("REQ 1 2 5 1.0 1.0").as_deref(),
            Some("PLACED 1 0")
        );
        let stats = session.handle("STATS").unwrap();
        assert!(stats.contains("evicted=2"), "{stats}");
        assert!(stats.contains("repaired=1"), "{stats}");
    }

    #[test]
    fn bursts_shed_past_the_queue_cap() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer).with_config(
            ServeConfig {
                queue_cap: 2,
                ..ServeConfig::default()
            },
        );
        let vms: Vec<Vm> = (0..4u32)
            .map(|i| {
                Vm::new(
                    i,
                    Resources::new(1.0, 1.0),
                    esvm_simcore::Interval::new(1, 5),
                )
            })
            .collect();
        let replies = session.burst(vms);
        assert_eq!(replies.len(), 4);
        assert!(replies[0].starts_with("PLACED"));
        assert!(replies[1].starts_with("PLACED"));
        assert!(replies[2].starts_with("ERR overloaded"), "{}", replies[2]);
        assert!(replies[3].starts_with("ERR overloaded"), "{}", replies[3]);
        assert_eq!(metrics.counter(names::OVERLOADED), 2);
        // Shed ids are NOT consumed: the engine never saw them, so a
        // calmer moment can admit them.
        let retry = session.handle("REQ 2 2 4 1.0 1.0").unwrap();
        assert!(retry.starts_with("PLACED 2"), "{retry}");
    }

    #[test]
    fn serve_lines_replies_per_line() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        let input = b"REQ 0 1 10 2.0 4.0\n# comment\nSTATS\n".to_vec();
        let mut out = Vec::new();
        serve_lines(&input[..], &mut out, &mut session).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "PLACED 0 0");
        assert!(lines[1].starts_with("STATS requests=1"));
    }

    #[test]
    fn journaled_session_recovers_bit_exactly() {
        let path = std::env::temp_dir().join("esvj_serve_recover.wal");
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        session.set_journal(Some(JournalWriter::create(&path, &servers, 0).unwrap()));
        for line in [
            "REQ 0 1 10 2.0 4.0",
            "REQ 1 1 10 8.0 16.0",
            "REQ 1 1 10 1.0 1.0", // duplicate: journaled, rejected
            "DOWN 1",
            "REQ 2 3 4 1.0 1.0",
            "UP 1",
            "REQ 3 4 4 4.0 4.0",
        ] {
            session.handle(line);
        }
        session.finish().unwrap();
        let want_placements = session.engine().placement(8);
        let want_cost = session.engine().committed_cost().to_bits();

        let rec = crate::journal::recover_file(&path).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        let metrics2 = MetricsRegistry::new();
        let mut restored = ServeSession::new(&rec.servers, &metrics2, &NoopTracer);
        let report = restored.replay(&rec.records).unwrap();
        assert_eq!(report.requests, 5);
        assert_eq!(report.faults, 2);
        assert_eq!(report.checkpoints, 1);
        assert_eq!(restored.engine().placement(8), want_placements);
        assert_eq!(restored.engine().committed_cost().to_bits(), want_cost);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_checkpoint_is_a_typed_mismatch() {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
        let records = [
            JournalRecord::Req(Vm::new(
                0,
                Resources::new(1.0, 1.0),
                esvm_simcore::Interval::new(1, 5),
            )),
            JournalRecord::Checkpoint(Checkpoint {
                clock: 1,
                live: 1,
                placed: 2, // lie: only one placement happened
                rejected: 0,
                departed: 0,
                evicted: 0,
                repaired: 0,
                committed_cost_bits: 0,
                retired_cost_bits: 0,
            }),
        ];
        let err = session.replay(&records).unwrap_err();
        assert!(
            matches!(err, JournalError::CheckpointMismatch { field: "placed", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn live_fault_drill_conserves_energy() {
        use esvm_workload::WorkloadConfig;
        let problem = WorkloadConfig::new(40, 8)
            .mean_interarrival(1.5)
            .generate(11)
            .expect("feasible");
        let horizon = problem.stats().horizon;
        let plan = FaultPlan::generate(
            &esvm_chaos::FaultPlanConfig::with_fault_rate(0.5),
            problem.server_count(),
            horizon,
            13,
        );
        let metrics = MetricsRegistry::new();
        let mut session = ServeSession::new(problem.servers(), &metrics, &NoopTracer);
        let report = feed_problem_with_faults(&problem, &plan, &mut session);
        assert_eq!(report.downs + report.ups, plan.events().len() as u64);
        assert_eq!(
            report.replies.len(),
            problem.vm_count() + plan.events().len()
        );
        for reply in &report.replies {
            assert!(!reply.starts_with("ERR unknown-server"), "{reply}");
        }
        // Eq. 7 conservation after the whole drill: every ledger's
        // decomposition matches its cost, and committed = retired +
        // live exactly.
        let engine = session.engine();
        let mut live = 0.0;
        for ledger in engine.ledgers() {
            let cost = ledger.cost();
            let breakdown = ledger.energy_breakdown().total();
            assert!(
                (cost - breakdown).abs() <= 1e-6 * cost.abs().max(1.0),
                "{cost} vs {breakdown}"
            );
            live += cost;
        }
        let recomputed = engine.retired_cost() + live;
        assert_eq!(
            engine.committed_cost().to_bits(),
            recomputed.to_bits(),
            "telescoping invariant"
        );
    }
}
