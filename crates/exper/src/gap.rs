//! The online/offline optimality gap (`esvm gap`).
//!
//! Runs the same instance through the online engine
//! ([`OnlineGreedy`]) and offline MIEC, and reports the empirical
//! competitive ratio per seed — the evaluation lens of Albers &
//! Quedenfeld's online right-sizing papers.
//!
//! Both heuristics are compared by the identical full-horizon Eq. 7
//! functional (the audited [`Assignment`](esvm_simcore::Assignment)
//! cost). Because *both* are heuristics, raw `online / miec` is not
//! guaranteed ≥ 1; the denominator is therefore the **offline best**:
//! the cheaper of offline MIEC and the online assignment refined by
//! [`LocalSearch`]. Local search only ever accepts improving moves, so
//! `refined ≤ online` holds by construction and the reported ratio is
//! ≥ 1 up to floating-point rounding — any offline strengthening can
//! only push it further up.

use esvm_core::{AllocResult, Allocator, LocalSearch, Miec, OnlineGreedy};
use esvm_simcore::AllocationProblem;
use rand::{rngs::StdRng, SeedableRng};

/// One seed's gap measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapRow {
    /// The workload seed.
    pub seed: u64,
    /// Online cost: irrevocable decisions at arrival.
    pub online_cost: f64,
    /// Offline MIEC cost on the fully-known trace.
    pub offline_miec_cost: f64,
    /// The online assignment after offline local-search refinement
    /// (guaranteed ≤ `online_cost`).
    pub refined_online_cost: f64,
    /// `min(offline_miec_cost, refined_online_cost)` — the denominator.
    pub offline_best_cost: f64,
    /// The empirical competitive ratio
    /// `online_cost / offline_best_cost` (≥ 1 up to FP rounding).
    pub ratio: f64,
}

/// Measures the gap on one instance.
///
/// # Errors
///
/// Propagates allocation failure from either side (e.g. an infeasible
/// instance); the caller decides whether to skip or abort.
pub fn gap_row(problem: &AllocationProblem, seed: u64) -> AllocResult<GapRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let online = OnlineGreedy::new().allocate(problem, &mut rng)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let offline = Miec::new().allocate(problem, &mut rng)?;
    let refined = LocalSearch::new().refine(&online)?;

    let online_cost = online.total_cost();
    let offline_miec_cost = offline.total_cost();
    let refined_online_cost = refined.total_cost();
    let offline_best_cost = offline_miec_cost.min(refined_online_cost);
    Ok(GapRow {
        seed,
        online_cost,
        offline_miec_cost,
        refined_online_cost,
        offline_best_cost,
        ratio: online_cost / offline_best_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_workload::{AdversaryPreset, WorkloadConfig};

    #[test]
    fn ratio_is_at_least_one_on_random_workloads() {
        for seed in 0..5 {
            let problem = WorkloadConfig::new(40, 10)
                .mean_interarrival(2.0)
                .generate(seed)
                .unwrap();
            let row = gap_row(&problem, seed).unwrap();
            assert!(
                row.ratio >= 1.0 - 1e-9,
                "seed {seed}: ratio {} < 1",
                row.ratio
            );
            assert!(row.refined_online_cost <= row.online_cost + 1e-9);
            assert!(row.offline_best_cost <= row.offline_miec_cost);
        }
    }

    #[test]
    fn adversarial_presets_produce_measurable_gaps() {
        for preset in AdversaryPreset::ALL {
            let problem = preset.problem(40, 8, 1).unwrap();
            let row = gap_row(&problem, 1).unwrap();
            assert!(row.ratio >= 1.0 - 1e-9, "{preset}: ratio {}", row.ratio);
            assert!(row.online_cost.is_finite() && row.online_cost > 0.0);
        }
    }
}
