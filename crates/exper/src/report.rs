//! Self-contained HTML reproduction report (`esvm report`).
//!
//! Runs the full artefact set — Tables I/II, Figs. 2–9 and the
//! extension experiments E1–E3 — and assembles one standalone HTML file
//! with embedded SVG plots ([`esvm_analysis::plot`]), data tables, and
//! the fitted curves with their adjusted R². No external assets, so the
//! file can be attached to an issue or a paper-review response as-is.

use crate::figure::Figure;
use crate::runner::RunError;
use crate::{experiments, ExpOptions};
use esvm_analysis::plot::LinePlot;
use esvm_analysis::Table;
use std::fmt::Write as _;

/// Converts one reproduced figure into an SVG plot.
fn figure_to_svg(figure: &Figure) -> String {
    let mut plot = LinePlot::new(
        format!("{}: {}", figure.id, figure.title),
        figure.x_label.clone(),
        figure.y_label.clone(),
    );
    for s in &figure.series {
        let points: Vec<(f64, f64)> =
            s.x.iter().copied().zip(s.y.iter().copied()).collect();
        plot = plot.series_with_fit(s.label.clone(), &points, s.fit);
    }
    plot.to_svg()
}

fn push_section(html: &mut String, heading: &str) {
    let _ = write!(html, "<h2>{}</h2>", escape(heading));
}

fn push_figure(html: &mut String, figure: &Figure) {
    push_section(html, &format!("{} — {}", figure.id, figure.title));
    html.push_str(&figure_to_svg(figure));
    let fits: Vec<String> = figure
        .series
        .iter()
        .filter_map(|s| {
            s.fit
                .map(|f| format!("<li>{} fit of {}: {}</li>", f.kind, escape(&s.label), f))
        })
        .collect();
    if !fits.is_empty() {
        let _ = write!(html, "<ul>{}</ul>", fits.join(""));
    }
    for note in &figure.notes {
        let _ = write!(html, "<p class=\"note\">{}</p>", escape(note));
    }
}

fn push_table(html: &mut String, heading: &str, table: &Table) {
    push_section(html, heading);
    let _ = write!(html, "<pre>{}</pre>", escape(&table.to_string()));
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Mean per-term energy decomposition (Eq. 7: run + idle + transition)
/// of the headline contenders at one representative sweep point.
fn energy_decomposition(opts: &ExpOptions) -> Result<Table, RunError> {
    use esvm_core::AllocatorKind;
    use esvm_workload::WorkloadConfig;
    let (vms, servers) = if opts.quick { (40, 20) } else { (100, 50) };
    let config = WorkloadConfig::new(vms, servers).mean_interarrival(4.0);
    let algos = [
        AllocatorKind::Miec,
        AllocatorKind::MiecNoAlpha,
        AllocatorKind::Ffps,
    ];
    let point = crate::runner::MonteCarlo::new(opts.seeds, opts.threads)
        .compare(&config, &algos)?;
    let mut table = Table::new(vec![
        "algorithm",
        "mean total",
        "run",
        "idle",
        "transition",
        "idle share (%)",
        "transition share (%)",
    ]);
    for &algo in &algos {
        let (run, idle, transition) = point.mean_breakdown(algo);
        let total = run + idle + transition;
        table.row(vec![
            algo.name().to_owned(),
            format!("{total:.0}"),
            format!("{run:.0}"),
            format!("{idle:.0}"),
            format!("{transition:.0}"),
            format!("{:.1}", idle / total * 100.0),
            format!("{:.1}", transition / total * 100.0),
        ]);
    }
    Ok(table)
}

/// Builds the full report.
///
/// # Errors
///
/// Propagates the first [`RunError`] from any experiment.
pub fn html_report(opts: &ExpOptions) -> Result<String, RunError> {
    let mut html = String::from(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>esvm reproduction report</title>\
         <style>body{font-family:sans-serif;max-width:720px;margin:2em auto;padding:0 1em}\
         svg{max-width:100%;height:auto;border:1px solid #eee;margin:.5em 0}\
         pre{background:#f6f6f6;padding:.8em;overflow-x:auto}\
         .note{color:#666;font-size:.9em}\
         h1{border-bottom:2px solid #333}h2{margin-top:2em}</style></head><body>",
    );
    let _ = write!(
        html,
        "<h1>esvm reproduction report</h1>\
         <p>Xie, Jia, Yang, Zhang — <em>Energy Saving Virtual Machine \
         Allocation in Cloud Computing</em>, IEEE ICDCSW 2013. \
         {} Monte-Carlo seeds per sweep point{}.</p>",
        opts.seeds,
        if opts.quick {
            ", quick mode (scaled-down VM counts)"
        } else {
            ""
        }
    );

    push_table(
        &mut html,
        "Table I — the types of resource demands of VMs",
        &experiments::table1(),
    );
    push_table(
        &mut html,
        "Table II — the types of resource capacities and power consumption parameters of servers",
        &experiments::table2(),
    );
    push_table(
        &mut html,
        "Energy decomposition — Eq. 7 terms (run / idle / transition) per algorithm",
        &energy_decomposition(opts)?,
    );

    for f in [
        experiments::fig2,
        experiments::fig3,
        experiments::fig4,
        experiments::fig5,
        experiments::fig6,
        experiments::fig7,
        experiments::fig8,
        experiments::fig9,
    ] {
        push_figure(&mut html, &f(opts)?);
    }

    push_table(
        &mut html,
        "E1 — extra saving from live-migration consolidation",
        &experiments::ext_migration(opts)?,
    );
    push_table(
        &mut html,
        "E2 — sensitivity to the arrival process",
        &experiments::ext_arrivals(opts)?,
    );
    push_table(
        &mut html,
        "E3 — overload behaviour with admission control",
        &experiments::ext_overload(opts)?,
    );

    html.push_str("</body></html>");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_artefact() {
        let opts = ExpOptions {
            seeds: 2,
            threads: 4,
            quick: true,
        };
        let html = html_report(&opts).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>"));
        for needle in [
            "Table I",
            "Table II",
            "Energy decomposition",
            "transition share",
            "Fig. 2",
            "Fig. 5",
            "Fig. 9",
            "E1",
            "E2",
            "E3",
            "<svg",
            "Adj.R²",
        ] {
            assert!(html.contains(needle), "missing {needle}");
        }
        // Eight figures → eight SVGs.
        assert_eq!(html.matches("<svg").count(), 8);
    }

    #[test]
    fn figure_to_svg_embeds_all_series() {
        let opts = ExpOptions {
            seeds: 2,
            threads: 4,
            quick: true,
        };
        let fig = experiments::fig5(&opts).unwrap();
        let svg = figure_to_svg(&fig);
        for s in &fig.series {
            assert!(svg.contains(&escape(&s.label)), "{}", s.label);
        }
    }
}
