//! Common experiment knobs.

use std::num::NonZeroUsize;

/// Options shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    /// Number of Monte-Carlo seeds per sweep point (the paper uses 50).
    pub seeds: u64,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
    /// Quick mode shrinks VM counts (100–500 → 20–100) so the full
    /// figure set reproduces in seconds; used by tests and benches.
    pub quick: bool,
}

impl ExpOptions {
    /// The paper's configuration: 50 seeds, full VM counts.
    pub fn paper() -> Self {
        Self {
            seeds: 50,
            threads: default_threads(),
            quick: false,
        }
    }

    /// A fast smoke configuration: 6 seeds, scaled-down VM counts.
    pub fn quick() -> Self {
        Self {
            seeds: 6,
            threads: default_threads(),
            quick: true,
        }
    }

    /// Scales a paper VM count for quick mode (divides by 5).
    pub fn scale_vms(&self, paper_count: usize) -> usize {
        if self.quick {
            (paper_count / 5).max(10)
        } else {
            paper_count
        }
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self::paper()
    }
}

fn default_threads() -> usize {
    threads_from(std::env::var("ESVM_THREADS").ok().as_deref())
}

/// The policy behind the default thread count, factored out of the
/// environment for testability: `ESVM_THREADS=N` (N ≥ 1) pins the
/// count, while `0`, unset, or unparsable values mean "all cores" —
/// mirroring [`esvm_par::Parallelism::parse_env`] except that the
/// experiment fan-out defaults to full parallelism rather than
/// sequential (seeds are independent, so this is always safe).
fn threads_from(env: Option<&str>) -> usize {
    match env.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let o = ExpOptions::paper();
        assert_eq!(o.seeds, 50);
        assert!(!o.quick);
        assert!(o.threads >= 1);
        assert_eq!(o.scale_vms(300), 300);
        assert_eq!(ExpOptions::default(), o);
    }

    #[test]
    fn esvm_threads_policy() {
        let all_cores = threads_from(None);
        assert!(all_cores >= 1);
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        // 0 and garbage both fall back to all cores.
        assert_eq!(threads_from(Some("0")), all_cores);
        assert_eq!(threads_from(Some("lots")), all_cores);
        assert_eq!(threads_from(Some("")), all_cores);
    }

    #[test]
    fn quick_scales_down() {
        let o = ExpOptions::quick();
        assert!(o.quick);
        assert_eq!(o.scale_vms(100), 20);
        assert_eq!(o.scale_vms(500), 100);
        assert_eq!(o.scale_vms(20), 10); // floor
    }
}
