//! Renderable figure data shared by the CLI, benches and tests.

use esvm_analysis::fit::{fit, Fit, FitKind};
use esvm_analysis::Table;
use std::fmt;

/// One data series of a figure (one line in the paper's plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"100 VMs"` or `"transition time = 3 min"`.
    pub label: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates.
    pub y: Vec<f64>,
    /// The fitting curve the paper draws through this series, if any.
    pub fit: Option<Fit>,
}

impl Series {
    /// Creates a series and attaches the requested fitting curve
    /// (silently omitted when the fit is not computable, e.g. too few
    /// points).
    pub fn with_fit(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>, kind: FitKind) -> Self {
        let fit = fit(kind, &x, &y);
        Self {
            label: label.into(),
            x,
            y,
            fit,
        }
    }

    /// Creates a series without a fitting curve.
    pub fn plain(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            x,
            y,
            fit: None,
        }
    }
}

/// A reproduced figure or table: titled series over a common x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper artefact id, e.g. `"Fig. 2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (workload parameters, caveats).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a series.
    pub fn push(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// The series with the given label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as an aligned text table: one row per x value,
    /// one column per series, followed by the fitted curves.
    ///
    /// Series may have different x grids (Figs. 4 and 9 plot against
    /// measured load); the table uses the union of x values and leaves
    /// holes blank.
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let mut table = Table::new(header);
        for &x in &xs {
            let mut cells = vec![format!("{x:.3}")];
            for s in &self.series {
                let cell = s
                    .x
                    .iter()
                    .position(|&sx| (sx - x).abs() < 1e-9)
                    .map(|i| format!("{:.3}", s.y[i]))
                    .unwrap_or_default();
                cells.push(cell);
            }
            table.row(cells);
        }

        let mut out = format!("{}: {}\n(y: {})\n\n{}", self.id, self.title, self.y_label, table);
        let fits: Vec<String> = self
            .series
            .iter()
            .filter_map(|s| s.fit.map(|f| format!("  {} fit of {}: {f}", f.kind, s.label)))
            .collect();
        if !fits.is_empty() {
            out.push_str("\nFitting curves:\n");
            for line in fits {
                out.push_str(&line);
                out.push('\n');
            }
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// CSV rendering of the series (long format:
    /// `series,x,y` rows), for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in s.x.iter().zip(&s.y) {
                // Labels are generated in-repo and contain no commas; keep
                // the emitter strict anyway.
                assert!(!s.label.contains(','), "label {:?} needs quoting", s.label);
                out.push_str(&format!("{},{x},{y}\n", s.label));
            }
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("Fig. T", "test figure", "x", "ratio (%)");
        fig.push(Series::with_fit(
            "a",
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            FitKind::Linear,
        ));
        fig.push(Series::plain("b", vec![2.0, 4.0], vec![1.0, 2.0]));
        fig.note("demo note");
        fig
    }

    #[test]
    fn render_includes_all_parts() {
        let text = sample().render();
        assert!(text.contains("Fig. T"), "{text}");
        assert!(text.contains("linear fit of a"), "{text}");
        assert!(text.contains("Adj.R²"), "{text}");
        assert!(text.contains("note: demo note"), "{text}");
        // Union x grid: 1, 2, 3, 4.
        assert!(text.contains("4.000"), "{text}");
    }

    #[test]
    fn series_without_fit_renders() {
        let fig = sample();
        assert!(fig.series_by_label("b").unwrap().fit.is_none());
        assert!(fig.series_by_label("a").unwrap().fit.is_some());
        assert!(fig.series_by_label("zzz").is_none());
    }

    #[test]
    fn csv_is_long_format() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines.len(), 1 + 3 + 2);
        assert!(lines.contains(&"a,2,4"));
    }

    #[test]
    fn fit_is_omitted_when_uncomputable() {
        let s = Series::with_fit("tiny", vec![1.0, 2.0], vec![1.0, 2.0], FitKind::Linear);
        assert!(s.fit.is_none());
    }

    #[test]
    fn display_delegates_to_render() {
        let fig = sample();
        assert_eq!(fig.to_string(), fig.render());
    }
}
