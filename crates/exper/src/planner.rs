//! Capacity planning: how many servers does a workload need?
//!
//! The paper takes the fleet as given (servers = VMs/2). A downstream
//! operator asks the inverse question: *given my request stream and an
//! admission-rate target, how small can the fleet be, and what will it
//! cost in energy?* [`CapacityPlanner`] answers it by sweeping fleet
//! sizes, running admission-controlled MIEC on seeded workloads at each
//! size, and reporting the admission/energy frontier plus the minimal
//! fleet meeting the target.

use crate::runner::RunError;
use esvm_analysis::Table;
use esvm_core::{AllocatorKind, Miec};
use esvm_par::{par_map, Parallelism};
use esvm_workload::WorkloadConfig;

/// One fleet size on the frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Fleet size evaluated.
    pub servers: usize,
    /// Mean fraction of VMs admitted, in `[0, 1]`.
    pub admission_rate: f64,
    /// Mean total energy of the admitted work (watt·time-units).
    pub energy: f64,
    /// Mean energy per admitted CPU·time unit.
    pub energy_per_work: f64,
}

/// The planning result: the frontier and the chosen fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPlan {
    /// Admission target the plan was built for, in `[0, 1]`.
    pub target: f64,
    /// Evaluated fleet sizes, ascending.
    pub frontier: Vec<FrontierPoint>,
    /// The smallest evaluated fleet meeting the target, if any.
    pub recommended: Option<FrontierPoint>,
}

impl CapacityPlan {
    /// Renders the frontier as a table (the recommended row is marked).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "servers",
            "admission (%)",
            "energy",
            "energy/work",
            "meets target",
        ]);
        for p in &self.frontier {
            let marker = if Some(p.servers) == self.recommended.map(|r| r.servers) {
                "<- recommended".to_owned()
            } else if p.admission_rate >= self.target {
                "yes".to_owned()
            } else {
                String::new()
            };
            table.row(vec![
                p.servers.to_string(),
                format!("{:.2}", p.admission_rate * 100.0),
                format!("{:.0}", p.energy),
                format!("{:.2}", p.energy_per_work),
                marker,
            ]);
        }
        table
    }
}

/// Hard ceiling on the seed count: beyond this the sweep would take
/// days, and `seed * sizes` bookkeeping could overflow downstream
/// aggregation.
pub const MAX_PLANNER_SEEDS: u64 = 1_000_000;

/// Sweeps fleet sizes for a workload template.
#[derive(Debug, Clone)]
pub struct CapacityPlanner {
    template: WorkloadConfig,
    target: f64,
    seeds: u64,
    par: Parallelism,
}

impl CapacityPlanner {
    /// Creates a planner for the given workload template (its server
    /// count is ignored — the sweep overrides it) and admission target.
    ///
    /// The per-fleet-size evaluation fans its seeds out over the
    /// [`Parallelism::from_env`] thread policy; override it with
    /// [`with_parallelism`](Self::with_parallelism). Results are
    /// bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics unless `target ∈ (0, 1]` and
    /// `1 ≤ seeds ≤ MAX_PLANNER_SEEDS`.
    pub fn new(template: WorkloadConfig, target: f64, seeds: u64) -> Self {
        assert!(
            target > 0.0 && target <= 1.0,
            "admission target must be in (0, 1]"
        );
        assert!(seeds >= 1, "need at least one seed");
        assert!(
            seeds <= MAX_PLANNER_SEEDS,
            "seed count {seeds} exceeds the planner cap of {MAX_PLANNER_SEEDS}"
        );
        Self {
            template,
            target,
            seeds,
            par: Parallelism::from_env(),
        }
    }

    /// Overrides the thread policy used to fan seeds out per fleet size.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Evaluates one fleet size.
    fn evaluate(&self, servers: usize) -> Result<FrontierPoint, RunError> {
        let config = self.template.clone().with_server_count(servers);
        let seeds: Vec<u64> = (0..self.seeds).collect();
        let runs = par_map(self.par, &seeds, |_i, &seed| -> Result<_, RunError> {
            let problem = config.generate(seed)?;
            let (assignment, rejected) =
                Miec::new()
                    .allocate_with_admission(&problem)
                    .map_err(|error| RunError::Alloc {
                        algo: AllocatorKind::Miec,
                        seed,
                        error,
                    })?;
            let admitted = 1.0 - rejected.len() as f64 / problem.vm_count().max(1) as f64;
            let energy = assignment.total_cost();
            let work = assignment
                .placement()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(j, _)| problem.vms()[j].cpu_time())
                .sum::<f64>();
            Ok((admitted, energy, work))
        });
        // Fold in seed order so both the sums and the reported error
        // (first failing seed) are independent of the thread count.
        let mut admitted = 0.0;
        let mut energy = 0.0;
        let mut work = 0.0;
        for run in runs {
            let (a, e, w) = run?;
            admitted += a;
            energy += e;
            work += w;
        }
        let n = self.seeds as f64;
        Ok(FrontierPoint {
            servers,
            admission_rate: admitted / n,
            energy: energy / n,
            energy_per_work: if work > 0.0 { energy / work } else { 0.0 },
        })
    }

    /// Builds the plan over the given candidate fleet sizes (deduplicated
    /// and sorted ascending).
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] (e.g. a fleet too small to host
    /// the largest VM type at all).
    pub fn plan(&self, mut candidate_sizes: Vec<usize>) -> Result<CapacityPlan, RunError> {
        candidate_sizes.sort_unstable();
        candidate_sizes.dedup();
        let mut frontier = Vec::with_capacity(candidate_sizes.len());
        for servers in candidate_sizes {
            frontier.push(self.evaluate(servers.max(1))?);
        }
        let recommended = frontier
            .iter()
            .copied()
            .find(|p| p.admission_rate >= self.target);
        Ok(CapacityPlan {
            target: self.target,
            frontier,
            recommended,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_workload::catalog;

    fn template() -> WorkloadConfig {
        WorkloadConfig::new(60, 1)
            .mean_interarrival(0.5)
            .mean_duration(10.0)
            .vm_types(catalog::standard_vm_types())
    }

    #[test]
    fn admission_rate_is_monotone_in_fleet_size() {
        let plan = CapacityPlanner::new(template(), 0.99, 4)
            .plan(vec![2, 6, 20])
            .unwrap();
        assert_eq!(plan.frontier.len(), 3);
        for w in plan.frontier.windows(2) {
            assert!(
                w[0].admission_rate <= w[1].admission_rate + 1e-9,
                "{w:?}"
            );
        }
    }

    #[test]
    fn recommendation_is_smallest_meeting_target() {
        let plan = CapacityPlanner::new(template(), 0.9, 4)
            .plan(vec![20, 2, 6, 6])
            .unwrap();
        if let Some(rec) = plan.recommended {
            assert!(rec.admission_rate >= 0.9);
            for p in &plan.frontier {
                if p.servers < rec.servers {
                    assert!(p.admission_rate < 0.9, "{p:?} should have been chosen");
                }
            }
        }
        // A generous fleet always meets a 90 % target for this stream.
        assert!(plan.recommended.is_some());
    }

    #[test]
    fn table_marks_the_recommendation() {
        let plan = CapacityPlanner::new(template(), 0.5, 2)
            .plan(vec![2, 30])
            .unwrap();
        let text = plan.to_table().to_string();
        assert!(text.contains("<- recommended"), "{text}");
    }

    #[test]
    #[should_panic(expected = "admission target")]
    fn invalid_target_is_rejected() {
        let _ = CapacityPlanner::new(template(), 1.5, 2);
    }

    #[test]
    #[should_panic(expected = "admission target")]
    fn zero_target_is_rejected() {
        let _ = CapacityPlanner::new(template(), 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "admission target")]
    fn nan_target_is_rejected() {
        let _ = CapacityPlanner::new(template(), f64::NAN, 2);
    }

    #[test]
    #[should_panic(expected = "need at least one seed")]
    fn zero_seeds_are_rejected() {
        let _ = CapacityPlanner::new(template(), 0.9, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the planner cap")]
    fn seed_overflow_is_rejected() {
        let _ = CapacityPlanner::new(template(), 0.9, MAX_PLANNER_SEEDS + 1);
    }

    #[test]
    fn generation_errors_propagate_deterministically() {
        // One giant VM type on tiny servers: generation itself fails.
        let bad = WorkloadConfig::new(10, 1)
            .vm_types(vec![catalog::VM_TYPES[6]])
            .server_types(vec![catalog::SERVER_TYPES[0]]);
        let seq = CapacityPlanner::new(bad.clone(), 0.9, 4)
            .with_parallelism(Parallelism::sequential())
            .plan(vec![2])
            .unwrap_err();
        let par = CapacityPlanner::new(bad, 0.9, 4)
            .with_parallelism(Parallelism::new(4))
            .plan(vec![2])
            .unwrap_err();
        assert!(matches!(seq, RunError::Generate(_)), "{seq:?}");
        assert_eq!(seq, par, "error must not depend on the thread count");
    }

    #[test]
    fn plan_is_independent_of_thread_count() {
        let seq = CapacityPlanner::new(template(), 0.9, 4)
            .with_parallelism(Parallelism::sequential())
            .plan(vec![2, 6, 20])
            .unwrap();
        for threads in [2, 4, 8] {
            let par = CapacityPlanner::new(template(), 0.9, 4)
                .with_parallelism(Parallelism::new(threads))
                .plan(vec![2, 6, 20])
                .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
