//! Capacity planning: how many servers does a workload need?
//!
//! The paper takes the fleet as given (servers = VMs/2). A downstream
//! operator asks the inverse question: *given my request stream and an
//! admission-rate target, how small can the fleet be, and what will it
//! cost in energy?* [`CapacityPlanner`] answers it by sweeping fleet
//! sizes, running admission-controlled MIEC on seeded workloads at each
//! size, and reporting the admission/energy frontier plus the minimal
//! fleet meeting the target.

use crate::runner::RunError;
use esvm_analysis::Table;
use esvm_core::{AllocatorKind, Miec};
use esvm_workload::WorkloadConfig;

/// One fleet size on the frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Fleet size evaluated.
    pub servers: usize,
    /// Mean fraction of VMs admitted, in `[0, 1]`.
    pub admission_rate: f64,
    /// Mean total energy of the admitted work (watt·time-units).
    pub energy: f64,
    /// Mean energy per admitted CPU·time unit.
    pub energy_per_work: f64,
}

/// The planning result: the frontier and the chosen fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPlan {
    /// Admission target the plan was built for, in `[0, 1]`.
    pub target: f64,
    /// Evaluated fleet sizes, ascending.
    pub frontier: Vec<FrontierPoint>,
    /// The smallest evaluated fleet meeting the target, if any.
    pub recommended: Option<FrontierPoint>,
}

impl CapacityPlan {
    /// Renders the frontier as a table (the recommended row is marked).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "servers",
            "admission (%)",
            "energy",
            "energy/work",
            "meets target",
        ]);
        for p in &self.frontier {
            let marker = if Some(p.servers) == self.recommended.map(|r| r.servers) {
                "<- recommended".to_owned()
            } else if p.admission_rate >= self.target {
                "yes".to_owned()
            } else {
                String::new()
            };
            table.row(vec![
                p.servers.to_string(),
                format!("{:.2}", p.admission_rate * 100.0),
                format!("{:.0}", p.energy),
                format!("{:.2}", p.energy_per_work),
                marker,
            ]);
        }
        table
    }
}

/// Sweeps fleet sizes for a workload template.
#[derive(Debug, Clone)]
pub struct CapacityPlanner {
    template: WorkloadConfig,
    target: f64,
    seeds: u64,
}

impl CapacityPlanner {
    /// Creates a planner for the given workload template (its server
    /// count is ignored — the sweep overrides it) and admission target.
    ///
    /// # Panics
    ///
    /// Panics unless `target ∈ (0, 1]` and `seeds ≥ 1`.
    pub fn new(template: WorkloadConfig, target: f64, seeds: u64) -> Self {
        assert!(
            target > 0.0 && target <= 1.0,
            "admission target must be in (0, 1]"
        );
        assert!(seeds >= 1, "need at least one seed");
        Self {
            template,
            target,
            seeds,
        }
    }

    /// Evaluates one fleet size.
    fn evaluate(&self, servers: usize) -> Result<FrontierPoint, RunError> {
        let config = self.template.clone().with_server_count(servers);
        let mut admitted = 0.0;
        let mut energy = 0.0;
        let mut work = 0.0;
        for seed in 0..self.seeds {
            let problem = config.generate(seed)?;
            let (assignment, rejected) =
                Miec::new()
                    .allocate_with_admission(&problem)
                    .map_err(|error| RunError::Alloc {
                        algo: AllocatorKind::Miec,
                        seed,
                        error,
                    })?;
            admitted += 1.0 - rejected.len() as f64 / problem.vm_count().max(1) as f64;
            energy += assignment.total_cost();
            work += assignment
                .placement()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(j, _)| problem.vms()[j].cpu_time())
                .sum::<f64>();
        }
        let n = self.seeds as f64;
        Ok(FrontierPoint {
            servers,
            admission_rate: admitted / n,
            energy: energy / n,
            energy_per_work: if work > 0.0 { energy / work } else { 0.0 },
        })
    }

    /// Builds the plan over the given candidate fleet sizes (deduplicated
    /// and sorted ascending).
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] (e.g. a fleet too small to host
    /// the largest VM type at all).
    pub fn plan(&self, mut candidate_sizes: Vec<usize>) -> Result<CapacityPlan, RunError> {
        candidate_sizes.sort_unstable();
        candidate_sizes.dedup();
        let mut frontier = Vec::with_capacity(candidate_sizes.len());
        for servers in candidate_sizes {
            frontier.push(self.evaluate(servers.max(1))?);
        }
        let recommended = frontier
            .iter()
            .copied()
            .find(|p| p.admission_rate >= self.target);
        Ok(CapacityPlan {
            target: self.target,
            frontier,
            recommended,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_workload::catalog;

    fn template() -> WorkloadConfig {
        WorkloadConfig::new(60, 1)
            .mean_interarrival(0.5)
            .mean_duration(10.0)
            .vm_types(catalog::standard_vm_types())
    }

    #[test]
    fn admission_rate_is_monotone_in_fleet_size() {
        let plan = CapacityPlanner::new(template(), 0.99, 4)
            .plan(vec![2, 6, 20])
            .unwrap();
        assert_eq!(plan.frontier.len(), 3);
        for w in plan.frontier.windows(2) {
            assert!(
                w[0].admission_rate <= w[1].admission_rate + 1e-9,
                "{w:?}"
            );
        }
    }

    #[test]
    fn recommendation_is_smallest_meeting_target() {
        let plan = CapacityPlanner::new(template(), 0.9, 4)
            .plan(vec![20, 2, 6, 6])
            .unwrap();
        if let Some(rec) = plan.recommended {
            assert!(rec.admission_rate >= 0.9);
            for p in &plan.frontier {
                if p.servers < rec.servers {
                    assert!(p.admission_rate < 0.9, "{p:?} should have been chosen");
                }
            }
        }
        // A generous fleet always meets a 90 % target for this stream.
        assert!(plan.recommended.is_some());
    }

    #[test]
    fn table_marks_the_recommendation() {
        let plan = CapacityPlanner::new(template(), 0.5, 2)
            .plan(vec![2, 30])
            .unwrap();
        let text = plan.to_table().to_string();
        assert!(text.contains("<- recommended"), "{text}");
    }

    #[test]
    #[should_panic(expected = "admission target")]
    fn invalid_target_is_rejected() {
        let _ = CapacityPlanner::new(template(), 1.5, 2);
    }
}
