//! `esvm query` — a small streaming query engine over trace artefacts.
//!
//! The engine evaluates a piped plan of the form
//!
//! ```text
//! load PATH | filter COL OP VALUE | sel COL,… | sort COL [desc]
//!           | agg SPEC,… [COL] [by:COL] | head N
//! ```
//!
//! over two kinds of sources:
//!
//! * **ESVT traces** (and their text-format equivalents): rows with the
//!   columns `id`, `cpu`, `mem`, `start`, `end`, `duration`. ESVT files
//!   are streamed block-by-block and the per-block `start`/`end`
//!   min/max statistics prune blocks that cannot match the filters —
//!   skipped blocks are never decoded (their payload is seeked past).
//! * **JSON-lines event files** (`--events-out`, chaos telemetry): one
//!   flat JSON object per line; the columns are the union of keys in
//!   first-seen order.
//!
//! Filters accept the operators `==`, `!=`, `>=`, `<=`, `>`, `<` and
//! `~` (substring match), each with a shell-friendly word alias
//! (`eq ne ge le gt lt contains`). Aggregations are `count`, `sum`,
//! `mean`, `min`, `max`, `median` and exact nearest-rank percentiles
//! `pNN` (`p50`, `p95`, `p99`, …), each taking `:COL`, a trailing
//! default column (`agg p50,p95,p99 time`), or — for column-less
//! specs — the column of the last `filter` stage; optionally grouped
//! with `by:COL`. `sort COL [desc]` orders row output or aggregate
//! groups by any output column, numeric-aware. The parser is
//! dependency-free, like the rest of the CLI.

use esvm_analysis::Table;
use esvm_workload::esvt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};

/// A query failure: malformed plan, unreadable source, or a type error
/// during evaluation. Rendered verbatim to the user.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError(pub String);

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for QueryError {}

fn err(msg: impl Into<String>) -> QueryError {
    QueryError(msg.into())
}

// ---------------------------------------------------------------------------
// Values and rows.
// ---------------------------------------------------------------------------

/// One cell. JSON nulls and keys absent from a line become [`Value::Null`].
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Null,
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::Num(v) if v.fract() == 0.0 && v.abs() < 1e15 => {
                format!("{}", *v as i64)
            }
            Value::Num(v) => format!("{v}"),
            Value::Str(s) => s.clone(),
            Value::Null => "null".to_owned(),
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Plan model and parser.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Eq,
    Ne,
    Ge,
    Le,
    Gt,
    Lt,
    Contains,
}

impl Op {
    /// Symbolic operators have shell-friendly word aliases so plans can
    /// be written without quoting (`filter pruned gt 100`).
    fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "==" | "=" | "eq" => Op::Eq,
            "!=" | "ne" => Op::Ne,
            ">=" | "ge" => Op::Ge,
            "<=" | "le" => Op::Le,
            ">" | "gt" => Op::Gt,
            "<" | "lt" => Op::Lt,
            "~" | "contains" => Op::Contains,
            _ => return None,
        })
    }
}

#[derive(Debug, Clone)]
struct Filter {
    col: String,
    op: Op,
    value: Value,
}

impl Filter {
    /// Row-level predicate. Numeric comparisons require both sides
    /// numeric; string equality/substring work on rendered text; a
    /// type mismatch (or a null cell) fails the filter rather than
    /// erroring, so heterogeneous JSONL files stay queryable.
    fn matches(&self, cell: &Value) -> bool {
        match (self.op, cell, &self.value) {
            (Op::Eq, Value::Num(a), Value::Num(b)) => a == b,
            (Op::Ne, Value::Num(a), Value::Num(b)) => a != b,
            (Op::Ge, Value::Num(a), Value::Num(b)) => a >= b,
            (Op::Le, Value::Num(a), Value::Num(b)) => a <= b,
            (Op::Gt, Value::Num(a), Value::Num(b)) => a > b,
            (Op::Lt, Value::Num(a), Value::Num(b)) => a < b,
            (Op::Eq, Value::Str(a), b) => *a == b.render(),
            (Op::Ne, Value::Str(a), b) => *a != b.render(),
            (Op::Contains, cell, pat) => cell.render().contains(&pat.render()),
            (Op::Ne, Value::Null, _) => true,
            _ => false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggFn {
    Count,
    Sum,
    Mean,
    Min,
    Max,
    /// Exact percentile (nearest-rank over the collected values).
    /// `median` parses as `Quantile(50)`.
    Quantile(u8),
}

impl AggFn {
    /// `pNN` (1–99) and the `median` alias.
    fn parse_quantile(name: &str) -> Option<AggFn> {
        if name == "median" {
            return Some(AggFn::Quantile(50));
        }
        let q = name.strip_prefix('p')?.parse::<u8>().ok()?;
        (1..=99).contains(&q).then_some(AggFn::Quantile(q))
    }
}

/// The spelling of an aggregate function as it appears in a plan, for
/// error messages and labels.
fn agg_name(func: AggFn) -> String {
    match func {
        AggFn::Count => "count".to_owned(),
        AggFn::Sum => "sum".to_owned(),
        AggFn::Mean => "mean".to_owned(),
        AggFn::Min => "min".to_owned(),
        AggFn::Max => "max".to_owned(),
        AggFn::Quantile(q) => format!("p{q}"),
    }
}

#[derive(Debug, Clone)]
struct AggSpec {
    func: AggFn,
    col: Option<String>,
}

impl AggSpec {
    fn label(&self) -> String {
        match (&self.func, &self.col) {
            (AggFn::Count, _) => "count".to_owned(),
            (AggFn::Sum, Some(c)) => format!("sum:{c}"),
            (AggFn::Mean, Some(c)) => format!("mean:{c}"),
            (AggFn::Min, Some(c)) => format!("min:{c}"),
            (AggFn::Max, Some(c)) => format!("max:{c}"),
            (AggFn::Quantile(q), Some(c)) => format!("p{q}:{c}"),
            _ => unreachable!("column-less aggregate other than count"),
        }
    }
}

#[derive(Debug, Clone)]
struct Plan {
    source: String,
    filters: Vec<Filter>,
    select: Option<Vec<String>>,
    aggs: Option<Vec<AggSpec>>,
    group_by: Option<String>,
    sort: Option<(String, bool)>,
    head: Option<usize>,
}

/// Grammar synopsis embedded in every parse error.
const PLAN_HELP: &str = "\
plan grammar:
  load PATH | filter COL OP VALUE | sel COL,... | sort COL [desc]
            | agg SPEC,... [COL] [by:COL] | head N
  OP    ==  !=  >=  <=  >  <  ~  or the words  eq ne ge le gt lt contains
  SPEC  count  sum  mean  min  max  median  pNN (p50, p95, p99, ...)
        each takes :COL, the trailing default COL, or — for a lone
        column-less spec — the column of the last filter stage
columns: id,cpu,mem,start,end,duration for traces; JSON keys for
         event / provenance-trace files";

fn parse_plan(expr: &str) -> Result<Plan, QueryError> {
    let help = |msg: String| err(format!("{msg}\n\n{PLAN_HELP}"));
    let mut stages = expr.split('|').map(str::trim);
    let Some(load) = stages.next().filter(|s| !s.is_empty()) else {
        return Err(help("empty query plan".into()));
    };
    let source = load
        .strip_prefix("load")
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .ok_or_else(|| help(format!("the first stage must be `load PATH`, got {load:?}")))?;

    let mut plan = Plan {
        source: source.to_owned(),
        filters: Vec::new(),
        select: None,
        aggs: None,
        group_by: None,
        sort: None,
        head: None,
    };

    for stage in stages {
        let mut words = stage.split_whitespace();
        match words.next() {
            Some("filter") => {
                let col = words
                    .next()
                    .ok_or_else(|| help(format!("filter needs `COL OP VALUE`, got {stage:?}")))?;
                let op = words
                    .next()
                    .and_then(Op::parse)
                    .ok_or_else(|| help(format!("bad filter operator in {stage:?}")))?;
                let raw = words.collect::<Vec<_>>().join(" ");
                if raw.is_empty() {
                    return Err(help(format!("filter needs a value, got {stage:?}")));
                }
                let value = match raw.parse::<f64>() {
                    Ok(v) if v.is_finite() => Value::Num(v),
                    _ => Value::Str(raw.trim_matches('"').to_owned()),
                };
                plan.filters.push(Filter {
                    col: col.to_owned(),
                    op,
                    value,
                });
            }
            Some("sel") => {
                if plan.select.is_some() {
                    return Err(help("duplicate sel stage".into()));
                }
                let cols: Vec<String> = words
                    .collect::<Vec<_>>()
                    .join(" ")
                    .split(',')
                    .map(|c| c.trim().to_owned())
                    .filter(|c| !c.is_empty())
                    .collect();
                if cols.is_empty() {
                    return Err(help(format!("sel needs column names, got {stage:?}")));
                }
                plan.select = Some(cols);
            }
            Some("agg") => {
                if plan.aggs.is_some() {
                    return Err(help("duplicate agg stage".into()));
                }
                let mut specs: Vec<AggSpec> = Vec::new();
                let mut default_col: Option<String> = None;
                let joined = words.collect::<Vec<_>>().join(" ");
                for part in joined.split([',', ' ']).filter(|p| !p.is_empty()) {
                    if let Some(col) = part.strip_prefix("by:") {
                        if plan.group_by.is_some() {
                            return Err(help("duplicate by: clause".into()));
                        }
                        plan.group_by = Some(col.to_owned());
                        continue;
                    }
                    let (name, col) = match part.split_once(':') {
                        Some((n, c)) => (n, Some(c.to_owned())),
                        None => (part, None),
                    };
                    let func = match name {
                        "count" => AggFn::Count,
                        "sum" => AggFn::Sum,
                        "mean" | "avg" => AggFn::Mean,
                        "min" => AggFn::Min,
                        "max" => AggFn::Max,
                        other => match AggFn::parse_quantile(other) {
                            Some(q) => q,
                            // Not a function name: a bare trailing word
                            // is the default column for column-less
                            // specs (`agg p50,p95,p99 dur_us`).
                            None if col.is_none() && !specs.is_empty() => {
                                if default_col.is_some() {
                                    return Err(help(format!(
                                        "agg takes one default column, got a second: {other:?}"
                                    )));
                                }
                                default_col = Some(other.to_owned());
                                continue;
                            }
                            None => {
                                return Err(help(format!("unknown aggregate {other:?}")));
                            }
                        },
                    };
                    specs.push(AggSpec { func, col });
                }
                if specs.is_empty() {
                    return Err(help(format!("agg needs at least one spec, got {stage:?}")));
                }
                // Column-less specs resolve to the trailing default
                // column, then to the last filter's column — so
                // `filter pruned gt 100 | agg mean by:shard` means
                // `mean:pruned` — and error only when neither exists.
                let fallback = default_col.or_else(|| plan.filters.last().map(|f| f.col.clone()));
                for spec in &mut specs {
                    if spec.func != AggFn::Count && spec.col.is_none() {
                        match &fallback {
                            Some(c) => spec.col = Some(c.clone()),
                            None => {
                                return Err(help(format!(
                                    "{} needs a column: `{}:COL` (or a trailing default column)",
                                    agg_name(spec.func),
                                    agg_name(spec.func),
                                )));
                            }
                        }
                    }
                }
                plan.aggs = Some(specs);
            }
            Some("sort") => {
                if plan.sort.is_some() {
                    return Err(help("duplicate sort stage".into()));
                }
                let col = words
                    .next()
                    .ok_or_else(|| help(format!("sort needs `COL [desc]`, got {stage:?}")))?;
                let desc = match words.next() {
                    None => false,
                    Some("desc") => true,
                    Some("asc") => false,
                    Some(other) => {
                        return Err(help(format!("sort direction must be `desc`, got {other:?}")));
                    }
                };
                if words.next().is_some() {
                    return Err(help(format!("sort takes `COL [desc]`, got {stage:?}")));
                }
                plan.sort = Some((col.to_owned(), desc));
            }
            Some("head") => {
                if plan.head.is_some() {
                    return Err(help("duplicate head stage".into()));
                }
                let n = words
                    .next()
                    .and_then(|w| w.parse::<usize>().ok())
                    .ok_or_else(|| help(format!("head needs a row count, got {stage:?}")))?;
                plan.head = Some(n);
            }
            Some(other) => {
                return Err(help(format!("unknown stage {other:?}")));
            }
            None => return Err(help("empty stage between pipes".into())),
        }
    }
    if plan.aggs.is_some() && plan.select.is_some() {
        return Err(help("sel and agg cannot be combined — agg defines its own columns".into()));
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Column order for trace-backed rows.
const TRACE_COLUMNS: [&str; 6] = ["id", "cpu", "mem", "start", "end", "duration"];

/// What `load` resolved the file to, for the footer line.
#[derive(Debug, Clone, PartialEq)]
enum SourceReport {
    /// ESVT: block skipping statistics from the reader.
    Esvt(esvt::ReadStats),
    /// Text trace: record count.
    Text(usize),
    /// JSONL: lines scanned (blank lines excluded).
    Jsonl(usize),
}

/// Streams all rows that pass `plan.filters` into `emit` (which also
/// receives the column names — fixed for traces, pre-computed for
/// JSONL); returns the columns and a source report. `emit` returns
/// `false` to stop early (head reached with no aggregation pending).
fn scan(
    plan: &Plan,
    mut emit: impl FnMut(&[String], Vec<Value>) -> bool,
) -> Result<(Vec<String>, SourceReport), QueryError> {
    let path = &plan.source;
    let mut head = [0u8; 4];
    let n = File::open(path)
        .and_then(|mut f| {
            let mut read = 0;
            while read < 4 {
                match f.read(&mut head[read..])? {
                    0 => break,
                    k => read += k,
                }
            }
            Ok(read)
        })
        .map_err(|e| err(format!("cannot read {path:?}: {e}")))?;

    if n == 4 && head == esvt::MAGIC {
        scan_esvt(plan, emit)
    } else if head.starts_with(b"{") {
        scan_jsonl(plan, emit)
    } else {
        // Fall back to the text trace parser, which produces precise
        // errors for anything that is neither format.
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
        let problem = esvm_workload::trace::from_text(&text)
            .map_err(|e| err(format!("bad trace {path:?}: {e}")))?;
        let columns: Vec<String> = TRACE_COLUMNS.iter().map(|c| (*c).to_owned()).collect();
        let mut count = 0usize;
        for vm in problem.vms() {
            count += 1;
            let row = trace_row(vm);
            if row_passes(&columns, &row, &plan.filters) && !emit(&columns, row) {
                break;
            }
        }
        Ok((columns, SourceReport::Text(count)))
    }
}

fn trace_row(vm: &esvm_simcore::Vm) -> Vec<Value> {
    vec![
        Value::Num(f64::from(vm.id().0)),
        Value::Num(vm.demand().cpu),
        Value::Num(vm.demand().mem),
        Value::Num(f64::from(vm.start())),
        Value::Num(f64::from(vm.end())),
        Value::Num(vm.duration() as f64),
    ]
}

fn row_passes(columns: &[String], row: &[Value], filters: &[Filter]) -> bool {
    filters.iter().all(|f| {
        match columns.iter().position(|c| *c == f.col) {
            Some(i) => f.matches(&row[i]),
            // An unknown column never matches (Ne still passes, as for
            // null cells — the column is absent everywhere).
            None => f.matches(&Value::Null),
        }
    })
}

/// Whether a block with `stats` can contain a row satisfying `f`.
/// Only `start`/`end` filters prune; everything else keeps the block.
fn block_may_match(stats: &esvt::BlockStats, f: &Filter) -> bool {
    let Some(v) = f.value.as_num() else { return true };
    let (lo, hi) = match f.col.as_str() {
        "start" => (f64::from(stats.min_start), f64::from(stats.max_start)),
        "end" => (f64::from(stats.min_end), f64::from(stats.max_end)),
        _ => return true,
    };
    match f.op {
        Op::Eq => lo <= v && v <= hi,
        Op::Ge => hi >= v,
        Op::Gt => hi > v,
        Op::Le => lo <= v,
        Op::Lt => lo < v,
        Op::Ne | Op::Contains => true,
    }
}

fn scan_esvt(
    plan: &Plan,
    mut emit: impl FnMut(&[String], Vec<Value>) -> bool,
) -> Result<(Vec<String>, SourceReport), QueryError> {
    let path = &plan.source;
    let mut reader = esvt::TraceReader::open(path)
        .map_err(|e| err(format!("bad ESVT trace {path:?}: {e}")))?;
    let columns: Vec<String> = TRACE_COLUMNS.iter().map(|c| (*c).to_owned()).collect();
    let filters = &plan.filters;
    let mut stop = false;
    let mut buf = Vec::new();
    loop {
        if stop {
            break;
        }
        let next = reader
            .next_batch_if(
                |stats| filters.iter().all(|f| block_may_match(stats, f)),
                &mut buf,
            )
            .map_err(|e| err(format!("bad ESVT trace {path:?}: {e}")))?;
        let Some((_, decoded)) = next else { break };
        if !decoded {
            continue;
        }
        for vm in &buf {
            let row = trace_row(vm);
            if row_passes(&columns, &row, filters) && !emit(&columns, row) {
                stop = true;
                break;
            }
        }
    }
    Ok((columns, SourceReport::Esvt(reader.stats())))
}

fn scan_jsonl(
    plan: &Plan,
    mut emit: impl FnMut(&[String], Vec<Value>) -> bool,
) -> Result<(Vec<String>, SourceReport), QueryError> {
    let path = &plan.source;
    let file = File::open(path).map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
    // Two passes keep memory at O(columns + one line): the first
    // discovers the column set (the union of keys, first-seen order),
    // the second streams rows. Event files are small next to traces.
    let mut columns: Vec<String> = Vec::new();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        for (key, _) in parse_json_line(&line, i + 1, path)? {
            if !columns.contains(&key) {
                columns.push(key);
            }
        }
    }
    let file = File::open(path).map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
    let mut scanned = 0usize;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        scanned += 1;
        let pairs = parse_json_line(&line, i + 1, path)?;
        let row: Vec<Value> = columns
            .iter()
            .map(|c| {
                pairs
                    .iter()
                    .find(|(k, _)| k == c)
                    .map_or(Value::Null, |(_, v)| v.clone())
            })
            .collect();
        if row_passes(&columns, &row, &plan.filters) && !emit(&columns, row) {
            break;
        }
    }
    Ok((columns, SourceReport::Jsonl(scanned)))
}

// ---------------------------------------------------------------------------
// Flat JSON-object parser (the shape `--events-out` writes).
// ---------------------------------------------------------------------------

fn parse_json_line(
    line: &str,
    line_no: usize,
    path: &str,
) -> Result<Vec<(String, Value)>, QueryError> {
    let bad = |reason: String| err(format!("{path}:{line_no}: {reason}"));
    let bytes = line.trim().as_bytes();
    let mut pos = 0usize;
    let mut pairs = Vec::new();

    let skip_ws = |pos: &mut usize| {
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
            *pos += 1;
        }
    };
    if bytes.first() != Some(&b'{') {
        return Err(bad("expected a JSON object".into()));
    }
    pos += 1;
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(pairs);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_json_string(bytes, &mut pos).map_err(&bad)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(bad(format!("expected ':' after key {key:?}")));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => Value::Str(parse_json_string(bytes, &mut pos).map_err(&bad)?),
            Some(b'{') | Some(b'[') => {
                return Err(bad(format!(
                    "nested value for key {key:?} — only flat objects are supported"
                )));
            }
            Some(_) => {
                let start = pos;
                while bytes
                    .get(pos)
                    .is_some_and(|b| !matches!(b, b',' | b'}') && !b.is_ascii_whitespace())
                {
                    pos += 1;
                }
                let token = std::str::from_utf8(&bytes[start..pos])
                    .map_err(|_| bad("invalid UTF-8".into()))?;
                match token {
                    "null" => Value::Null,
                    "true" => Value::Str("true".into()),
                    "false" => Value::Str("false".into()),
                    t => Value::Num(
                        t.parse::<f64>()
                            .map_err(|_| bad(format!("bad JSON value {t:?}")))?,
                    ),
                }
            }
            None => return Err(bad("truncated object".into())),
        };
        pairs.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                skip_ws(&mut pos);
                if pos != bytes.len() {
                    return Err(bad("trailing bytes after object".into()));
                }
                return Ok(pairs);
            }
            _ => return Err(bad("expected ',' or '}'".into())),
        }
    }
}

fn parse_json_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err("expected a string".into());
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (keys/values may be non-ASCII).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().ok_or("truncated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct AggState {
    count: u64,
    sum: f64,
    seen: u64,
    min: f64,
    max: f64,
    /// Collected only for quantile specs (exact nearest-rank needs
    /// every value); empty for the streaming aggregates.
    values: Vec<f64>,
}

impl AggState {
    fn update(&mut self, cell: Option<&Value>, collect: bool) {
        self.count += 1;
        if let Some(v) = cell.and_then(Value::as_num) {
            if self.seen == 0 {
                self.min = v;
                self.max = v;
            } else {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
            self.seen += 1;
            self.sum += v;
            if collect {
                self.values.push(v);
            }
        }
    }

    fn finish(&self, func: AggFn) -> Value {
        match func {
            AggFn::Count => Value::Num(self.count as f64),
            _ if self.seen == 0 => Value::Null,
            AggFn::Sum => Value::Num(self.sum),
            AggFn::Mean => Value::Num(self.sum / self.seen as f64),
            AggFn::Min => Value::Num(self.min),
            AggFn::Max => Value::Num(self.max),
            AggFn::Quantile(q) => {
                let mut sorted = self.values.clone();
                sorted.sort_by(f64::total_cmp);
                // Exact nearest-rank: the smallest value with at least
                // ⌈q/100·n⌉ values at or below it.
                let rank = (f64::from(q) / 100.0 * sorted.len() as f64).ceil() as usize;
                Value::Num(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Runs a query plan and renders its result (table plus a `--` footer
/// describing what the scan did).
///
/// # Errors
///
/// [`QueryError`] for a malformed plan, an unreadable or corrupt
/// source, or an unknown column.
pub fn run_query(expr: &str) -> Result<String, QueryError> {
    let plan = parse_plan(expr)?;

    if let Some(aggs) = &plan.aggs {
        return run_agg(&plan, aggs);
    }

    // Row output: project, sort, cap at head, render. A sort defeats
    // the early-exit head cap — every row has to be seen first.
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let cap = if plan.sort.is_some() {
        usize::MAX
    } else {
        plan.head.unwrap_or(usize::MAX)
    };
    let (columns, report) = scan(&plan, |_, row| {
        if rows.len() < cap {
            rows.push(row);
        }
        rows.len() < cap
    })?;
    if let Some((col, desc)) = &plan.sort {
        let i = columns
            .iter()
            .position(|c| c == col)
            .ok_or_else(|| err(format!("unknown sort column {col:?} (have: {})", columns.join(", "))))?;
        sort_rows(&mut rows, |row| &row[i], *desc);
        rows.truncate(plan.head.unwrap_or(usize::MAX));
    }

    let out_cols: Vec<String> = match &plan.select {
        Some(sel) => {
            for c in sel {
                if !columns.contains(c) {
                    return Err(err(format!(
                        "unknown column {c:?} (have: {})",
                        columns.join(", ")
                    )));
                }
            }
            sel.clone()
        }
        None => columns.clone(),
    };
    let indices: Vec<usize> = out_cols
        .iter()
        .map(|c| columns.iter().position(|x| x == c).expect("validated"))
        .collect();

    let mut table = Table::new(out_cols);
    let n_rows = rows.len();
    for row in rows {
        table.row(indices.iter().map(|&i| row[i].render()).collect());
    }
    let mut out = table.to_string();
    let _ = write!(out, "\n-- {n_rows} row{}", plural(n_rows));
    push_footer(&mut out, &report);
    Ok(out)
}

fn run_agg(plan: &Plan, aggs: &[AggSpec]) -> Result<String, QueryError> {
    // Group key -> one AggState per spec. Insertion order preserved.
    let mut groups: Vec<(String, Vec<AggState>)> = Vec::new();
    let group_col = plan.group_by.clone();
    let agg_cols: Vec<(Option<String>, bool)> = aggs
        .iter()
        .map(|a| (a.col.clone(), matches!(a.func, AggFn::Quantile(_))))
        .collect();

    let (columns, report) = scan(plan, |columns, row| {
        let key = match &group_col {
            Some(c) => match columns.iter().position(|x| x == c) {
                Some(i) => row[i].render(),
                None => "null".to_owned(),
            },
            None => String::new(),
        };
        let state = match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => s,
            None => {
                groups.push((key, vec![AggState::default(); agg_cols.len()]));
                &mut groups.last_mut().expect("just pushed").1
            }
        };
        for ((spec_col, collect), st) in agg_cols.iter().zip(state.iter_mut()) {
            let cell = spec_col
                .as_ref()
                .and_then(|c| columns.iter().position(|x| x == c))
                .map(|i| &row[i]);
            st.update(cell, *collect);
        }
        true
    })?;
    if let Some(c) = &plan.group_by {
        if !columns.contains(c) {
            return Err(err(format!(
                "unknown group column {c:?} (have: {})",
                columns.join(", ")
            )));
        }
    }
    for spec in aggs {
        if let Some(c) = &spec.col {
            if !columns.contains(c) {
                return Err(err(format!(
                    "unknown aggregate column {c:?} (have: {})",
                    columns.join(", ")
                )));
            }
        }
    }

    let mut header: Vec<String> = Vec::new();
    if let Some(c) = &plan.group_by {
        header.push(c.clone());
    }
    header.extend(aggs.iter().map(AggSpec::label));

    // Finish every group into output cells first, so a sort stage can
    // order groups by any output column (the group key or an aggregate
    // label like `p95:time`).
    let mut out_rows: Vec<Vec<Value>> = groups
        .iter()
        .map(|(key, states)| {
            let mut cells = Vec::new();
            if plan.group_by.is_some() {
                cells.push(match key.parse::<f64>() {
                    Ok(v) if v.is_finite() => Value::Num(v),
                    _ => Value::Str(key.clone()),
                });
            }
            cells.extend(aggs.iter().zip(states).map(|(spec, st)| st.finish(spec.func)));
            cells
        })
        .collect();
    if let Some((col, desc)) = &plan.sort {
        let i = header
            .iter()
            .position(|c| c == col)
            .ok_or_else(|| {
                err(format!("unknown sort column {col:?} (have: {})", header.join(", ")))
            })?;
        sort_rows(&mut out_rows, |row| &row[i], *desc);
    }

    let mut table = Table::new(header);
    let n_groups = out_rows.len();
    for row in out_rows {
        table.row(row.iter().map(Value::render).collect());
    }
    let mut out = table.to_string();
    if plan.group_by.is_some() {
        let _ = write!(out, "\n-- {n_groups} group{}", plural(n_groups));
    } else {
        out.push_str("\n--");
    }
    push_footer(&mut out, &report);
    Ok(out)
}

/// Stable, numeric-aware sort: numbers order before strings, both
/// order among themselves, nulls sink to the end regardless of
/// direction (so `sort COL desc` surfaces real values first).
fn sort_rows<R>(rows: &mut [R], key: impl Fn(&R) -> &Value, desc: bool) {
    rows.sort_by(|a, b| {
        let (a, b) = (key(a), key(b));
        let cmp = match (a, b) {
            (Value::Num(x), Value::Num(y)) => x.total_cmp(y),
            (Value::Str(x), Value::Str(y)) => x.cmp(y),
            (Value::Num(_), Value::Str(_)) => std::cmp::Ordering::Less,
            (Value::Str(_), Value::Num(_)) => std::cmp::Ordering::Greater,
            (Value::Null, Value::Null) => return std::cmp::Ordering::Equal,
            (Value::Null, _) => return std::cmp::Ordering::Greater,
            (_, Value::Null) => return std::cmp::Ordering::Less,
        };
        if desc {
            cmp.reverse()
        } else {
            cmp
        }
    });
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn push_footer(out: &mut String, report: &SourceReport) {
    match report {
        SourceReport::Esvt(stats) => {
            let total = stats.blocks_read + stats.blocks_skipped;
            let _ = write!(
                out,
                " (esvt: {} of {} block{} decoded, {} skipped; {} records)",
                stats.blocks_read,
                total,
                plural(total),
                stats.blocks_skipped,
                stats.records_decoded
            );
        }
        SourceReport::Text(n) => {
            let _ = write!(out, " (text trace: {n} record{})", plural(*n));
        }
        SourceReport::Jsonl(n) => {
            let _ = write!(out, " (jsonl: {n} line{} scanned)", plural(*n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_workload::WorkloadConfig;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esvm-query-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn sample_esvt(name: &str, vms: usize) -> PathBuf {
        let path = temp_path(name);
        let cfg = WorkloadConfig::new(vms, (vms / 2).max(2));
        cfg.generate_esvt_file(7, &path).unwrap();
        path
    }

    #[test]
    fn count_over_esvt_matches_vm_count() {
        let path = sample_esvt("count.esvt", 64);
        let out = run_query(&format!("load {} | agg count", path.display())).unwrap();
        assert!(out.contains("64"), "{out}");
        assert!(out.contains("esvt:"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn filters_and_selection_project_columns() {
        let path = sample_esvt("filter.esvt", 64);
        let out = run_query(&format!(
            "load {} | filter start >= 0 | sel id,start | head 3",
            path.display()
        ))
        .unwrap();
        let header = out.lines().next().unwrap();
        assert!(header.contains("id") && header.contains("start"), "{out}");
        assert!(!header.contains("cpu"), "{out}");
        assert!(out.contains("-- 3 rows"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn start_filter_skips_blocks() {
        // Small blocks so the trace has many; an impossible start
        // filter must skip all of them without decoding.
        let path = temp_path("skip.esvt");
        let cfg = WorkloadConfig::new(512, 64);
        let problem = cfg.generate(3).unwrap();
        let bytes = esvt::to_esvt_with_block_len(&problem, 32);
        std::fs::write(&path, bytes).unwrap();
        let out = run_query(&format!(
            "load {} | filter start > 4000000000 | agg count",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("0 of 16 blocks decoded, 16 skipped"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn text_traces_and_esvt_agree() {
        let cfg = WorkloadConfig::new(48, 12);
        let problem = cfg.generate(11).unwrap();
        let text_path = temp_path("agree.txt");
        let esvt_path = temp_path("agree.esvt");
        std::fs::write(&text_path, esvm_workload::trace::to_text(&problem)).unwrap();
        std::fs::write(&esvt_path, esvt::to_esvt(&problem)).unwrap();
        let q = "| filter duration >= 3 | agg count,sum:cpu,mean:mem,max:end";
        let a = run_query(&format!("load {} {q}", text_path.display())).unwrap();
        let b = run_query(&format!("load {} {q}", esvt_path.display())).unwrap();
        // Identical except the footer (different source kinds).
        let strip = |s: &str| s.lines().filter(|l| !l.starts_with("--")).count();
        assert_eq!(strip(&a), strip(&b));
        let body = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("(") || !l.starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let body_a: String = body(&a).lines().take(2).collect::<Vec<_>>().join("\n");
        let body_b: String = body(&b).lines().take(2).collect::<Vec<_>>().join("\n");
        assert_eq!(body_a, body_b);
        std::fs::remove_file(text_path).unwrap();
        std::fs::remove_file(esvt_path).unwrap();
    }

    #[test]
    fn jsonl_grouped_aggregation() {
        let path = temp_path("events.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"event\":\"miec.place\",\"algo\":\"miec\",\"delta\":2.5}\n",
                "{\"event\":\"miec.place\",\"algo\":\"miec\",\"delta\":1.5}\n",
                "{\"event\":\"run.start\",\"algo\":\"ffps\"}\n",
            ),
        )
        .unwrap();
        let out = run_query(&format!(
            "load {} | agg count,sum:delta by:algo",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("miec"), "{out}");
        assert!(out.contains("4"), "{out}"); // sum:delta for miec
        assert!(out.contains("-- 2 groups"), "{out}");
        assert!(out.contains("3 lines scanned"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn jsonl_filter_on_event_name() {
        let path = temp_path("events2.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"event\":\"chaos.crash\",\"server\":3,\"at\":10}\n",
                "{\"event\":\"chaos.repair\",\"server\":3,\"at\":14}\n",
                "{\"event\":\"chaos.crash\",\"server\":5,\"at\":20}\n",
            ),
        )
        .unwrap();
        let out = run_query(&format!(
            "load {} | filter event == chaos.crash | agg count,max:at",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("2"), "{out}");
        assert!(out.contains("20"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn substring_filter_matches() {
        let path = temp_path("events3.jsonl");
        std::fs::write(
            &path,
            "{\"event\":\"miec.place\"}\n{\"event\":\"run.start\"}\n",
        )
        .unwrap();
        let out = run_query(&format!(
            "load {} | filter event ~ place | agg count",
            path.display()
        ))
        .unwrap();
        assert!(out.lines().any(|l| l.trim() == "1"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn parse_errors_are_helpful() {
        for (plan, needle) in [
            ("", "load PATH"),
            ("load", "load PATH"),
            ("load x | frobnicate", "unknown stage"),
            ("load x | filter a !! 3", "operator"),
            ("load x | agg p0:a", "unknown aggregate"),
            ("load x | agg p100:a", "unknown aggregate"),
            ("load x | agg frob:a", "unknown aggregate"),
            ("load x | agg sum", "needs a column"),
            ("load x | agg sum a b", "one default column"),
            ("load x | head none", "row count"),
            ("load x | sel a | agg count", "cannot be combined"),
            ("load x | sort", "sort needs"),
            ("load x | sort a up", "desc"),
            ("load x | sort a desc | sort b", "duplicate sort"),
        ] {
            let e = run_query(plan).unwrap_err();
            assert!(e.0.contains(needle), "{plan:?} -> {e}");
        }
    }

    /// The committed chaos-event fixture the CI `tracing` job also
    /// queries: 18 lines, columns event/server/time/cause.
    fn fixture() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/chaos_events.jsonl")
    }

    #[test]
    fn word_operators_match_symbolic_ones() {
        let f = fixture();
        for (word, sym) in [
            ("eq", "=="),
            ("ne", "!="),
            ("ge", ">="),
            ("le", "<="),
            ("gt", ">"),
            ("lt", "<"),
        ] {
            let a = run_query(&format!("load {} | filter time {word} 500 | agg count", f.display()))
                .unwrap();
            let b = run_query(&format!("load {} | filter time {sym} 500 | agg count", f.display()))
                .unwrap();
            assert_eq!(a, b, "{word} vs {sym}");
        }
    }

    #[test]
    fn sort_orders_rows_numerically() {
        let f = fixture();
        let out = run_query(&format!(
            "load {} | sel server,time | sort time desc | head 2",
            f.display()
        ))
        .unwrap();
        let times: Vec<f64> = out
            .lines()
            .skip(2) // header + rule
            .take(2)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(times[0] >= times[1], "{out}");
        let asc = run_query(&format!(
            "load {} | sel time | sort time | head 1",
            f.display()
        ))
        .unwrap();
        let full = run_query(&format!("load {} | sel time | sort time", f.display())).unwrap();
        // Ascending head-1 is the global minimum.
        let min_line = asc.lines().nth(2).unwrap().trim().to_owned();
        let first_full = full.lines().nth(2).unwrap().trim().to_owned();
        assert_eq!(min_line, first_full);
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let f = fixture();
        // Recompute the expected percentiles directly from the file.
        let text = std::fs::read_to_string(&f).unwrap();
        let mut times: Vec<f64> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let tail = l.split("\"time\":").nth(1).unwrap();
                tail.trim_start()
                    .trim_end_matches(['}', ','])
                    .split([',', '}'])
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let rank = |q: f64| times[((q / 100.0 * times.len() as f64).ceil() as usize - 1).min(times.len() - 1)];
        let out = run_query(&format!("load {} | agg p50,p95,p99 time", f.display())).unwrap();
        let header = out.lines().next().unwrap();
        assert!(header.contains("p50:time") && header.contains("p99:time"), "{out}");
        let row = out.lines().nth(2).unwrap();
        let cells: Vec<f64> = row
            .split_whitespace()
            .map(|c| c.parse().unwrap())
            .collect();
        assert_eq!(cells, vec![rank(50.0), rank(95.0), rank(99.0)], "{out}");
    }

    #[test]
    fn median_is_p50_and_columnless_specs_take_filter_column() {
        let f = fixture();
        let a = run_query(&format!("load {} | agg median:time", f.display())).unwrap();
        let b = run_query(&format!("load {} | agg p50:time", f.display())).unwrap();
        assert_eq!(a, b);
        // The ISSUE's canonical example shape: a column-less aggregate
        // inherits the last filter's column.
        let c = run_query(&format!(
            "load {} | filter time gt 100 | agg mean by:server",
            f.display()
        ))
        .unwrap();
        assert!(c.lines().next().unwrap().contains("mean:time"), "{c}");
        let d = run_query(&format!(
            "load {} | filter time gt 100 | agg mean:time by:server",
            f.display()
        ))
        .unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn sort_orders_aggregate_groups() {
        let f = fixture();
        let out = run_query(&format!(
            "load {} | agg count,max:time by:server | sort count desc",
            f.display()
        ))
        .unwrap();
        let counts: Vec<f64> = out
            .lines()
            .skip(2)
            .take_while(|l| !l.starts_with("--"))
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(counts.len() > 1, "{out}");
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{out}");
        let e = run_query(&format!(
            "load {} | agg count by:server | sort nope",
            f.display()
        ))
        .unwrap_err();
        assert!(e.0.contains("unknown sort column"), "{e}");
    }

    #[test]
    fn unknown_selected_column_errors() {
        let path = sample_esvt("badcol.esvt", 8);
        let e = run_query(&format!("load {} | sel nope", path.display())).unwrap_err();
        assert!(e.0.contains("unknown column"), "{e}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = run_query("load /nonexistent/trace.esvt | agg count").unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
    }
}
