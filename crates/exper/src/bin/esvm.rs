//! `esvm` — reproduce the tables and figures of Xie et al. (ICDCSW
//! 2013) from the command line. Run `esvm` with no arguments for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match esvm_exper::cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
