//! # esvm-exper
//!
//! Experiment harness reproducing **every table and figure** of
//! *"Energy Saving Virtual Machine Allocation in Cloud Computing"*
//! (Xie et al., ICDCSW 2013).
//!
//! * [`runner`] — seeded, multi-threaded Monte-Carlo executor comparing
//!   allocation algorithms on generated workloads;
//! * [`figure`] — a renderable figure/series data model shared by the
//!   CLI, the benches and the integration tests;
//! * [`experiments`] — one module per paper artefact:
//!   [`experiments::table1`], [`experiments::table2`],
//!   [`experiments::fig2`] … [`experiments::fig9`];
//! * [`planner`] — capacity planning: the admission/energy frontier
//!   over fleet sizes, with a recommended minimal fleet;
//! * [`query`] — the `esvm query` streaming engine over ESVT traces
//!   and JSON-lines event files;
//! * [`serve`] — the `esvm serve` online allocation loop: a line
//!   protocol over the irrevocable-at-arrival engine, fed from stdin,
//!   a Unix socket, or streamed traces, with live `DOWN`/`UP` fault
//!   verbs, bounded-queue overload shedding and crash recovery;
//! * [`journal`] — the ESVJ write-ahead journal behind
//!   `esvm serve --journal`/`--recover`: checksummed append-only
//!   records, torn-tail tolerant replay, checkpoint verification;
//! * [`gap`] — the `esvm gap` online/offline optimality-gap report
//!   (empirical competitive ratios per seed);
//! * [`report`] — a standalone HTML reproduction report with embedded
//!   SVG plots of every figure;
//! * [`options`] — common knobs (seed count, thread count, quick mode);
//! * [`cli`] — the `esvm` command-line front end.
//!
//! ## Example
//!
//! ```no_run
//! use esvm_exper::{experiments, options::ExpOptions};
//! let figure = experiments::fig2(&ExpOptions::quick()).unwrap();
//! println!("{}", figure.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod figure;
pub mod gap;
pub mod journal;
pub mod options;
pub mod planner;
pub mod query;
pub mod report;
pub mod runner;
pub mod serve;

pub use figure::{Figure, Series};
pub use options::ExpOptions;
pub use runner::{ComparisonPoint, MonteCarlo, RunError};
