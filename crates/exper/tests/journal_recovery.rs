//! Crash–restart differential suite: a seeded event stream with live
//! faults is killed at a randomized event index, recovered from the
//! write-ahead journal, and resumed. The recovered session must match
//! the uninterrupted run **bit-exactly**: placements, committed cost,
//! and the per-ledger Eq. 7 energy breakdown. The engine is
//! `ESVM_THREADS`-blind, so CI runs this suite under both 1 and 4
//! threads and expects identical results.

use esvm_chaos::{FaultEvent, FaultPlan, FaultPlanConfig};
use esvm_exper::journal::{recover_bytes, recover_file, JournalWriter};
use esvm_exper::serve::{ServeConfig, ServeSession};
use esvm_obs::{MetricsRegistry, NoopTracer};
use esvm_simcore::{AllocationProblem, ServerId, Vm};
use esvm_workload::WorkloadConfig;

/// The interleaved event sequence of a live drill: faults with
/// `at ≤ t` fire before the arrival burst at `t`, exactly as
/// `feed_problem_with_faults` orders them — materialised so a run can
/// be split at any index.
enum DrillEvent {
    Fault(FaultEvent),
    Burst(Vec<Vm>),
}

fn drill_events(problem: &AllocationProblem, plan: &FaultPlan) -> Vec<DrillEvent> {
    let vms = problem.vms();
    let order = problem.vms_by_start_time();
    let mut cursor = plan.cursor();
    let mut events = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let start = vms[order[i]].start();
        for f in cursor.take_until(start) {
            events.push(DrillEvent::Fault(*f));
        }
        let mut j = i;
        while j < order.len() && vms[order[j]].start() == start {
            j += 1;
        }
        events.push(DrillEvent::Burst(
            order[i..j].iter().map(|&k| vms[k]).collect(),
        ));
        i = j;
    }
    for f in cursor.rest() {
        events.push(DrillEvent::Fault(*f));
    }
    events
}

fn apply<T: esvm_obs::Tracer>(session: &mut ServeSession<'_, T>, events: &[DrillEvent]) {
    for event in events {
        match event {
            DrillEvent::Fault(FaultEvent::ServerDown { server, .. }) => {
                session.fault_down(*server);
            }
            DrillEvent::Fault(FaultEvent::ServerUp { server, .. }) => {
                session.fault_up(*server);
            }
            DrillEvent::Burst(vms) => {
                session.burst(vms.iter().copied());
            }
        }
    }
}

/// Everything that must survive the crash, captured bit-exactly.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    placements: Vec<Option<ServerId>>,
    committed_bits: u64,
    retired_bits: u64,
    breakdowns: Vec<[u64; 3]>,
    arrivals: u64,
    placed: u64,
    rejected: u64,
    departed: u64,
    evicted: u64,
    repaired: u64,
}

fn fingerprint<T: esvm_obs::Tracer>(session: &ServeSession<'_, T>, ids: usize) -> Fingerprint {
    let engine = session.engine();
    let stats = engine.stats();
    Fingerprint {
        placements: engine.placement(ids),
        committed_bits: engine.committed_cost().to_bits(),
        retired_bits: engine.retired_cost().to_bits(),
        breakdowns: engine
            .ledgers()
            .iter()
            .map(|l| {
                let b = l.energy_breakdown();
                [b.run.to_bits(), b.idle.to_bits(), b.transition.to_bits()]
            })
            .collect(),
        arrivals: stats.arrivals,
        placed: stats.placed,
        rejected: stats.rejected,
        departed: stats.departed,
        evicted: stats.evicted,
        repaired: stats.repaired,
    }
}

/// A tiny deterministic PRNG (splitmix64) for the kill indices, so the
/// suite needs no external randomness source.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One crash–restart round: run `events[..kill]` journaled, "crash"
/// (drop the writer without a checkpoint), recover, replay, resume
/// with `events[kill..]`, and compare against the uninterrupted run.
fn crash_restart_matches(
    problem: &AllocationProblem,
    plan: &FaultPlan,
    kill: usize,
    journal_path: &std::path::Path,
) {
    let events = drill_events(problem, plan);
    let kill = kill.min(events.len());
    let config = ServeConfig::default();

    // Uninterrupted reference.
    let metrics_a = MetricsRegistry::new();
    let mut a = ServeSession::new(problem.servers(), &metrics_a, &NoopTracer).with_config(config);
    apply(&mut a, &events);
    let want = fingerprint(&a, problem.vm_count());

    // Interrupted: journal, kill at `kill`, no graceful checkpoint.
    std::fs::remove_file(journal_path).ok();
    let metrics_b = MetricsRegistry::new();
    let mut b = ServeSession::new(problem.servers(), &metrics_b, &NoopTracer).with_config(config);
    b.set_journal(Some(
        JournalWriter::create(journal_path, problem.servers(), 64).unwrap(),
    ));
    apply(&mut b, &events[..kill]);
    drop(b); // the crash: buffered writer dropped, no checkpoint record

    // Recover and resume.
    let rec = recover_file(journal_path).unwrap();
    assert_eq!(rec.servers, problem.servers(), "fleet survives the header");
    let metrics_c = MetricsRegistry::new();
    let mut c = ServeSession::new(&rec.servers, &metrics_c, &NoopTracer).with_config(config);
    c.replay(&rec.records).unwrap();
    apply(&mut c, &events[kill..]);

    let got = fingerprint(&c, problem.vm_count());
    assert_eq!(
        got, want,
        "recovered run diverged (kill index {kill} of {})",
        events.len()
    );
    std::fs::remove_file(journal_path).ok();
}

#[test]
fn crash_restart_is_bit_exact_across_25_seeds() {
    let dir = std::env::temp_dir();
    let mut rng_state = 0xE5A11u64;
    for seed in 0..25u64 {
        let problem = WorkloadConfig::new(160, 24)
            .mean_interarrival(1.0)
            .mean_duration(6.0)
            .generate(seed)
            .expect("feasible workload");
        let plan = FaultPlan::generate(
            &FaultPlanConfig::with_fault_rate(0.1),
            problem.server_count(),
            problem.horizon(),
            seed,
        );
        let events = drill_events(&problem, &plan);
        let kill = (splitmix(&mut rng_state) as usize) % events.len().max(1);
        let path = dir.join(format!("esvj_recovery_{seed}.esvj"));
        crash_restart_matches(&problem, &plan, kill, &path);
    }
}

#[test]
fn crash_restart_is_bit_exact_on_a_10k_event_stream() {
    // ~5000 VMs → ~10k arrival/departure events, one seeded kill point
    // deep in the stream.
    let problem = WorkloadConfig::new(5000, 250)
        .mean_interarrival(0.2)
        .mean_duration(8.0)
        .generate(42)
        .expect("feasible workload");
    let plan = FaultPlan::generate(
        &FaultPlanConfig::with_fault_rate(0.1),
        problem.server_count(),
        problem.horizon(),
        42,
    );
    let events = drill_events(&problem, &plan);
    let mut rng_state = 0x10_000u64;
    let kill = (splitmix(&mut rng_state) as usize) % events.len();
    let path = std::env::temp_dir().join("esvj_recovery_10k.esvj");
    crash_restart_matches(&problem, &plan, kill, &path);
}

#[test]
fn torn_tail_recovery_is_a_prefix_and_resumable() {
    // Crash *mid-write*: chop bytes off the journal tail and recover.
    // The recovered state must replay cleanly (a valid event prefix),
    // and resuming the same file must leave it recoverable again.
    let problem = WorkloadConfig::new(120, 16)
        .mean_interarrival(1.0)
        .generate(7)
        .expect("feasible workload");
    let plan = FaultPlan::generate(
        &FaultPlanConfig::with_fault_rate(0.2),
        problem.server_count(),
        problem.horizon(),
        7,
    );
    let events = drill_events(&problem, &plan);
    let path = std::env::temp_dir().join("esvj_recovery_torn.esvj");
    std::fs::remove_file(&path).ok();
    let metrics = MetricsRegistry::new();
    let mut session = ServeSession::new(problem.servers(), &metrics, &NoopTracer);
    session.set_journal(Some(
        JournalWriter::create(&path, problem.servers(), 0).unwrap(),
    ));
    apply(&mut session, &events);
    drop(session);

    let bytes = std::fs::read(&path).unwrap();
    let full = recover_bytes(&bytes).unwrap();
    let mut rng_state = 0x70541u64;
    for _ in 0..32 {
        let cut = (splitmix(&mut rng_state) as usize) % bytes.len().max(1);
        let rec = match recover_bytes(&bytes[..cut]) {
            Ok(rec) => rec,
            Err(_) => continue, // header cut: typed error, nothing to replay
        };
        assert_eq!(rec.records[..], full.records[..rec.records.len()]);
        let m = MetricsRegistry::new();
        let mut s = ServeSession::new(&rec.servers, &m, &NoopTracer);
        s.replay(&rec.records).expect("a record prefix replays cleanly");
        // The resumed session keeps working after recovery.
        assert!(s.engine().committed_cost().is_finite());
    }
    std::fs::remove_file(&path).ok();
}
