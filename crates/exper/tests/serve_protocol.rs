//! Adversarial property tests for the `esvm serve` line protocol.
//!
//! A hardened server has exactly three behaviours per request line:
//! a decision (`PLACED`/`REJECTED`), a typed `ERR` reply, or silence
//! on blanks and comments. These tests mutate well-formed request
//! streams — corrupted fields, truncation, duplicated and deleted
//! lines — and assert the session never panics, never emits anything
//! outside the reply grammar, and keeps serving after every error.

use esvm_exper::serve::ServeSession;
use esvm_obs::{MetricsRegistry, NoopTracer};
use esvm_simcore::{PowerModel, Resources, ServerSpec};
use proptest::prelude::*;

/// Garbage values a corrupted field can take, including the ones that
/// would reach `Resources::new`/`Interval::with_len` asserts if the
/// parser validated after construction instead of before.
const GARBAGE: [&str; 12] = [
    "NaN", "-NaN", "inf", "-inf", "-1", "1e999", "0x10", "", "foo", "1.5.3",
    "99999999999999999999", "4294967295",
];

fn fleet() -> Vec<ServerSpec> {
    (0..4u32)
        .map(|i| {
            ServerSpec::new(
                i,
                Resources::new(8.0, 16.0),
                PowerModel::new(100.0, 200.0),
                120.0,
            )
        })
        .collect()
}

/// A well-formed request stream: staggered arrivals that mostly fit.
fn valid_stream(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("REQ {i} {} {} 2.0 4.0", i + 1, 5 + i % 7))
        .collect()
}

/// A well-formed stream interleaving arrivals with fault verbs.
fn faulty_stream(n: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..n {
        lines.push(format!("REQ {i} {} {} 2.0 4.0", i + 1, 5 + i % 7));
        match i % 5 {
            1 => lines.push(format!("DOWN {}", i % 4)),
            3 => lines.push(format!("UP {}", i % 4)),
            _ => {}
        }
    }
    lines
}

fn mutate(lines: &[String], line: usize, field: usize, garbage: usize, mode: usize) -> Vec<String> {
    if lines.is_empty() {
        return Vec::new();
    }
    let line = line % lines.len();
    let mut out = lines.to_vec();
    match mode % 4 {
        // Replace one space-separated field with garbage.
        0 => {
            let mut fields: Vec<String> =
                out[line].split_whitespace().map(str::to_owned).collect();
            let field = field % fields.len();
            fields[field] = GARBAGE[garbage % GARBAGE.len()].to_owned();
            out[line] = fields.join(" ");
        }
        // Truncate mid-line.
        1 => {
            let cut = out[line].len() / 2;
            out[line].truncate(cut);
        }
        // Duplicate a line verbatim (duplicate-id injection).
        2 => {
            let dup = out[line].clone();
            out.insert(line, dup);
        }
        // Delete a line (skipped ids, reordered stream).
        _ => {
            out.remove(line);
        }
    }
    out
}

/// The full reply grammar; anything else is a protocol break.
fn reply_is_well_formed(reply: &str) -> bool {
    reply.starts_with("PLACED ")
        || reply.starts_with("REJECTED ")
        || reply.starts_with("ERR ")
        || reply.starts_with("STATS ")
        || reply.starts_with("DRAINED ")
        || reply.starts_with("DOWNED ")
        || reply.starts_with("UPPED ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single mutation of a valid stream yields only well-formed
    /// replies, never a panic, and the session keeps serving.
    #[test]
    fn mutated_streams_never_break_the_session(
        line in 0usize..10_000,
        field in 0usize..8,
        garbage in 0usize..GARBAGE.len(),
        mode in 0usize..4,
    ) {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);

        let stream = mutate(&valid_stream(12), line, field, garbage, mode);
        for request in &stream {
            if let Some(reply) = session.handle(request) {
                prop_assert!(
                    reply_is_well_formed(&reply),
                    "unexpected reply {reply:?} to {request:?}"
                );
                prop_assert!(!reply.contains('\n'), "reply must be one line");
            }
        }

        // The session survives: a fresh, valid request still gets a
        // decision, and the control verbs still answer.
        let probe = session.handle("REQ 50000 4000 5 1.0 2.0");
        prop_assert!(
            matches!(probe.as_deref(), Some(r) if r == "PLACED 50000 0"
                || r.starts_with("PLACED 50000 ") || r == "REJECTED 50000"),
            "session did not survive: {probe:?}"
        );
        let stats = session.handle("STATS").expect("STATS always replies");
        prop_assert!(stats.starts_with("STATS "), "{stats}");
        let drained = session.handle("DRAIN").expect("DRAIN always replies");
        prop_assert!(drained.starts_with("DRAINED "), "{drained}");
    }

    /// Stacked mutations (up to 5) behave the same, and every `ERR`
    /// carries a kebab-case code.
    #[test]
    fn stacked_mutations_yield_typed_errors(
        edits in proptest::collection::vec(
            (0usize..10_000, 0usize..8, 0usize..GARBAGE.len(), 0usize..4),
            1..6,
        ),
    ) {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);

        let mut stream = valid_stream(10);
        for &(line, field, garbage, mode) in &edits {
            stream = mutate(&stream, line, field, garbage, mode);
        }
        let mut errors = 0u64;
        for request in &stream {
            match session.handle(request) {
                Some(reply) if reply.starts_with("ERR ") => {
                    errors += 1;
                    let code = reply.split_whitespace().nth(1).unwrap_or("");
                    prop_assert!(
                        !code.is_empty()
                            && code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                        "ERR code must be kebab-case: {reply:?}"
                    );
                }
                Some(reply) => prop_assert!(reply_is_well_formed(&reply), "{reply:?}"),
                None => {}
            }
        }
        prop_assert_eq!(
            metrics.counter(esvm_obs::names::serve::PROTOCOL_ERRORS),
            errors,
            "every ERR reply is counted exactly once"
        );
    }

    /// Mutated streams that interleave DOWN/UP fault verbs never panic,
    /// never break the grammar, and leave the Eq. 7 telescoping
    /// invariant intact: committed = retired + Σ live ledger cost,
    /// bit-exactly, after every kind of corruption.
    #[test]
    fn mutated_fault_streams_conserve_energy(
        line in 0usize..10_000,
        field in 0usize..8,
        garbage in 0usize..GARBAGE.len(),
        mode in 0usize..4,
    ) {
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);

        let stream = mutate(&faulty_stream(14), line, field, garbage, mode);
        for request in &stream {
            if let Some(reply) = session.handle(request) {
                prop_assert!(
                    reply_is_well_formed(&reply),
                    "unexpected reply {reply:?} to {request:?}"
                );
            }
            // Conservation holds after *every* event, not just at the end.
            let engine = session.engine();
            let live: f64 = engine.ledgers().iter().map(|l| l.cost()).sum();
            prop_assert_eq!(
                engine.committed_cost().to_bits(),
                (engine.retired_cost() + live).to_bits(),
                "telescoping invariant broken after {:?}", request
            );
        }
        // Fault verbs still answer after the abuse.
        let down = session.handle("DOWN 0").expect("DOWN replies");
        prop_assert!(down.starts_with("DOWNED 0 "), "{down}");
        let up = session.handle("UP 0").expect("UP replies");
        prop_assert_eq!(up.as_str(), "UPPED 0");
    }

    /// Bounded admission: for any queue cap, a burst admits exactly
    /// `min(cap, len)` requests, sheds the rest with `ERR overloaded`,
    /// and shed ids remain admissible later (the engine never saw them).
    #[test]
    fn bursts_respect_any_queue_cap(cap in 0usize..12, burst_len in 1usize..16) {
        use esvm_exper::serve::ServeConfig;
        use esvm_simcore::{Interval, Vm};
        let metrics = MetricsRegistry::new();
        let servers = fleet();
        let mut session = ServeSession::new(&servers, &metrics, &NoopTracer)
            .with_config(ServeConfig { queue_cap: cap, ..ServeConfig::default() });
        let vms: Vec<Vm> = (0..burst_len as u32)
            .map(|i| Vm::new(i, Resources::new(0.5, 0.5), Interval::new(1, 4)))
            .collect();
        let replies = session.burst(vms);
        prop_assert_eq!(replies.len(), burst_len);
        let admitted = replies.iter().filter(|r| !r.starts_with("ERR overloaded")).count();
        prop_assert_eq!(admitted, cap.min(burst_len));
        prop_assert_eq!(
            metrics.counter(esvm_obs::names::serve::OVERLOADED),
            (burst_len - cap.min(burst_len)) as u64
        );
        // A shed id is not burned: it can be admitted at a calmer time.
        if cap < burst_len {
            let id = cap as u32; // first shed id
            let retry = session.handle(&format!("REQ {id} 2 3 0.5 0.5")).unwrap();
            prop_assert!(retry.starts_with(&format!("PLACED {id} ")), "{retry}");
        }
    }
}
