//! Torn-journal torture suite, mirroring the ESVT codec torture tests:
//! truncate a valid journal at **every** byte prefix and bit-flip
//! **every** byte, one at a time. Recovery must either reconstruct a
//! valid event-prefix state or fail with a typed [`JournalError`] —
//! never panic, never silently diverge from the prefix property.

use esvm_exper::journal::{
    recover_bytes, JournalError, JournalRecord, JournalWriter, Recovered,
};
use esvm_exper::serve::ServeSession;
use esvm_obs::{MetricsRegistry, NoopTracer};
use esvm_simcore::{Interval, PowerModel, Resources, ServerId, ServerSpec, Vm, VmId};

fn fleet() -> Vec<ServerSpec> {
    (0..3u32)
        .map(|i| {
            ServerSpec::new(
                i,
                Resources::new(8.0, 16.0),
                PowerModel::new(100.0 + f64::from(i), 200.0 + f64::from(i)),
                120.0,
            )
        })
        .collect()
}

/// A journal exercising every record type, built through a real
/// session so the records are mutually consistent.
fn build_journal(path: &std::path::Path) -> Vec<u8> {
    std::fs::remove_file(path).ok();
    let servers = fleet();
    let metrics = MetricsRegistry::new();
    let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
    session.set_journal(Some(JournalWriter::create(path, &servers, 0).unwrap()));
    for line in [
        "REQ 0 1 10 2.0 4.0",
        "REQ 1 1 10 8.0 16.0",
        "DOWN 1",
        "REQ 2 3 4 1.5 2.5",
        "UP 1",
        "REQ 3 4 6 4.0 4.0",
        "DRAIN",
    ] {
        session.handle(line);
    }
    session.finish().unwrap();
    std::fs::read(path).unwrap()
}

/// The reference recovery of the intact journal.
fn baseline(bytes: &[u8]) -> Recovered {
    let rec = recover_bytes(bytes).expect("intact journal recovers");
    assert_eq!(rec.torn_bytes, 0);
    assert!(rec.records.len() >= 8, "one per handled line + checkpoints");
    rec
}

/// Replays `records` through a fresh session; any typed error is fine,
/// a panic is not (the harness would abort the test).
fn replay_survives(servers: &[ServerSpec], records: &[JournalRecord]) {
    let metrics = MetricsRegistry::new();
    let mut session = ServeSession::new(servers, &metrics, &NoopTracer);
    let _ = session.replay(records);
}

#[test]
fn truncation_at_every_prefix_recovers_a_record_prefix_or_typed_error() {
    let path = std::env::temp_dir().join("esvj_torture_truncate.esvj");
    let bytes = build_journal(&path);
    let full = baseline(&bytes);
    for cut in 0..bytes.len() {
        match recover_bytes(&bytes[..cut]) {
            Ok(rec) => {
                // The record list must be an exact prefix of the intact
                // journal's — a torn tail may lose events, never invent
                // or reorder them.
                assert!(
                    rec.records.len() <= full.records.len(),
                    "cut {cut}: more records than the intact journal"
                );
                assert_eq!(
                    rec.records[..],
                    full.records[..rec.records.len()],
                    "cut {cut}: recovered records are not a prefix"
                );
                assert_eq!(rec.servers, full.servers, "cut {cut}");
                assert!(rec.valid_len as usize <= cut, "cut {cut}");
                replay_survives(&rec.servers, &rec.records);
            }
            // Header truncation is a typed error: a journal that ever
            // acknowledged a record has a durable header, so an
            // unreadable header is not a torn tail but real corruption.
            Err(e) => assert!(
                matches!(
                    e,
                    JournalError::BadMagic
                        | JournalError::BadVersion(_)
                        | JournalError::CorruptHeader(_)
                ),
                "cut {cut}: unexpected error {e:?}"
            ),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flips_at_every_byte_recover_a_valid_state_or_typed_error() {
    let path = std::env::temp_dir().join("esvj_torture_flip.esvj");
    let bytes = build_journal(&path);
    let full = baseline(&bytes);
    for pos in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= bit;
            match recover_bytes(&mutated) {
                Ok(rec) => {
                    // A flip the checksums caught truncates to a prefix;
                    // the fleet must be the intact one (header flips are
                    // caught by the header checksum and never get here).
                    assert_eq!(rec.servers, full.servers, "pos {pos} bit {bit:#x}");
                    assert!(
                        rec.records.len() <= full.records.len(),
                        "pos {pos} bit {bit:#x}"
                    );
                    // Every recovered record must decode to one the
                    // intact journal contains at the same index, except
                    // where the flip landed inside a record payload AND
                    // still checksummed — impossible for FNV-1a with a
                    // single-bit flip over the same length.
                    assert_eq!(
                        rec.records[..],
                        full.records[..rec.records.len()],
                        "pos {pos} bit {bit:#x}: silent divergence"
                    );
                    replay_survives(&rec.servers, &rec.records);
                }
                Err(e) => assert!(
                    matches!(
                        e,
                        JournalError::BadMagic
                            | JournalError::BadVersion(_)
                            | JournalError::CorruptHeader(_)
                            | JournalError::CorruptRecord { .. }
                    ),
                    "pos {pos} bit {bit:#x}: unexpected error {e:?}"
                ),
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tampered_records_that_still_decode_are_caught_by_the_checkpoint() {
    // Forge a journal whose records pass their frame checksums but
    // whose content lies about history: the checkpoint verification
    // must catch the divergence as a typed mismatch.
    let path = std::env::temp_dir().join("esvj_torture_forged.esvj");
    std::fs::remove_file(&path).ok();
    let servers = fleet();
    let mut w = JournalWriter::create(&path, &servers, 0).unwrap();
    w.append(&JournalRecord::Req(Vm::new(
        0,
        Resources::new(1.0, 1.0),
        Interval::new(1, 5),
    )))
    .unwrap();
    w.append(&JournalRecord::Checkpoint(esvm_exper::journal::Checkpoint {
        clock: 1,
        live: 2, // lie
        placed: 2,
        rejected: 0,
        departed: 0,
        evicted: 0,
        repaired: 0,
        committed_cost_bits: 0,
        retired_cost_bits: 0,
    }))
    .unwrap();
    w.sync().unwrap();
    drop(w);
    let rec = esvm_exper::journal::recover_file(&path).unwrap();
    let metrics = MetricsRegistry::new();
    let mut session = ServeSession::new(&rec.servers, &metrics, &NoopTracer);
    let err = session.replay(&rec.records).unwrap_err();
    assert!(
        matches!(err, JournalError::CheckpointMismatch { .. }),
        "{err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn fault_records_for_foreign_fleets_are_typed_corruption() {
    // A DOWN/UP record naming a server outside the header's fleet can
    // only come from tampering (the live session validates the verb
    // before journaling); replay must refuse it, typed.
    let path = std::env::temp_dir().join("esvj_torture_foreign.esvj");
    std::fs::remove_file(&path).ok();
    let servers = fleet();
    for record in [
        JournalRecord::Down {
            server: ServerId(99),
            retries: 3,
            backoff: 2,
        },
        JournalRecord::Up(ServerId(99)),
    ] {
        let mut w = JournalWriter::create(&path, &servers, 0).unwrap();
        w.append(&record).unwrap();
        w.sync().unwrap();
        drop(w);
        let rec = esvm_exper::journal::recover_file(&path).unwrap();
        let metrics = MetricsRegistry::new();
        let mut session = ServeSession::new(&rec.servers, &metrics, &NoopTracer);
        let err = session.replay(&rec.records).unwrap_err();
        assert!(
            matches!(err, JournalError::CorruptRecord { .. }),
            "{record:?} → {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn shed_records_replay_without_touching_the_engine() {
    let servers = fleet();
    let metrics = MetricsRegistry::new();
    let mut session = ServeSession::new(&servers, &metrics, &NoopTracer);
    let records = [
        JournalRecord::Req(Vm::new(0, Resources::new(1.0, 1.0), Interval::new(1, 4))),
        JournalRecord::Shed(VmId(1)),
        JournalRecord::Shed(VmId(2)),
    ];
    let report = session.replay(&records).unwrap();
    assert_eq!(report.sheds, 2);
    assert_eq!(session.engine().stats().arrivals, 1);
    assert_eq!(
        metrics.counter(esvm_obs::names::serve::OVERLOADED),
        2,
        "sheds restore the overload counter"
    );
}
