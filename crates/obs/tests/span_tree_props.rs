//! Property tests for the provenance tracer: span trees must stay
//! well-formed under arbitrary nesting, interleaved explain records,
//! and panics that unwind through open RAII guards mid-decision.

use esvm_obs::{CollectingTracer, DecisionKind, ExplainRecord, SpanId, Tracer};
use proptest::prelude::*;

/// A randomly generated instrumentation program. `Span` opens an RAII
/// guard around its children; `Explain` emits a record into whatever
/// span is innermost; `Panic` unwinds through every open guard.
#[derive(Debug, Clone)]
enum Node {
    Span(usize, bool, Vec<Node>),
    Explain(u64),
    Panic,
}

/// Span names are `&'static str` by design; programs index this pool.
const NAMES: [&str; 5] = ["run", "phase", "batch", "decision", "repair"];

/// Raw program material: a flat token stream the tests fold into a
/// tree by recursive descent (the vendored proptest stub has no
/// recursive strategies). Opcode 0–1 opens a span, 2–3 a lap span
/// (start reused from the last stamp), 4–5 closes the innermost one,
/// 6–8 emits an explain record, 9 panics.
fn tokens() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..10, 0u64..1000), 0..40)
}

fn build(stream: &mut std::slice::Iter<'_, (u8, u64)>, depth: usize) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some((op, val)) = stream.next() {
        match op {
            0..=3 if depth < 6 => {
                nodes.push(Node::Span(
                    (*val as usize) % NAMES.len(),
                    *op >= 2,
                    build(stream, depth + 1),
                ));
            }
            0..=3 | 6..=8 => nodes.push(Node::Explain(*val)),
            4..=5 => {
                if depth > 0 {
                    break;
                }
            }
            _ => nodes.push(Node::Panic),
        }
    }
    nodes
}

/// `Panic` nodes demoted to explain records, for the panic-free tests.
fn defuse(nodes: Vec<Node>) -> Vec<Node> {
    nodes
        .into_iter()
        .map(|n| match n {
            Node::Span(name, lap, children) => Node::Span(name, lap, defuse(children)),
            Node::Explain(vm) => Node::Explain(vm),
            Node::Panic => Node::Explain(0),
        })
        .collect()
}

fn exec(t: &CollectingTracer, nodes: &[Node]) {
    for node in nodes {
        match node {
            Node::Span(name, lap, children) => {
                let _guard =
                    if *lap { t.lap_span(NAMES[*name]) } else { t.span(NAMES[*name]) };
                exec(t, children);
            }
            Node::Explain(vm) => {
                t.explain(&ExplainRecord::new(DecisionKind::Place, *vm));
            }
            Node::Panic => panic!("injected mid-decision panic"),
        }
    }
}

fn count_spans(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Span(_, _, children) => 1 + count_spans(children),
            _ => 0,
        })
        .sum()
}

fn count_explains(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Span(_, _, children) => count_explains(children),
            Node::Explain(_) => 1,
            Node::Panic => 0,
        })
        .sum()
}

/// The invariants "every enter has a matching exit" and "nesting is
/// balanced", stated over the closed-span records.
fn assert_well_formed(t: &CollectingTracer) {
    assert_eq!(t.open_spans(), 0, "unclosed spans");
    let spans = t.spans();

    // Ids are unique and assigned densely in enter order from 1.
    let mut ids: Vec<u64> = spans.iter().map(|s| s.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), spans.len(), "duplicate span ids");
    if let Some(max) = ids.last() {
        assert_eq!(*max, spans.len() as u64, "ids not dense from 1");
    }

    for s in &spans {
        assert!(s.end_ns >= s.start_ns, "span {s:?} ends before it starts");
        if s.parent != SpanId::NONE {
            // The parent was entered earlier and encloses the child's
            // whole interval — balanced nesting.
            let parent = spans
                .iter()
                .find(|p| p.id == s.parent)
                .unwrap_or_else(|| panic!("span {s:?} has a dangling parent"));
            assert!(parent.id.0 < s.id.0, "parent entered after child");
            assert!(
                parent.start_ns <= s.start_ns && s.end_ns <= parent.end_ns,
                "child {s:?} escapes parent {parent:?}"
            );
        }
    }

    // Every closed span landed in exactly one latency histogram.
    let histogram_total: u64 = t.latencies().iter().map(|(_, s)| s.count).sum();
    assert_eq!(histogram_total, spans.len() as u64);

    // Explain records attach to a real (or no) span, at a time inside it.
    for e in t.explains() {
        if e.span != SpanId::NONE {
            let owner = spans
                .iter()
                .find(|s| s.id == e.span)
                .expect("explain attached to an unknown span");
            assert!(
                owner.start_ns <= e.ts_ns && e.ts_ns <= owner.end_ns,
                "explain at {} outside its span {owner:?}",
                e.ts_ns
            );
        }
    }
}

proptest! {
    #[test]
    fn span_trees_are_well_formed(stream in tokens()) {
        let nodes = defuse(build(&mut stream.iter(), 0));
        let t = CollectingTracer::new();
        exec(&t, &nodes);
        assert_well_formed(&t);
        prop_assert_eq!(t.spans().len(), count_spans(&nodes));
        prop_assert_eq!(t.explains().len(), count_explains(&nodes));
    }

    #[test]
    fn raii_guards_close_spans_across_panics(stream in tokens()) {
        let nodes = build(&mut stream.iter(), 0);
        let t = CollectingTracer::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec(&t, &nodes);
        }));
        // Panicked or not, unwinding through the guards leaves a
        // balanced tree: every entered span is closed exactly once.
        assert_well_formed(&t);
        if outcome.is_ok() {
            prop_assert_eq!(t.spans().len(), count_spans(&nodes));
        } else {
            prop_assert!(t.spans().len() <= count_spans(&nodes));
        }
    }

    #[test]
    fn exports_stay_structurally_valid(stream in tokens()) {
        let nodes = defuse(build(&mut stream.iter(), 0));
        let t = CollectingTracer::new();
        exec(&t, &nodes);
        let jsonl = t.to_jsonl();
        prop_assert_eq!(jsonl.lines().count(), t.spans().len() + t.explains().len());
        for line in jsonl.lines() {
            prop_assert!(
                line.starts_with('{') && line.ends_with('}'),
                "line is not a flat JSON object: {}",
                line
            );
        }
        let chrome = t.to_chrome_trace();
        prop_assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        prop_assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
    }
}
