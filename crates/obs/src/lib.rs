//! In-house observability layer for the esvm workspace.
//!
//! The paper's objective (Eq. 7) is a sum of three physically distinct
//! terms — run, idle and transition energy — and the allocation layers
//! (MIEC candidate scanning, local-search refinement, migration
//! consolidation) make thousands of micro-decisions per run. This crate
//! provides the two primitives the rest of the workspace uses to make
//! both visible without perturbing the hot paths:
//!
//! * a [`MetricsRegistry`] holding named counters, gauges and
//!   log2-bucketed histograms (with p50/p95/p99 quantiles), plus RAII
//!   [`SpanTimer`]s for wall-clock phases;
//! * a structured [`EventSink`] trait for per-decision records, with a
//!   [`JsonlWriter`] for machine-readable traces and an allocation-free
//!   [`NoopSink`] default;
//! * a [`Tracer`] trait for decision provenance — RAII hierarchical
//!   spans ([`trace::SpanGuard`]), per-placement [`ExplainRecord`]s,
//!   and per-span latency histograms, collected by
//!   [`CollectingTracer`] and exportable as query-friendly JSON Lines
//!   or Chrome `trace_event` JSON.
//!
//! Instrumented algorithms are generic over `S: EventSink` (and
//! `T: Tracer`) and guard every counter increment and record
//! construction behind the associated constants
//! [`EventSink::ENABLED`] / [`Tracer::ENABLED`]. Monomorphisation then
//! compiles the `NoopSink`/`NoopTracer` instantiation down to the
//! uninstrumented code — the disabled path has literally zero
//! observability instructions, which the `ledger` and `local_search`
//! benches pin against the recorded PR 2 numbers.
//!
//! The crate is dependency-free (the workspace builds offline) and
//! deliberately single-threaded: the registry uses interior mutability
//! via `RefCell` so call sites can share it immutably, and is therefore
//! not `Sync`. Experiment code instruments one representative seeded run
//! per configuration rather than the multi-threaded Monte-Carlo sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod names;
pub mod trace;

pub use events::{
    encode_json, DiscardSink, Event, EventSink, FieldValue, JsonlWriter, MemorySink, NoopSink,
};
pub use metrics::{HistogramSummary, Log2Histogram, MetricValue, MetricsRegistry, SpanTimer};
pub use trace::{
    CollectingTracer, DecisionKind, ExplainEntry, ExplainRecord, NoopTracer, SpanGuard, SpanId,
    SpanRecord, Tracer,
};
