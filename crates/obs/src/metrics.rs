//! Metrics registry: named counters, gauges and fixed-bucket
//! histograms, plus RAII span timers.
//!
//! The registry uses interior mutability (`RefCell`) so that a single
//! shared `&MetricsRegistry` can be threaded through call layers
//! without fighting the borrow checker; it is consequently not `Sync`
//! and is meant for single-threaded instrumented runs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Default histogram bucket upper bounds: decades from `1e-9` to
/// `1e9`, a spread wide enough for both span timers (seconds) and
/// energy deltas (watt-units).
pub const DEFAULT_BUCKETS: [f64; 19] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
    1e7, 1e8, 1e9,
];

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket collects everything above the last
/// bound.
#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Aggregate view of a histogram, for rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSummary {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A named metric value, as returned by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

impl MetricValue {
    /// Short kind label (`"counter"` / `"gauge"` / `"histogram"`).
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Human-readable rendering of the value alone.
    pub fn render(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => format!("{v:.6}"),
            MetricValue::Histogram(h) => format!(
                "n={} mean={:.6} min={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.min,
                h.max
            ),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Registry of named counters, gauges and fixed-bucket histograms.
///
/// Metric names are dot-namespaced by subsystem (`miec.candidates`,
/// `local_search.relocates_accepted`) and never contain commas, so they
/// embed safely in the CSV renderings of `esvm-analysis` tables.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RefCell<Inner>,
}

impl MetricsRegistry {
    /// An empty registry. Allocates nothing until the first metric is
    /// recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(c) = inner.counters.get_mut(name) {
            *c += delta;
        } else {
            inner.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(g) = inner.gauges.get_mut(name) {
            *g = value;
        } else {
            inner.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records `value` in the histogram `name`, creating it with
    /// [`DEFAULT_BUCKETS`] if needed.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &DEFAULT_BUCKETS, value);
    }

    /// Records `value` in the histogram `name`, creating it with the
    /// given inclusive upper `buckets` if it does not exist yet (the
    /// bounds of an existing histogram are kept).
    pub fn observe_with(&self, name: &str, buckets: &[f64], value: f64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new(buckets);
            h.record(value);
            inner.histograms.insert(name.to_owned(), h);
        }
    }

    /// Starts an RAII span timer; its wall-clock duration in seconds is
    /// recorded into the histogram `name` when the returned guard
    /// drops.
    pub fn span(&self, name: &str) -> SpanTimer<'_> {
        SpanTimer { registry: self, name: name.to_owned(), start: Instant::now() }
    }

    /// Current value of the counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Summary of the histogram `name`, if any value was recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner.borrow().histograms.get(name).map(Histogram::summary)
    }

    /// True when no metric of any kind has been recorded.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.borrow();
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }

    /// Every metric, sorted by name within kind (counters, then gauges,
    /// then histograms).
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let inner = self.inner.borrow();
        let mut rows = Vec::with_capacity(
            inner.counters.len() + inner.gauges.len() + inner.histograms.len(),
        );
        for (name, v) in &inner.counters {
            rows.push((name.clone(), MetricValue::Counter(*v)));
        }
        for (name, v) in &inner.gauges {
            rows.push((name.clone(), MetricValue::Gauge(*v)));
        }
        for (name, h) in &inner.histograms {
            rows.push((name.clone(), MetricValue::Histogram(h.summary())));
        }
        rows
    }

    /// Plain-text rendering: one aligned `name kind value` line per
    /// metric.
    pub fn render(&self) -> String {
        let rows = self.snapshot();
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            let _ = writeln!(out, "{name:<width$}  {:<9}  {}", value.kind(), value.render());
        }
        out
    }
}

/// RAII wall-clock timer handed out by [`MetricsRegistry::span`];
/// records elapsed seconds into its histogram on drop.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    registry: &'a MetricsRegistry,
    name: String,
    start: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.registry.observe(&self.name, self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.add("a.hits", 2);
        m.add("a.hits", 3);
        assert_eq!(m.counter("a.hits"), 5);
        assert_eq!(m.counter("a.misses"), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        m.set_gauge("energy.total", 1.0);
        m.set_gauge("energy.total", 4.5);
        assert_eq!(m.gauge("energy.total"), Some(4.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let m = MetricsRegistry::new();
        for v in [0.5, 1.0, 2.0, 1000.0] {
            m.observe_with("d", &[1.0, 10.0, 100.0], v);
        }
        let h = m.histogram("d").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1003.5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1000.0);
        assert!((h.mean() - 250.875).abs() < 1e-12);
    }

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(1.0); // first bucket (<= 1.0)
        h.record(1.5); // second bucket
        h.record(9.0); // overflow
        assert_eq!(h.counts, vec![1, 1, 1]);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let m = MetricsRegistry::new();
        {
            let _t = m.span("phase.seconds");
        }
        let h = m.histogram("phase.seconds").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn snapshot_orders_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.observe("h.x", 1.0);
        m.add("c.b", 1);
        m.add("c.a", 1);
        m.set_gauge("g.y", 2.0);
        let names: Vec<String> = m.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["c.a", "c.b", "g.y", "h.x"]);
        assert!(m.render().contains("counter"));
    }
}
