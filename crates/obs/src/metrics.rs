//! Metrics registry: named counters, gauges and log2-bucketed
//! histograms with quantiles, plus RAII span timers.
//!
//! The registry uses interior mutability (`RefCell`) so that a single
//! shared `&MetricsRegistry` can be threaded through call layers
//! without fighting the borrow checker; it is consequently not `Sync`
//! and is meant for single-threaded instrumented runs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Sub-buckets per power of two: bucket edges grow by a factor of
/// `2^(1/16) ≈ 1.044`, bounding the relative error of a reported
/// quantile to ±2.2% — HDR-histogram-style resolution at a fixed
/// 16 KiB per histogram.
const SUB_BUCKETS: usize = 16;
/// Smallest tracked exponent: values below `2^-60` (≈ 8.7e-19, well
/// under a nanosecond in seconds) collapse into the first bucket.
const MIN_EXP: i32 = -60;
/// Largest tracked exponent: values above `2^64` (≈ 1.8e19) collapse
/// into the last bucket.
const MAX_EXP: i32 = 64;
const N_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB_BUCKETS;

/// A log2-bucketed histogram: positive values land in geometric
/// buckets of width `2^(1/16)`; zero, negative and NaN values share a
/// dedicated underflow bucket (their exact contribution still lands in
/// `sum`/`min`/`max`). Quantiles come from a cumulative bucket walk —
/// the reported value is the geometric midpoint of the rank's bucket,
/// clamped to the exact observed `[min, max]`, so `quantile(1.0)` is
/// the exact maximum and every quantile has bounded relative error.
#[derive(Debug, Clone, Default)]
pub struct Log2Histogram {
    /// Lazily allocated positive-value buckets (`N_BUCKETS` once the
    /// first positive value arrives).
    counts: Vec<u64>,
    /// Values `<= 0` (and NaN), which have no log2 bucket.
    zero_or_less: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Log2Histogram {
    /// An empty histogram. Allocates its bucket array on first record.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            zero_or_less: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(value: f64) -> usize {
        let idx = (value.log2() - f64::from(MIN_EXP)) * SUB_BUCKETS as f64;
        if idx < 0.0 {
            0
        } else if idx >= N_BUCKETS as f64 {
            N_BUCKETS - 1
        } else {
            idx as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value > 0.0 {
            if self.counts.is_empty() {
                self.counts = vec![0; N_BUCKETS];
            }
            self.counts[Self::bucket_of(value)] += 1;
        } else {
            self.zero_or_less += 1;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest rank, with
    /// relative error bounded by the `2^(1/16)` bucket width; 0 when
    /// empty. `quantile(0.0)` and `quantile(1.0)` are the exact
    /// observed minimum and maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.zero_or_less;
        let mut rep = 0.0; // underflow-bucket representative
        if cum < rank {
            for (i, n) in self.counts.iter().enumerate() {
                cum += n;
                if cum >= rank {
                    let mid = (i as f64 + 0.5) / SUB_BUCKETS as f64 + f64::from(MIN_EXP);
                    rep = mid.exp2();
                    break;
                }
            }
        }
        rep.clamp(self.min, self.max)
    }

    /// Aggregate view with p50/p95/p99.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Aggregate view of a histogram, for rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty; exact).
    pub min: f64,
    /// Largest observation (0 when empty; exact).
    pub max: f64,
    /// Median, within the log2 bucket resolution (±2.2%).
    pub p50: f64,
    /// 95th percentile, within the log2 bucket resolution.
    pub p95: f64,
    /// 99th percentile, within the log2 bucket resolution.
    pub p99: f64,
}

impl HistogramSummary {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A named metric value, as returned by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

impl MetricValue {
    /// Short kind label (`"counter"` / `"gauge"` / `"histogram"`).
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Human-readable rendering of the value alone.
    pub fn render(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => format!("{v:.6}"),
            MetricValue::Histogram(h) => format!(
                "n={} mean={:.6} p50={:.6} p95={:.6} p99={:.6} min={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.min,
                h.max
            ),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

/// Registry of named counters, gauges and log2-bucketed histograms.
///
/// Metric names are dot-namespaced by subsystem (`miec.candidates`,
/// `local_search.relocates_accepted`) and never contain commas, so they
/// embed safely in the CSV renderings of `esvm-analysis` tables.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RefCell<Inner>,
}

impl MetricsRegistry {
    /// An empty registry. Allocates nothing until the first metric is
    /// recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(c) = inner.counters.get_mut(name) {
            *c += delta;
        } else {
            inner.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(g) = inner.gauges.get_mut(name) {
            *g = value;
        } else {
            inner.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records `value` in the histogram `name`, creating it if needed.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Log2Histogram::new();
            h.record(value);
            inner.histograms.insert(name.to_owned(), h);
        }
    }

    /// Starts an RAII span timer; its wall-clock duration in seconds is
    /// recorded into the histogram `name` when the returned guard
    /// drops.
    pub fn span(&self, name: &str) -> SpanTimer<'_> {
        SpanTimer { registry: self, name: name.to_owned(), start: Instant::now() }
    }

    /// Current value of the counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Summary of the histogram `name`, if any value was recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner.borrow().histograms.get(name).map(Log2Histogram::summary)
    }

    /// True when no metric of any kind has been recorded.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.borrow();
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }

    /// Every metric, sorted by name within kind (counters, then gauges,
    /// then histograms).
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let inner = self.inner.borrow();
        let mut rows = Vec::with_capacity(
            inner.counters.len() + inner.gauges.len() + inner.histograms.len(),
        );
        for (name, v) in &inner.counters {
            rows.push((name.clone(), MetricValue::Counter(*v)));
        }
        for (name, v) in &inner.gauges {
            rows.push((name.clone(), MetricValue::Gauge(*v)));
        }
        for (name, h) in &inner.histograms {
            rows.push((name.clone(), MetricValue::Histogram(h.summary())));
        }
        rows
    }

    /// Plain-text rendering: one aligned `name kind value` line per
    /// metric.
    pub fn render(&self) -> String {
        let rows = self.snapshot();
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            let _ = writeln!(out, "{name:<width$}  {:<9}  {}", value.kind(), value.render());
        }
        out
    }
}

/// RAII wall-clock timer handed out by [`MetricsRegistry::span`];
/// records elapsed seconds into its histogram on drop.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    registry: &'a MetricsRegistry,
    name: String,
    start: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.registry.observe(&self.name, self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.add("a.hits", 2);
        m.add("a.hits", 3);
        assert_eq!(m.counter("a.hits"), 5);
        assert_eq!(m.counter("a.misses"), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        m.set_gauge("energy.total", 1.0);
        m.set_gauge("energy.total", 4.5);
        assert_eq!(m.gauge("energy.total"), Some(4.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_summary_tracks_exact_moments() {
        let m = MetricsRegistry::new();
        for v in [0.5, 1.0, 2.0, 1000.0] {
            m.observe("d", v);
        }
        let h = m.histogram("d").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1003.5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1000.0);
        assert!((h.mean() - 250.875).abs() < 1e-12);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Log2Histogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        // Each quantile must land within the 2^(1/16) bucket width of
        // the exact nearest-rank answer.
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got / exact).log2().abs() <= 1.0 / SUB_BUCKETS as f64,
                "q={q}: got {got}, exact {exact}"
            );
        }
        // The extreme quantiles are exact: clamped to observed min/max.
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(0.0), 1.0);
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn zero_and_negative_values_share_the_underflow_bucket() {
        let mut h = Log2Histogram::new();
        h.record(0.0);
        h.record(-2.5);
        h.record(4.0);
        assert_eq!(h.count(), 3);
        let s = h.summary();
        assert_eq!(s.min, -2.5);
        assert_eq!(s.max, 4.0);
        // p50 rank 2 falls in the underflow bucket; its representative
        // 0.0 is within the observed range so it survives the clamp.
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn empty_histogram_summarises_to_zeros() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        let s = h.summary();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99),
            (0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn extreme_magnitudes_clamp_into_edge_buckets() {
        let mut h = Log2Histogram::new();
        h.record(1e-300);
        h.record(1e300);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        // Representatives overshoot the bucket range but the clamp to
        // observed extremes keeps quantiles inside [min, max].
        assert!(h.quantile(0.1) >= 1e-300);
        assert_eq!(h.summary().min, 1e-300);
    }

    #[test]
    fn render_includes_percentiles() {
        let m = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.observe("lat", v);
        }
        let rendered = m.render();
        for needle in ["n=4", "mean=2.5", "p50=", "p95=", "p99=", "min=1.0", "max=4.0"] {
            assert!(rendered.contains(needle), "{rendered}");
        }
    }

    #[test]
    fn span_timer_records_on_drop() {
        let m = MetricsRegistry::new();
        {
            let _t = m.span("phase.seconds");
        }
        let h = m.histogram("phase.seconds").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn snapshot_orders_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.observe("h.x", 1.0);
        m.add("c.b", 1);
        m.add("c.a", 1);
        m.set_gauge("g.y", 2.0);
        let names: Vec<String> = m.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["c.a", "c.b", "g.y", "h.x"]);
        assert!(m.render().contains("counter"));
    }
}
