//! Canonical metric names shared between emitters and consumers.
//!
//! Subsystems that record metrics from more than one crate keep the
//! names here so the emitting code, the CLI that renders snapshots, and
//! the tests that assert on counters can never drift apart.

/// Robustness metrics recorded by the chaos replay engine.
pub mod chaos {
    /// Counter: VM pieces displaced by server outages.
    pub const DISPLACED_VMS: &str = "chaos.displaced_vms";
    /// Counter: interval time units displaced by evictions.
    pub const DISPLACED_VM_MINUTES: &str = "chaos.displaced_vm_minutes";
    /// Counter: successful re-placements (repairs and redirections).
    pub const REPAIRS: &str = "chaos.repairs";
    /// Histogram: time units between displacement and re-placement.
    pub const REPAIR_LATENCY: &str = "chaos.repair_latency";
    /// Counter: displaced VMs whose remaining work was dropped.
    pub const SHED: &str = "chaos.shed";
    /// Counter: arrivals that could never be admitted anywhere.
    pub const REFUSED_ADMISSIONS: &str = "chaos.refused_admissions";
    /// Counter: forced recovery transitions attributable to faults.
    pub const EXTRA_TRANSITIONS: &str = "chaos.extra_transitions";
    /// Gauge: net Eq. 7 energy adjustment for forced transitions.
    pub const FAULT_TRANSITION_ENERGY: &str = "chaos.fault_transition_energy";
    /// Gauge: scheduled energy cost of the chaos run.
    pub const ENERGY_COST: &str = "chaos.energy_cost";
    /// Gauge: scheduled cost plus the forced-transition surcharge.
    pub const ENERGY_ADJUSTED_COST: &str = "chaos.energy_adjusted_cost";
    /// Gauge: cost of the intended fault-free offline assignment.
    pub const ENERGY_OFFLINE_COST: &str = "chaos.energy_offline_cost";
}

/// Metrics recorded by the online serving loop (`esvm serve`).
pub mod serve {
    /// Histogram: wall-clock per-decision latency in microseconds.
    pub const DECISION_US: &str = "serve.decision_us";
    /// Counter: well-formed `REQ` lines accepted into the event loop.
    pub const REQUESTS: &str = "serve.requests";
    /// Counter: requests answered `PLACED`.
    pub const PLACED: &str = "serve.placed";
    /// Counter: requests answered `REJECTED`.
    pub const REJECTED: &str = "serve.rejected";
    /// Counter: VMs whose capacity was freed by a departure event.
    pub const DEPARTED: &str = "serve.departed";
    /// Counter: lines answered with a typed `ERR` reply.
    pub const PROTOCOL_ERRORS: &str = "serve.protocol_errors";
    /// Counter: records appended to the write-ahead journal.
    pub const JOURNAL_APPENDS: &str = "serve.journal_appends";
    /// Counter: batched `fsync` barriers issued by the journal writer.
    pub const JOURNAL_FSYNCS: &str = "serve.journal_fsyncs";
    /// Gauge: wall-clock milliseconds spent replaying a journal on
    /// `--recover`.
    pub const RECOVERY_MS: &str = "serve.recovery_ms";
    /// Counter: VMs evicted by a live `DOWN` fault verb.
    pub const EVICTED: &str = "serve.evicted";
    /// Counter: requests shed by the bounded admission queue.
    pub const OVERLOADED: &str = "serve.overloaded";
}
