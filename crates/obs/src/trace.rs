//! Decision-provenance tracing: RAII hierarchical spans, per-placement
//! explain records, and per-span latency histograms.
//!
//! The paper's Eq. 7 argmin is opaque at runtime: the placement says
//! *what* MIEC chose but not *why* — which candidates were scanned,
//! what spec-class pruning discarded, which shard won, what the
//! decision cost in wall time. This module makes each decision
//! self-describing without perturbing the hot paths, using the same
//! zero-cost static dispatch as [`EventSink`](crate::EventSink):
//! instrumented algorithms are generic over `T: Tracer`, guard every
//! record construction behind the associated constant
//! [`Tracer::ENABLED`], and monomorphisation compiles the
//! [`NoopTracer`] instantiation down to the uninstrumented code.
//!
//! Three primitives:
//!
//! * **Spans** — hierarchical wall-clock intervals (phase → batch →
//!   decision) opened with [`Tracer::span`], closed by RAII when the
//!   returned [`SpanGuard`] drops (including during panic unwinding),
//!   carrying monotonic timestamps and parent ids.
//! * **Explain records** — one [`ExplainRecord`] per placement
//!   decision: the VM, how many candidates were scanned, how many the
//!   spec-class prune discarded, which shards were touched and
//!   re-scored, the winning server, the incremental-cost delta, and
//!   the floating-point-tie flag; under chaos, the repair/shed
//!   attribution (attempt count, replay time, evicted-from server).
//! * **Latency histograms** — every closed span's duration lands in a
//!   per-name [`Log2Histogram`], so p50/p95/p99/max decision latency
//!   is available without post-processing.
//!
//! The [`CollectingTracer`] buffers everything in memory and exports
//! two formats: flat JSON Lines (queryable with `esvm query`, one
//! object per span or explain record) and Chrome `trace_event` JSON,
//! loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).

use crate::events::push_json_string;
use crate::metrics::{HistogramSummary, Log2Histogram};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// Identifier of one span within a tracer. Ids are assigned in enter
/// order starting at 1; [`SpanId::NONE`] (0) is the parent of roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent parent: roots of the span forest point here.
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// What kind of decision an [`ExplainRecord`] explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// MIEC placed a VM on the winning server.
    Place,
    /// MIEC found no feasible server (admission control rejects).
    Reject,
    /// LocalSearch accepted a relocate move.
    Relocate,
    /// LocalSearch accepted a swap move.
    Swap,
    /// ChaosEngine re-placed a displaced VM after an outage.
    Repair,
    /// ChaosEngine shed a VM after exhausting retries.
    Shed,
    /// ChaosEngine refused an arrival admission under degradation.
    Refuse,
}

impl DecisionKind {
    /// Lower-case label used in exports (`"place"`, `"repair"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Place => "place",
            DecisionKind::Reject => "reject",
            DecisionKind::Relocate => "relocate",
            DecisionKind::Swap => "swap",
            DecisionKind::Repair => "repair",
            DecisionKind::Shed => "shed",
            DecisionKind::Refuse => "refuse",
        }
    }
}

/// Why one allocation decision came out the way it did.
///
/// Every field maps to a term of the paper's Eq. 7 argmin loop (see
/// MODEL.md): `candidates` is the number of servers actually scored,
/// `pruned` the asleep twins the spec-class prune skipped, `unfit` the
/// capacity failures, `winner`/`delta_cost` the argmin itself, and
/// `fp_tie` whether the optimised score tied the reference within
/// floating-point noise. Construct with struct-update syntax over
/// [`ExplainRecord::new`]. The chaos fields (`from`, `attempt`,
/// `time`) default to absent/zero outside replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainRecord {
    /// Decision kind (placement, move, repair, …).
    pub kind: DecisionKind,
    /// VM the decision is about (slot index).
    pub vm: u64,
    /// Servers actually scored by the argmin scan.
    pub candidates: u64,
    /// Asleep spec-class twins skipped by the prune.
    pub pruned: u64,
    /// Servers that failed the capacity check.
    pub unfit: u64,
    /// Shards whose ledgers the scan touched (1 on the sequential
    /// engine).
    pub shards: u64,
    /// Shards re-scored at commit because a batched placement dirtied
    /// them (0 on the sequential engine).
    pub rescored: u64,
    /// Shard that owns the winning server (0 on the sequential engine).
    pub shard: u64,
    /// Winning server, when the decision placed somewhere.
    pub winner: Option<u64>,
    /// Incremental Eq. 7 cost delta of the winning placement.
    pub delta_cost: f64,
    /// Whether the optimised score tied within FP noise (certified
    /// divergence from the reference oracle).
    pub fp_tie: bool,
    /// Server the VM was displaced from (chaos repair attribution).
    pub from: Option<u64>,
    /// Repair attempt number under chaos (0 = first try).
    pub attempt: u64,
    /// Replay time unit of the decision under chaos.
    pub time: Option<u64>,
}

impl ExplainRecord {
    /// A record of `kind` about `vm` with every other field zeroed —
    /// the base for struct-update construction at instrumentation
    /// sites.
    pub fn new(kind: DecisionKind, vm: u64) -> Self {
        Self {
            kind,
            vm,
            candidates: 0,
            pruned: 0,
            unfit: 0,
            shards: 0,
            rescored: 0,
            shard: 0,
            winner: None,
            delta_cost: 0.0,
            fp_tie: false,
            from: None,
            attempt: 0,
            time: None,
        }
    }
}

/// Destination for spans and explain records.
///
/// Mirrors [`EventSink`](crate::EventSink): implementations with
/// `ENABLED = true` receive everything; [`NoopTracer`] sets
/// `ENABLED = false`, and instrumented call sites guard explain-record
/// construction behind this constant so the disabled instantiation
/// compiles to the uninstrumented code. Span guards need no guard —
/// the noop `enter`/`exit` pair is inlined away.
///
/// Methods take `&self` (tracers use interior mutability) so a span
/// guard borrowing the tracer does not block nested spans or explain
/// records underneath it.
pub trait Tracer {
    /// Whether this tracer records anything at all.
    const ENABLED: bool = true;

    /// Opens a span named `name`; the caller must pass the returned id
    /// to [`Tracer::exit`]. Prefer [`Tracer::span`], which does so by
    /// RAII.
    fn enter(&self, name: &'static str) -> SpanId;

    /// Closes the span `id` (and any still-open children, which are
    /// closed at the same instant).
    fn exit(&self, id: SpanId);

    /// Records one decision explanation, attached to the innermost
    /// open span.
    fn explain(&self, record: &ExplainRecord);

    /// Like [`Tracer::enter`], but the span's start may reuse the
    /// tracer's most recent clock stamp instead of reading the clock
    /// again. Meant for back-to-back phases in a hot loop (decision
    /// after decision), where the previous span's end *is* this span's
    /// start; implementations without a stamp to reuse read the clock.
    fn enter_following(&self, name: &'static str) -> SpanId {
        self.enter(name)
    }

    /// Opens a span closed automatically when the returned guard
    /// drops — including during panic unwinding, so span trees stay
    /// balanced even when an allocator panics mid-decision.
    fn span(&self, name: &'static str) -> SpanGuard<'_, Self>
    where
        Self: Sized,
    {
        SpanGuard { id: self.enter(name), tracer: self }
    }

    /// RAII form of [`Tracer::enter_following`]: a span contiguous
    /// with the tracer's previous activity, at half the clock cost.
    fn lap_span(&self, name: &'static str) -> SpanGuard<'_, Self>
    where
        Self: Sized,
    {
        SpanGuard { id: self.enter_following(name), tracer: self }
    }
}

/// RAII guard returned by [`Tracer::span`]; closes its span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a, T: Tracer> {
    id: SpanId,
    tracer: &'a T,
}

impl<T: Tracer> SpanGuard<'_, T> {
    /// The guarded span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl<T: Tracer> Drop for SpanGuard<'_, T> {
    fn drop(&mut self) {
        self.tracer.exit(self.id);
    }
}

/// The statically disabled default tracer: guards compile to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&self, _name: &'static str) -> SpanId {
        SpanId::NONE
    }

    #[inline(always)]
    fn exit(&self, _id: SpanId) {}

    #[inline(always)]
    fn explain(&self, _record: &ExplainRecord) {}
}

/// One closed span: name, parent, and monotonic start/end nanoseconds
/// measured from the tracer's construction instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id (enter order, 1-based).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Static span name (`"miec.run"`, `"miec.decision"`, …).
    pub name: &'static str,
    /// Monotonic start, nanoseconds since tracer construction.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since tracer construction.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One explain record plus its position in the span tree and timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainEntry {
    /// Innermost span open when the record was emitted.
    pub span: SpanId,
    /// Monotonic timestamp, nanoseconds since tracer construction.
    pub ts_ns: u64,
    /// The decision explanation itself.
    pub record: ExplainRecord,
}

#[derive(Debug)]
struct OpenSpan {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start_ns: u64,
}

#[derive(Debug, Default)]
struct Collected {
    next_id: u64,
    // Most recent clock stamp taken by enter/exit. Explain records
    // inside an open span reuse it instead of reading the clock a
    // third time per decision: the stamp is at or after the innermost
    // span's start and at or before its eventual end, so containment
    // and monotonicity hold by construction.
    last_ns: u64,
    open: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    explains: Vec<ExplainEntry>,
}

/// An enabled tracer that buffers spans and explain records in memory
/// and tracks per-span-name duration histograms.
///
/// Like [`MetricsRegistry`](crate::MetricsRegistry) it uses interior
/// mutability and is not `Sync`: parallel engines trace from the
/// conductor thread only (where commits are serialised anyway), which
/// keeps the hot worker loops free of synchronisation.
#[derive(Debug)]
pub struct CollectingTracer {
    epoch: Instant,
    inner: RefCell<Collected>,
}

impl Default for CollectingTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingTracer {
    /// An empty tracer; timestamps count from this instant.
    pub fn new() -> Self {
        Self { epoch: Instant::now(), inner: RefCell::new(Collected::default()) }
    }

    /// Discards everything recorded so far and restarts the timestamp
    /// epoch, keeping the allocated buffers. Reusing one tracer across
    /// runs this way skips re-faulting the span/explain buffers, which
    /// is a real share of a cold tracer's first-run cost.
    pub fn reset(&mut self) {
        let inner = self.inner.get_mut();
        inner.next_id = 0;
        inner.last_ns = 0;
        inner.open.clear();
        inner.spans.clear();
        inner.explains.clear();
        self.epoch = Instant::now();
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        // Stays in u64 arithmetic (no u128 `as_nanos`): the tracer
        // lives minutes, not centuries.
        let d = self.epoch.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }

    /// All closed spans so far, in close order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.borrow().spans.clone()
    }

    /// All explain records so far, in emission order.
    pub fn explains(&self) -> Vec<ExplainEntry> {
        self.inner.borrow().explains.clone()
    }

    /// Number of spans entered but not yet exited.
    pub fn open_spans(&self) -> usize {
        self.inner.borrow().open.len()
    }

    /// Duration summary (with p50/p95/p99) for the span name, if any
    /// span of that name has closed.
    pub fn latency(&self, name: &str) -> Option<HistogramSummary> {
        let inner = self.inner.borrow();
        let mut hist = Log2Histogram::new();
        for s in inner.spans.iter().filter(|s| s.name == name) {
            hist.record(s.duration_ns() as f64 / 1e9);
        }
        (hist.summary().count > 0).then(|| hist.summary())
    }

    /// Duration summaries for every span name, sorted by name.
    ///
    /// Histograms are built lazily from the buffered span records (the
    /// per-decision hot path only stamps and pushes), so this walks
    /// every closed span — fine at report time, not meant per-decision.
    pub fn latencies(&self) -> Vec<(&'static str, HistogramSummary)> {
        let inner = self.inner.borrow();
        let mut hists: Vec<(&'static str, Log2Histogram)> = Vec::new();
        for s in &inner.spans {
            let hist = match hists.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, h)) => h,
                None => {
                    hists.push((s.name, Log2Histogram::new()));
                    &mut hists.last_mut().expect("just pushed").1
                }
            };
            hist.record(s.duration_ns() as f64 / 1e9);
        }
        hists.sort_unstable_by_key(|(name, _)| *name);
        hists.into_iter().map(|(name, h)| (name, h.summary())).collect()
    }

    /// Serialises every span and explain record as flat JSON Lines —
    /// the shape `esvm query` ingests. Explain lines come first (in
    /// emission order), then spans (in enter order), so provenance
    /// filters like `filter pruned gt 100` see a homogeneous prefix.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for e in &inner.explains {
            push_explain_jsonl(&mut out, e);
        }
        let mut spans = inner.spans.clone();
        spans.sort_by_key(|s| s.id);
        for s in &spans {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":",
                s.id.0, s.parent.0
            );
            push_json_string(&mut out, s.name);
            let _ = writeln!(
                out,
                ",\"start_us\":{},\"dur_us\":{}}}",
                json_f64(s.start_ns as f64 / 1e3),
                json_f64(s.duration_ns() as f64 / 1e3)
            );
        }
        out
    }

    /// Serialises the span forest (plus explain records as instant
    /// events) as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` or Perfetto. Timestamps are microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut spans = inner.spans.clone();
        spans.sort_by_key(|s| s.id);
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_string(&mut out, s.name);
            let _ = write!(
                out,
                ",\"cat\":\"esvm\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\
                 \"args\":{{\"id\":{},\"parent\":{}}}}}",
                json_f64(s.start_ns as f64 / 1e3),
                json_f64(s.duration_ns() as f64 / 1e3),
                s.id.0,
                s.parent.0
            );
        }
        for e in &inner.explains {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"explain:{}\",\"cat\":\"esvm\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{{",
                e.record.kind.as_str(),
                json_f64(e.ts_ns as f64 / 1e3)
            );
            push_explain_fields(&mut out, e);
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

impl Tracer for CollectingTracer {
    #[inline]
    fn enter(&self, name: &'static str) -> SpanId {
        let start_ns = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        inner.last_ns = start_ns;
        inner.next_id += 1;
        let id = SpanId(inner.next_id);
        let parent = inner.open.last().map_or(SpanId::NONE, |s| s.id);
        inner.open.push(OpenSpan { id, parent, name, start_ns });
        id
    }

    #[inline]
    fn enter_following(&self, name: &'static str) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        // Before any stamp exists there is nothing to be contiguous
        // with — take a real reading, as `enter` would.
        let start_ns = if inner.last_ns == 0 { self.now_ns() } else { inner.last_ns };
        inner.last_ns = start_ns;
        inner.next_id += 1;
        let id = SpanId(inner.next_id);
        let parent = inner.open.last().map_or(SpanId::NONE, |s| s.id);
        inner.open.push(OpenSpan { id, parent, name, start_ns });
        id
    }

    #[inline]
    fn exit(&self, id: SpanId) {
        let end_ns = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        inner.last_ns = end_ns;
        // Exits arrive in LIFO order under RAII; still-open children
        // (possible only through manual enter/exit misuse) are closed
        // at the same instant so the tree stays well-formed.
        let Some(pos) = inner.open.iter().rposition(|s| s.id == id) else {
            return;
        };
        while inner.open.len() > pos {
            let s = inner.open.pop().expect("len > pos");
            inner.spans.push(SpanRecord {
                id: s.id,
                parent: s.parent,
                name: s.name,
                start_ns: s.start_ns,
                end_ns,
            });
        }
    }

    #[inline]
    fn explain(&self, record: &ExplainRecord) {
        let mut inner = self.inner.borrow_mut();
        // Inside a span, reuse the enter/exit stamp (see `last_ns`);
        // a bare explain with no open span pays for a real clock read.
        let (span, ts_ns) = match inner.open.last() {
            Some(s) => (s.id, inner.last_ns),
            None => (SpanId::NONE, self.now_ns()),
        };
        inner.explains.push(ExplainEntry { span, ts_ns, record: *record });
    }
}

/// Shortest-roundtrip f64 rendering with non-finite values as `null`
/// (mirrors the event encoder).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn push_explain_fields(out: &mut String, e: &ExplainEntry) {
    let r = &e.record;
    let _ = write!(
        out,
        "\"kind\":\"{}\",\"vm\":{},\"candidates\":{},\"pruned\":{},\"unfit\":{},\
         \"shards\":{},\"rescored\":{},\"shard\":{},\"winner\":{},\"delta\":{},\
         \"fp_tie\":{}",
        r.kind.as_str(),
        r.vm,
        r.candidates,
        r.pruned,
        r.unfit,
        r.shards,
        r.rescored,
        r.shard,
        r.winner.map_or("null".to_owned(), |w| w.to_string()),
        json_f64(r.delta_cost),
        r.fp_tie,
    );
    if let Some(from) = r.from {
        let _ = write!(out, ",\"from\":{from}");
    }
    if r.attempt != 0 {
        let _ = write!(out, ",\"attempt\":{}", r.attempt);
    }
    if let Some(time) = r.time {
        let _ = write!(out, ",\"time\":{time}");
    }
    let _ = write!(out, ",\"span\":{}", e.span.0);
}

fn push_explain_jsonl(out: &mut String, e: &ExplainEntry) {
    out.push_str("{\"type\":\"explain\",");
    push_explain_fields(out, e);
    let _ = writeln!(out, ",\"ts_us\":{}}}", json_f64(e.ts_ns as f64 / 1e3));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_statically_disabled() {
        assert!(!<NoopTracer as Tracer>::ENABLED);
        assert!(<CollectingTracer as Tracer>::ENABLED);
        let t = NoopTracer;
        let g = t.span("x");
        assert!(g.id().is_none());
        t.explain(&ExplainRecord::new(DecisionKind::Place, 0));
    }

    #[test]
    fn spans_nest_and_close_in_raii_order() {
        let t = CollectingTracer::new();
        {
            let _run = t.span("run");
            {
                let _batch = t.span("batch");
                let _decision = t.span("decision");
            }
            assert_eq!(t.open_spans(), 1);
        }
        assert_eq!(t.open_spans(), 0);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        // Close order: decision, batch, run.
        assert_eq!(spans[0].name, "decision");
        assert_eq!(spans[1].name, "batch");
        assert_eq!(spans[2].name, "run");
        // Parent links form the chain run <- batch <- decision.
        assert_eq!(spans[2].parent, SpanId::NONE);
        assert_eq!(spans[1].parent, spans[2].id);
        assert_eq!(spans[0].parent, spans[1].id);
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn explain_attaches_to_innermost_open_span() {
        let t = CollectingTracer::new();
        let outer = t.span("outer");
        {
            let inner = t.span("inner");
            t.explain(&ExplainRecord {
                winner: Some(7),
                delta_cost: 1.5,
                ..ExplainRecord::new(DecisionKind::Place, 3)
            });
            assert_eq!(t.explains()[0].span, inner.id());
        }
        t.explain(&ExplainRecord::new(DecisionKind::Reject, 4));
        assert_eq!(t.explains()[1].span, outer.id());
        drop(outer);
        let e = &t.explains()[0];
        assert_eq!(e.record.vm, 3);
        assert_eq!(e.record.winner, Some(7));
        assert_eq!(e.record.delta_cost, 1.5);
    }

    #[test]
    fn guards_close_spans_during_panic_unwind() {
        let t = CollectingTracer::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _run = t.span("run");
            let _decision = t.span("decision");
            panic!("allocator exploded mid-decision");
        }));
        assert!(caught.is_err());
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn lap_spans_are_contiguous_with_previous_activity() {
        let t = CollectingTracer::new();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.lap_span("b");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        // b starts exactly where a ended: no clock read in between.
        assert_eq!(spans[1].start_ns, spans[0].end_ns);
        assert!(spans[1].end_ns >= spans[1].start_ns);

        // With no stamp to reuse, a lap span takes a real reading.
        let fresh = CollectingTracer::new();
        {
            let _first = fresh.lap_span("first");
        }
        let spans = fresh.spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }

    #[test]
    fn reset_clears_records_and_restarts_ids() {
        let mut t = CollectingTracer::new();
        {
            let _a = t.span("a");
            t.explain(&ExplainRecord::new(DecisionKind::Place, 1));
        }
        assert_eq!(t.spans().len(), 1);
        t.reset();
        assert_eq!(t.spans().len(), 0);
        assert_eq!(t.explains().len(), 0);
        assert_eq!(t.open_spans(), 0);
        {
            let _b = t.span("b");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].id, SpanId(1), "ids restart from 1 after reset");
    }

    #[test]
    fn manual_exit_closes_open_children() {
        let t = CollectingTracer::new();
        let run = t.enter("run");
        let _child = t.enter("child");
        t.exit(run); // child never exited explicitly
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.spans().len(), 2);
        // A second exit of the same id is a no-op.
        t.exit(run);
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn latency_histograms_track_per_name_durations() {
        let t = CollectingTracer::new();
        for _ in 0..10 {
            let _d = t.span("decision");
        }
        let summary = t.latency("decision").unwrap();
        assert_eq!(summary.count, 10);
        assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        assert!(summary.p99 <= summary.max || summary.count == 0);
        assert!(t.latency("missing").is_none());
        assert_eq!(t.latencies().len(), 1);
    }

    #[test]
    fn jsonl_export_is_flat_and_parseable() {
        let t = CollectingTracer::new();
        {
            let _run = t.span("miec.run");
            t.explain(&ExplainRecord {
                candidates: 500,
                pruned: 461,
                winner: Some(37),
                delta_cost: 1.25,
                from: Some(9),
                time: Some(42),
                attempt: 2,
                ..ExplainRecord::new(DecisionKind::Repair, 12)
            });
        }
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"explain\""), "{jsonl}");
        assert!(lines[0].contains("\"kind\":\"repair\""), "{jsonl}");
        assert!(lines[0].contains("\"pruned\":461"), "{jsonl}");
        assert!(lines[0].contains("\"winner\":37"), "{jsonl}");
        assert!(lines[0].contains("\"from\":9"), "{jsonl}");
        assert!(lines[0].contains("\"attempt\":2"), "{jsonl}");
        assert!(lines[0].contains("\"time\":42"), "{jsonl}");
        assert!(lines[1].starts_with("{\"type\":\"span\""), "{jsonl}");
        assert!(lines[1].contains("\"name\":\"miec.run\""), "{jsonl}");
        // Each line is a flat JSON object: single-level brace nesting.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), 1, "{line}");
        }
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let t = CollectingTracer::new();
        {
            let _run = t.span("run");
            let _d = t.span("decision");
            t.explain(&ExplainRecord::new(DecisionKind::Place, 1));
        }
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"name\":\"explain:place\""), "{json}");
        // Balanced braces and brackets (cheap well-formedness check;
        // the exper tests run a real parse).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
