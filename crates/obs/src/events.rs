//! Structured decision events and the sinks that receive them.
//!
//! An [`Event`] is a name plus a flat list of typed, named fields, all
//! borrowed — constructing one allocates nothing. Algorithms emit
//! events through a generic `S: EventSink` parameter and guard each
//! emission with `if S::ENABLED { ... }`; with [`NoopSink`] the guard
//! is a compile-time `false` and the whole block is removed by
//! monomorphisation.

use std::io::{self, Write};

/// A single typed field value carried by an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number (costs, deltas). Non-finite values encode
    /// as JSON `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Borrowed string (names, labels).
    Str(&'a str),
}

/// A structured event: a dot-namespaced name (`"miec.place"`) plus an
/// ordered list of named fields.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Event name, dot-namespaced by emitting subsystem.
    pub name: &'a str,
    /// Ordered `(key, value)` fields.
    pub fields: &'a [(&'a str, FieldValue<'a>)],
}

/// Destination for structured decision events.
///
/// Implementations with `ENABLED = true` receive every event; the
/// [`NoopSink`] sets `ENABLED = false`, and instrumented call sites
/// guard both event construction and metric updates behind this
/// constant so the disabled instantiation compiles to the
/// uninstrumented code.
pub trait EventSink {
    /// Whether this sink (and the metrics attached to the same
    /// instrumented call) records anything at all.
    const ENABLED: bool = true;

    /// Records one event.
    fn emit(&mut self, event: &Event<'_>);
}

/// The allocation-free default sink: statically disabled, never called.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: &Event<'_>) {}
}

/// An enabled sink that drops every event. Instrumentation (counters,
/// histograms) still runs — use this when metrics are wanted but an
/// event trace is not.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiscardSink;

impl EventSink for DiscardSink {
    #[inline(always)]
    fn emit(&mut self, _event: &Event<'_>) {}
}

/// Captures events as encoded JSON lines in memory. Intended for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// One JSON object per emitted event, in emission order.
    pub lines: Vec<String>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event<'_>) {
        self.lines.push(encode_json(event));
    }
}

/// Streams events as JSON Lines (one object per line) to any
/// [`Write`] destination. Wrap files in a `BufWriter`; the writer
/// itself does not buffer.
///
/// I/O errors are latched rather than panicking mid-algorithm: the
/// first error stops further writes and is surfaced by
/// [`JsonlWriter::finish`].
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer, written: 0, error: None }
    }

    /// Number of events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer, or the first I/O
    /// error encountered while emitting.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlWriter<W> {
    fn emit(&mut self, event: &Event<'_>) {
        if self.error.is_some() {
            return;
        }
        let mut line = encode_json(event);
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Encodes `event` as a single JSON object (no trailing newline):
/// `{"event":"miec.place","vm":3,"delta":12.5}`.
pub fn encode_json(event: &Event<'_>) -> String {
    let mut out = String::with_capacity(32 + 16 * event.fields.len());
    out.push_str("{\"event\":");
    push_json_string(&mut out, event.name);
    for (key, value) in event.fields {
        out.push(',');
        push_json_string(&mut out, key);
        out.push(':');
        push_json_value(&mut out, value);
    }
    out.push('}');
    out
}

fn push_json_value(out: &mut String, value: &FieldValue<'_>) {
    use std::fmt::Write as _;
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(s) => push_json_string(out, s),
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(fields: &'a [(&'a str, FieldValue<'a>)]) -> Event<'a> {
        Event { name: "test.event", fields }
    }

    #[test]
    fn encodes_every_field_type() {
        let fields = [
            ("u", FieldValue::U64(7)),
            ("i", FieldValue::I64(-3)),
            ("f", FieldValue::F64(2.5)),
            ("b", FieldValue::Bool(true)),
            ("s", FieldValue::Str("miec")),
        ];
        assert_eq!(
            encode_json(&sample(&fields)),
            r#"{"event":"test.event","u":7,"i":-3,"f":2.5,"b":true,"s":"miec"}"#
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite_floats() {
        let fields = [
            ("q", FieldValue::Str("a\"b\\c\nd")),
            ("nan", FieldValue::F64(f64::NAN)),
            ("inf", FieldValue::F64(f64::INFINITY)),
        ];
        assert_eq!(
            encode_json(&sample(&fields)),
            r#"{"event":"test.event","q":"a\"b\\c\nd","nan":null,"inf":null}"#
        );
    }

    #[test]
    fn jsonl_writer_streams_one_line_per_event() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.emit(&sample(&[("n", FieldValue::U64(1))]));
        sink.emit(&sample(&[("n", FieldValue::U64(2))]));
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with(r#""n":1}"#) && lines[1].ends_with(r#""n":2}"#));
    }

    #[test]
    fn noop_sink_is_statically_disabled() {
        assert!(!<NoopSink as EventSink>::ENABLED);
        assert!(<DiscardSink as EventSink>::ENABLED);
        assert!(<MemorySink as EventSink>::ENABLED);
    }

    #[test]
    fn memory_sink_captures_lines() {
        let mut sink = MemorySink::new();
        sink.emit(&sample(&[("x", FieldValue::Bool(false))]));
        assert_eq!(sink.lines, vec![r#"{"event":"test.event","x":false}"#.to_owned()]);
    }
}
