//! Property tests for `par_min_by` determinism (satellite 2).
//!
//! Random shard sizes and score orders must reproduce the sequential
//! strict-`<` argmin — the paper's Eq. 7 lowest-index tie-breaking —
//! under every thread count, including inputs engineered to contain
//! certified exact-FP ties like the ones PR 1's tie corpus certifies
//! in the MIEC scan.

use esvm_par::{par_min_by, Parallelism};
use proptest::prelude::*;

/// The sequential oracle: left-to-right strict-`<` fold.
fn sequential_argmin(scores: &[Option<f64>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, s) in scores.iter().enumerate() {
        if let Some(s) = *s {
            if best.is_none_or(|(_, b)| s < b) {
                best = Some((i, s));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random scores, all thread counts: identical to the sequential fold.
    #[test]
    fn random_scores_reproduce_sequential_argmin(
        raw in proptest::collection::vec(0u32..10_000, 1..400),
        threads in 1usize..9,
    ) {
        // Map through a division so scores are "awkward" floats, not
        // integers in disguise.
        let scores: Vec<Option<f64>> =
            raw.iter().map(|&v| Some(f64::from(v) / 7.0)).collect();
        let expected = sequential_argmin(&scores);
        let got = par_min_by(Parallelism::new(threads), scores.len(), |i| scores[i]);
        prop_assert_eq!(got, expected);
    }

    /// Certified-FP-tie inputs: quantize scores onto a tiny grid so
    /// exact duplicates (bit-identical f64 values) are common, then
    /// assert the lowest index still wins under every thread count.
    #[test]
    fn exact_fp_ties_break_to_lowest_index(
        raw in proptest::collection::vec(0u32..8, 2..300),
        threads in 2usize..9,
    ) {
        let scores: Vec<Option<f64>> =
            raw.iter().map(|&v| Some(f64::from(v) * 0.125)).collect();
        let expected = sequential_argmin(&scores);
        let got = par_min_by(Parallelism::new(threads), scores.len(), |i| scores[i]);
        prop_assert_eq!(got, expected);
        // The winner really is the first occurrence of its score bits.
        if let Some((idx, score)) = got {
            let first = scores
                .iter()
                .position(|s| s.map(f64::to_bits) == Some(score.to_bits()))
                .unwrap();
            prop_assert_eq!(idx, first);
        }
    }

    /// Sparse feasibility (many `None`s, like unfit servers in the MIEC
    /// scan) never perturbs the argmin.
    #[test]
    fn sparse_candidates_match_sequential(
        raw in proptest::collection::vec((0u32..50, 0u32..1000), 1..300),
        threads in 1usize..9,
    ) {
        let scores: Vec<Option<f64>> = raw
            .iter()
            .map(|&(feasible, v)| (feasible < 10).then(|| f64::from(v) / 3.0))
            .collect();
        let expected = sequential_argmin(&scores);
        let got = par_min_by(Parallelism::new(threads), scores.len(), |i| scores[i]);
        prop_assert_eq!(got, expected);
    }

    /// Shard-size robustness: the same input run at every thread count
    /// (hence every chunking) agrees with itself.
    #[test]
    fn all_chunkings_agree(
        raw in proptest::collection::vec(0u32..100, 1..200),
    ) {
        let scores: Vec<Option<f64>> =
            raw.iter().map(|&v| Some(f64::from(v) * 0.25)).collect();
        let baseline = par_min_by(Parallelism::sequential(), scores.len(), |i| scores[i]);
        for threads in 2..12usize {
            let got = par_min_by(Parallelism::new(threads), scores.len(), |i| scores[i]);
            prop_assert_eq!(got, baseline);
        }
    }
}
