//! Interleaving stress tests for the pool's gate primitives.
//!
//! The vendored-deps philosophy rules out `loom`, so these tests take
//! the classic substitute approach: hammer the generation gate with
//! many threads × many generations × awkward sizes and assert the
//! invariants that a bad interleaving would break — exactly-once chunk
//! execution, full quiescence between generations, and panic
//! propagation instead of deadlock.

use esvm_par::{scope, Parallelism};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Every item of every generation is executed exactly once, across a
/// stress grid of thread counts and sizes chosen to produce ragged
/// final chunks and near-empty generations.
#[test]
fn exactly_once_execution_across_generations() {
    for threads in [1usize, 2, 3, 4, 8] {
        let sizes = [1usize, 2, 5, 16, 17, 100, 255, 1000];
        let hits: Vec<Vec<AtomicU64>> = sizes
            .iter()
            .map(|&n| (0..n).map(|_| AtomicU64::new(0)).collect())
            .collect();
        let generation = AtomicUsize::new(0);
        scope(
            Parallelism::new(threads),
            |_chunk, range| {
                let g = generation.load(Ordering::Relaxed);
                for i in range {
                    hits[g][i].fetch_add(1, Ordering::Relaxed);
                }
            },
            |pool| {
                for (g, &n) in sizes.iter().enumerate() {
                    // dispatch() has quiesced all workers before it
                    // returns, so this non-atomic-looking protocol —
                    // bump the generation marker, then dispatch — is
                    // race-free, exactly like the callers' RwLock jobs.
                    generation.store(g, Ordering::Relaxed);
                    pool.dispatch(n);
                }
            },
        );
        for (g, row) in hits.iter().enumerate() {
            for (i, h) in row.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "threads={threads} generation={g} item={i}"
                );
            }
        }
    }
}

/// Workers are fully quiescent when `dispatch` returns: the conductor
/// may mutate unsynchronized-looking shared state (here a `Mutex` we
/// only lock on the conductor between generations — the worker reads
/// a snapshot copied before dispatch) without torn reads.
#[test]
fn dispatch_is_a_full_barrier() {
    // The job value changes every generation; if any worker were still
    // executing a stale generation's chunks after dispatch returned,
    // it would record a value from the wrong generation.
    let job = Mutex::new(0u64);
    let bad = AtomicU64::new(0);
    scope(
        Parallelism::new(4),
        |_chunk, range| {
            let expected = *job.lock().unwrap();
            for _ in range {
                if *job.lock().unwrap() != expected {
                    bad.fetch_add(1, Ordering::Relaxed);
                }
            }
        },
        |pool| {
            for g in 0..200u64 {
                *job.lock().unwrap() = g;
                pool.dispatch(97);
            }
        },
    );
    assert_eq!(bad.load(Ordering::Relaxed), 0);
}

/// Many consecutive empty dispatches neither wedge the gate nor count
/// as generations of work.
#[test]
fn empty_dispatches_are_noops() {
    let ran = AtomicU64::new(0);
    let stats = scope(
        Parallelism::new(4),
        |_chunk, range| {
            ran.fetch_add(range.len() as u64, Ordering::Relaxed);
        },
        |pool| {
            for _ in 0..1000 {
                pool.dispatch(0);
            }
            pool.dispatch(10);
            pool.stats()
        },
    );
    assert_eq!(ran.load(Ordering::Relaxed), 10);
    assert_eq!(stats.generations, 1);
}

/// Stats counters are internally consistent after a stress run.
#[test]
fn stats_account_for_all_chunks() {
    let stats = scope(
        Parallelism::new(4),
        |_chunk, _range| {},
        |pool| {
            let mut expected_chunks = 0u64;
            for n in [10usize, 1000, 3, 64, 999] {
                pool.dispatch(n);
                let (size, count) = Parallelism::new(4).chunking(n);
                assert!(size * count >= n);
                expected_chunks += count as u64;
            }
            let stats = pool.stats();
            assert_eq!(stats.chunks, expected_chunks);
            stats
        },
    );
    assert_eq!(stats.generations, 5);
    assert_eq!(stats.threads, 4);
    assert!(stats.steals <= stats.chunks);
    assert!(stats.imbalance >= 0.0);
}

/// A worker panic mid-generation surfaces as a conductor panic and the
/// scope still joins — repeatedly, to exercise different interleavings
/// of the poison flag with the wait loops.
#[test]
fn worker_panics_never_deadlock() {
    for round in 0..20u64 {
        let result = std::panic::catch_unwind(|| {
            scope(
                Parallelism::new(4),
                move |_chunk, range| {
                    if range.contains(&(round as usize % 50)) {
                        panic!("injected failure");
                    }
                },
                |pool| pool.dispatch(50),
            );
        });
        assert!(result.is_err(), "round {round} should have panicked");
    }
}

/// A panic in the *main body* (not a worker) still shuts the pool down
/// so the scope join does not hang on parked workers.
#[test]
fn main_body_panic_releases_workers() {
    let result = std::panic::catch_unwind(|| {
        scope(
            Parallelism::new(4),
            |_chunk, _range| {},
            |pool| {
                pool.dispatch(100);
                panic!("main body failure");
            },
        );
    });
    assert!(result.is_err());
}
