//! # esvm-par
//!
//! An in-house, zero-external-dependency scoped thread pool with
//! deterministic reductions, matching the vendored-deps philosophy of
//! the rest of the workspace.
//!
//! The design centre is the workspace's determinism contract: **every
//! parallel entry point must produce bit-identical results to the
//! sequential code it replaces, for every thread count.** The pieces:
//!
//! * [`Parallelism`] — the thread-count configuration every parallel
//!   entry point takes. The default (`threads = 1`) *is* the sequential
//!   code path; `ESVM_THREADS` configures it process-wide.
//! * [`scope`] — a generation-gated pool: one [`std::thread::scope`]
//!   per call, workers persist across *generations* (batches of chunked
//!   work) so per-item dispatch costs a condvar round-trip, not a
//!   thread spawn. The worker body is fixed at scope creation;
//!   per-generation work is passed as data (the callers use an
//!   [`std::sync::RwLock`]-guarded job struct), which keeps the whole
//!   crate inside `#![forbid(unsafe_code)]`.
//! * [`par_map`] — chunked map over a slice, results in input order.
//! * [`par_min_by`] — index-ordered argmin reduction: chunk-local
//!   minima are merged in ascending chunk order with the same strict
//!   `<` the sequential scans use, so the winner (and its lowest-index
//!   tie-breaking — the paper's Eq. 7 rule) is bit-for-bit the
//!   sequential answer.
//!
//! Work distribution inside a generation is dynamic (atomic chunk
//! claiming, so an imbalanced shard cannot stall the generation), but
//! *results* never depend on which thread claimed which chunk: every
//! reduction happens on the conductor thread in chunk order.
//! [`Conductor::stats`] reports generation/chunk/steal/imbalance
//! counters for the `esvm-obs` metrics the instrumented callers export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ops;
mod pool;
mod shard;

pub use config::{Parallelism, DEFAULT_BATCH};
pub use ops::{par_map, par_min_by};
pub use pool::{scope, Conductor, PoolStats};
pub use shard::ShardRouting;
