//! Contiguous shard routing for persistent-ownership parallel paths.
//!
//! The sharded allocation engines partition the server-id range
//! `[0, n)` into `k` contiguous, ascending shards: each worker owns a
//! shard of `ServerLedger`s for the whole run and only the owning
//! shard's results ever touch those ledgers. Contiguity is what makes
//! the deterministic reduction trivial — merging per-shard argmins in
//! ascending shard order *is* the sequential left-to-right fold,
//! including the lowest-id tie-break (the paper's Eq. 7 rule).
//!
//! The partition rule mirrors the pool's chunking: with `n = q·k + r`,
//! the first `r` shards hold `q + 1` ids, the rest hold `q`. Shard
//! sizes therefore differ by at most one, and every id belongs to
//! exactly one shard ([`ShardRouting::shard_of`] is the inverse of
//! [`ShardRouting::range`] — property-tested below).

use std::ops::Range;

/// A contiguous partition of the id range `[0, n_items)` into
/// `n_shards` ascending shards.
///
/// ```
/// use esvm_par::ShardRouting;
/// let routing = ShardRouting::new(10, 4); // sizes 3, 3, 2, 2
/// assert_eq!(routing.range(0), 0..3);
/// assert_eq!(routing.range(2), 6..8);
/// assert_eq!(routing.shard_of(7), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouting {
    n_items: usize,
    n_shards: usize,
    /// Base shard size `q = n_items / n_shards`.
    base: usize,
    /// Number of leading shards holding `q + 1` items.
    extra: usize,
}

impl ShardRouting {
    /// Partitions `[0, n_items)` into `n_shards` shards. The shard
    /// count is clamped to `[1, max(n_items, 1)]` so no shard is ever
    /// empty (except the single shard of an empty range).
    pub fn new(n_items: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.clamp(1, n_items.max(1));
        Self {
            n_items,
            n_shards,
            base: n_items / n_shards,
            extra: n_items % n_shards,
        }
    }

    /// Number of shards (≥ 1).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Total number of items partitioned.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The half-open id range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s >= n_shards()`.
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.n_shards, "shard {s} out of {}", self.n_shards);
        // The first `extra` shards hold `base + 1` items each.
        let start = s * self.base + s.min(self.extra);
        let len = self.base + usize::from(s < self.extra);
        start..start + len
    }

    /// The shard owning item `i` — the inverse of [`ShardRouting::range`].
    ///
    /// # Panics
    ///
    /// Panics when `i >= n_items()`.
    pub fn shard_of(&self, i: usize) -> usize {
        assert!(i < self.n_items, "item {i} out of {}", self.n_items);
        let wide = self.extra * (self.base + 1);
        if i < wide {
            i / (self.base + 1)
        } else {
            self.extra + (i - wide) / self.base
        }
    }

    /// Iterates `(shard, range)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        (0..self.n_shards).map(move |s| (s, self.range(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_counts_are_clamped() {
        assert_eq!(ShardRouting::new(10, 0).n_shards(), 1);
        assert_eq!(ShardRouting::new(3, 8).n_shards(), 3);
        assert_eq!(ShardRouting::new(0, 4).n_shards(), 1);
        assert_eq!(ShardRouting::new(0, 4).range(0), 0..0);
    }

    #[test]
    fn even_and_uneven_splits() {
        let even = ShardRouting::new(8, 4);
        assert_eq!(
            even.iter().map(|(_, r)| r).collect::<Vec<_>>(),
            vec![0..2, 2..4, 4..6, 6..8]
        );
        let uneven = ShardRouting::new(10, 3); // 4, 3, 3
        assert_eq!(
            uneven.iter().map(|(_, r)| r).collect::<Vec<_>>(),
            vec![0..4, 4..7, 7..10]
        );
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for n in [1usize, 2, 7, 100, 1001] {
            for k in [1usize, 2, 3, 8, 64] {
                let routing = ShardRouting::new(n, k);
                let sizes: Vec<usize> =
                    routing.iter().map(|(_, r)| r.len()).collect();
                let (min, max) = (
                    *sizes.iter().min().unwrap(),
                    *sizes.iter().max().unwrap(),
                );
                assert!(max - min <= 1, "n={n} k={k} sizes={sizes:?}");
                assert!(min >= 1, "n={n} k={k}: empty shard");
            }
        }
    }

    proptest! {
        /// The ISSUE-mandated partition property: for arbitrary item
        /// and shard counts, every item is owned by exactly one shard,
        /// ranges are contiguous and ascending, and `shard_of` inverts
        /// `range`.
        #[test]
        fn routing_is_a_partition(n in 0usize..4096, k in 0usize..128) {
            let routing = ShardRouting::new(n, k);
            let mut next = 0usize;
            for (s, range) in routing.iter() {
                // Contiguous and ascending: each range starts where
                // the previous one ended.
                prop_assert_eq!(range.start, next);
                next = range.end;
                for i in range {
                    prop_assert_eq!(routing.shard_of(i), s);
                }
            }
            // Covers the whole id range exactly.
            prop_assert_eq!(next, n);
        }
    }
}
