//! Deterministic parallel operations built on the pool.
//!
//! Both operations guarantee results *identical to the sequential loop*
//! for every thread count: [`par_map`] writes each result into its
//! input-index slot, and [`par_min_by`] merges chunk-local minima in
//! ascending chunk order with the same strict `<` the sequential scans
//! use — so the argmin, including its lowest-index tie-breaking (the
//! paper's Eq. 7 rule), is bit-for-bit the sequential answer.

use crate::config::Parallelism;
use crate::pool::scope;
use std::sync::Mutex;

/// Maps `f` over `items` on the pool, returning results in input order.
///
/// `f` receives `(index, &item)` so callers can derive per-item state
/// (an RNG stream, a seed) from the position rather than the thread.
/// With a sequential [`Parallelism`] this is a plain in-order loop.
///
/// # Example
///
/// ```
/// use esvm_par::{par_map, Parallelism};
/// let squares = par_map(Parallelism::new(4), &[1u64, 2, 3, 4], |_i, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if par.is_sequential() || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    scope(
        par,
        |_chunk, range| {
            for i in range {
                let result = f(i, &items[i]);
                *slots[i].lock().expect("par_map slot poisoned") = Some(result);
            }
        },
        |pool| pool.dispatch(items.len()),
    );
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("par_map slot poisoned")
                .expect("par_map slot unfilled")
        })
        .collect()
}

/// Strict-`<` argmin over `score(0..n)`, identical to the sequential
/// left-to-right fold: the winner is the **lowest index** achieving the
/// minimum score, and `None`-scored indices are skipped.
///
/// Each chunk folds locally with strict `<` (so within a chunk the
/// lowest index wins ties), then the conductor merges chunk minima in
/// ascending chunk order, again with strict `<` — equal scores never
/// displace an earlier winner. NaN scores are skipped like the
/// sequential scans skip them (`NaN < x` and `x < NaN` are both false).
///
/// Returns `(index, score)` of the winner, or `None` if no index
/// produced a score.
///
/// # Example
///
/// ```
/// use esvm_par::{par_min_by, Parallelism};
/// let scores = [3.0f64, 1.0, 1.0, 2.0];
/// let best = par_min_by(Parallelism::new(4), scores.len(), |i| Some(scores[i]));
/// assert_eq!(best, Some((1, 1.0))); // lowest index wins the tie
/// ```
pub fn par_min_by<F>(par: Parallelism, n: usize, score: F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> Option<f64> + Sync,
{
    if par.is_sequential() || n <= 1 {
        return sequential_min(n, &score);
    }
    let (_, n_chunks) = par.chunking(n);
    let slots: Vec<Mutex<Option<(usize, f64)>>> =
        (0..n_chunks).map(|_| Mutex::new(None)).collect();
    scope(
        par,
        |chunk, range| {
            let mut best: Option<(usize, f64)> = None;
            for i in range {
                if let Some(s) = score(i) {
                    if best.is_none_or(|(_, b)| s < b) {
                        best = Some((i, s));
                    }
                }
            }
            *slots[chunk].lock().expect("par_min_by slot poisoned") = best;
        },
        |pool| pool.dispatch(n),
    );
    // Merge in ascending chunk order: chunk c's indices all precede
    // chunk c+1's, so strict `<` here reproduces the left-to-right
    // sequential fold exactly, ties and all.
    let mut best: Option<(usize, f64)> = None;
    for slot in slots {
        if let Some((i, s)) = slot.into_inner().expect("par_min_by slot poisoned") {
            if best.is_none_or(|(_, b)| s < b) {
                best = Some((i, s));
            }
        }
    }
    best
}

fn sequential_min<F>(n: usize, score: &F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> Option<f64>,
{
    let mut best: Option<(usize, f64)> = None;
    for i in 0..n {
        if let Some(s) = score(i) {
            if best.is_none_or(|(_, b)| s < b) {
                best = Some((i, s));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1usize, 2, 4, 8] {
            let items: Vec<u64> = (0..123).collect();
            let out = par_map(Parallelism::new(threads), &items, |i, x| x * 2 + i as u64);
            let expected: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 2 + i as u64).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::new(4), &empty, |_i, x| *x).is_empty());
        assert_eq!(par_map(Parallelism::new(4), &[7u32], |_i, x| *x), vec![7]);
    }

    #[test]
    fn par_min_by_matches_sequential_fold() {
        let scores: Vec<f64> = (0..500)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f64 / 7.0)
            .collect();
        let expected = sequential_min(scores.len(), &|i| Some(scores[i]));
        for threads in [1usize, 2, 3, 4, 8] {
            let got = par_min_by(Parallelism::new(threads), scores.len(), |i| Some(scores[i]));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_min_by_lowest_index_wins_ties() {
        // Exact FP duplicates — the tie rule must pick index 3, the
        // first occurrence, under every thread count.
        let scores = [9.0f64, 8.5, 9.0, 1.25, 7.0, 1.25, 1.25, 2.0];
        for threads in [1usize, 2, 4, 8] {
            let got = par_min_by(Parallelism::new(threads), scores.len(), |i| Some(scores[i]));
            assert_eq!(got, Some((3, 1.25)), "threads={threads}");
        }
    }

    #[test]
    fn par_min_by_skips_none_and_handles_all_none() {
        let scores = [None, Some(4.0f64), None, Some(3.0), None];
        for threads in [1usize, 2, 4] {
            let got = par_min_by(Parallelism::new(threads), scores.len(), |i| scores[i]);
            assert_eq!(got, Some((3, 3.0)), "threads={threads}");
        }
        let got = par_min_by(Parallelism::new(4), 10, |_i| None);
        assert_eq!(got, None);
    }
}
