//! The generation-gated scoped pool.
//!
//! One [`scope`] call spawns `threads − 1` workers inside a
//! [`std::thread::scope`] and hands the caller a [`Conductor`]. Each
//! [`Conductor::dispatch`] is one *generation*: the item range is cut
//! into chunks ([`Parallelism::chunking`]), workers (and the conductor
//! thread itself) claim chunks from a shared atomic counter and run the
//! worker body on each, and `dispatch` returns only when every chunk of
//! the generation has been executed and every worker has quiesced.
//!
//! That last point is the safety hinge: because the conductor only
//! regains control while *all* workers are parked between generations,
//! it may freely mutate the shared job state (the callers use an
//! `RwLock` written only between generations) without data races, and a
//! chunk claim can never leak across generations.
//!
//! A panic in the worker body poisons the gate instead of deadlocking
//! it: the dying worker flags the state and wakes everyone, the
//! conductor re-raises, and the scope join propagates the original
//! panic.

use crate::config::Parallelism;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Pool health/shape counters, for the `*.par.*` metrics the
/// instrumented callers export through `esvm-obs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// Configured thread count (workers + conductor).
    pub threads: usize,
    /// Generations dispatched so far.
    pub generations: u64,
    /// Chunks executed so far, across all generations and threads.
    pub chunks: u64,
    /// Chunks executed by a thread other than their round-robin home
    /// (`chunk_index % threads`) — how often dynamic claiming actually
    /// rebalanced work.
    pub steals: u64,
    /// Relative overload of the busiest thread:
    /// `max_chunks / mean_chunks − 1` (0 when perfectly balanced or
    /// when nothing ran).
    pub imbalance: f64,
}

#[derive(Debug, Default)]
struct GateState {
    /// Monotone generation counter; workers wait for it to advance.
    generation: u64,
    /// Items in the current generation.
    n_items: usize,
    /// Chunk size of the current generation.
    chunk_size: usize,
    /// Chunk count of the current generation.
    n_chunks: usize,
    /// Workers that have finished claiming for the current generation.
    workers_done: usize,
    /// Tells workers to exit their wait loop.
    shutdown: bool,
    /// Set by a panicking worker so the conductor can re-raise instead
    /// of waiting forever.
    poisoned: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<GateState>,
    /// Workers wait here for a new generation (or shutdown).
    start: Condvar,
    /// The conductor waits here for `workers_done == n_workers`.
    done: Condvar,
    /// Next unclaimed chunk of the current generation.
    next_chunk: AtomicUsize,
    /// Chunks executed per participant (workers first, conductor last).
    executed: Vec<AtomicU64>,
    steals: AtomicU64,
    n_workers: usize,
}

impl Shared {
    fn new(n_workers: usize) -> Self {
        Self {
            state: Mutex::new(GateState {
                // Workers start quiescent, as if a generation just ended.
                workers_done: n_workers,
                ..GateState::default()
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            next_chunk: AtomicUsize::new(0),
            executed: (0..=n_workers).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
            n_workers,
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        // A worker that panicked *while holding the lock* cannot exist
        // (the pool never panics under the lock), but the body may have
        // poisoned some unrelated mutex; recover defensively anyway.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// On unwind, poisons the gate and wakes both sides so neither the
/// conductor nor the surviving workers deadlock on a dead peer.
struct PoisonGuard<'s> {
    shared: &'s Shared,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut st = self.shared.lock();
            st.poisoned = true;
            st.shutdown = true;
            drop(st);
            self.shared.start.notify_all();
            self.shared.done.notify_all();
        }
    }
}

/// On leaving the scope (normally or by unwind), tells workers to exit
/// so the thread scope can join them.
struct ShutdownGuard<'s> {
    shared: &'s Shared,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.shutdown = true;
        drop(st);
        self.shared.start.notify_all();
    }
}

/// Claims and executes chunks of the current generation until the
/// counter is exhausted. Chunk claims are dynamic; results must not
/// (and, for every caller in this workspace, do not) depend on which
/// participant executed which chunk.
fn claim_chunks<W>(
    shared: &Shared,
    body: &W,
    participant: usize,
    n_chunks: usize,
    chunk_size: usize,
    n_items: usize,
) where
    W: Fn(usize, Range<usize>) + Sync,
{
    let n_participants = shared.n_workers + 1;
    loop {
        let chunk = shared.next_chunk.fetch_add(1, Ordering::Relaxed);
        if chunk >= n_chunks {
            return;
        }
        let lo = chunk * chunk_size;
        let hi = ((chunk + 1) * chunk_size).min(n_items);
        body(chunk, lo..hi);
        shared.executed[participant].fetch_add(1, Ordering::Relaxed);
        if chunk % n_participants != participant {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop<W>(shared: &Shared, body: &W, participant: usize)
where
    W: Fn(usize, Range<usize>) + Sync,
{
    let _poison = PoisonGuard { shared };
    let mut seen_generation = 0u64;
    loop {
        let (n_items, chunk_size, n_chunks);
        {
            let mut st = shared.lock();
            while !st.shutdown && st.generation == seen_generation {
                st = match shared.start.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            if st.shutdown {
                return;
            }
            seen_generation = st.generation;
            n_items = st.n_items;
            chunk_size = st.chunk_size;
            n_chunks = st.n_chunks;
        }
        claim_chunks(shared, body, participant, n_chunks, chunk_size, n_items);
        let mut st = shared.lock();
        st.workers_done += 1;
        if st.workers_done == shared.n_workers {
            drop(st);
            shared.done.notify_all();
        }
    }
}

/// Handle for dispatching generations onto the pool; see [`scope`].
#[derive(Debug)]
pub struct Conductor<'s, W> {
    shared: &'s Shared,
    body: &'s W,
    par: Parallelism,
}

impl<W> Conductor<'_, W>
where
    W: Fn(usize, Range<usize>) + Sync,
{
    /// Runs one generation over `n_items` items and blocks until every
    /// chunk has executed **and every worker has quiesced** — on
    /// return, data the worker body reads may be mutated freely until
    /// the next `dispatch`.
    ///
    /// The worker body receives `(chunk_index, item_range)` with ranges
    /// tiling `0..n_items` exactly once, per [`Parallelism::chunking`].
    /// The conductor thread participates in chunk claiming, so
    /// `threads == 1` degenerates to an in-order sequential loop with
    /// no synchronization beyond one uncontended mutex lock.
    ///
    /// # Panics
    ///
    /// Re-raises (as a conductor panic) if a worker panicked during the
    /// generation.
    pub fn dispatch(&self, n_items: usize) {
        let (chunk_size, n_chunks) = self.par.chunking(n_items);
        if n_chunks == 0 {
            return;
        }
        let n_workers = self.shared.n_workers;
        {
            let mut st = self.shared.lock();
            debug_assert_eq!(st.workers_done, n_workers, "dispatch while workers active");
            st.generation += 1;
            st.n_items = n_items;
            st.chunk_size = chunk_size;
            st.n_chunks = n_chunks;
            st.workers_done = 0;
            self.shared.next_chunk.store(0, Ordering::Relaxed);
        }
        self.shared.start.notify_all();
        // The conductor claims chunks too (participant index
        // `n_workers`): on a loaded machine this guarantees progress
        // even if every worker is descheduled.
        claim_chunks(
            self.shared,
            self.body,
            n_workers,
            n_chunks,
            chunk_size,
            n_items,
        );
        let mut st = self.shared.lock();
        while st.workers_done < n_workers && !st.poisoned {
            st = match self.shared.done.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        if st.poisoned {
            st.shutdown = true;
            drop(st);
            self.shared.start.notify_all();
            panic!("esvm-par: a worker thread panicked during dispatch");
        }
    }

    /// Pool counters accumulated since the scope started.
    pub fn stats(&self) -> PoolStats {
        let generations = self.shared.lock().generation;
        let counts: Vec<u64> = self
            .shared
            .executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let chunks: u64 = counts.iter().sum();
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = chunks as f64 / counts.len() as f64;
        PoolStats {
            threads: self.par.threads(),
            generations,
            chunks,
            steals: self.shared.steals.load(Ordering::Relaxed),
            imbalance: if chunks == 0 { 0.0 } else { max as f64 / mean - 1.0 },
        }
    }
}

/// Runs `main_body` with a pool of `par.threads() − 1` workers all
/// executing `worker_body` on the chunks of each dispatched generation.
///
/// The worker body is fixed for the lifetime of the scope — this is
/// what keeps the pool expressible in safe Rust. Callers that need
/// per-generation variability (a different VM to score, a different
/// move batch) route it *as data* through shared state the body reads
/// (typically `RwLock<Job>`), written by the conductor between
/// dispatches, when [`Conductor::dispatch`]'s quiescence guarantee
/// makes that race-free.
///
/// With `threads == 1` no threads are spawned and `main_body` runs with
/// a conductor whose dispatches execute chunks inline, in order.
///
/// # Example
///
/// ```
/// use esvm_par::{scope, Parallelism};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
/// scope(
///     Parallelism::new(4),
///     |_chunk, range| {
///         for i in range {
///             hits[i].fetch_add(1, Ordering::Relaxed);
///         }
///     },
///     |pool| {
///         pool.dispatch(100);
///         pool.dispatch(100);
///     },
/// );
/// assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
/// ```
pub fn scope<W, M, R>(par: Parallelism, worker_body: W, main_body: M) -> R
where
    W: Fn(usize, Range<usize>) + Sync,
    M: FnOnce(&Conductor<'_, W>) -> R,
{
    let n_workers = par.threads() - 1;
    let shared = Shared::new(n_workers);
    let conductor = Conductor {
        shared: &shared,
        body: &worker_body,
        par,
    };
    if n_workers == 0 {
        return main_body(&conductor);
    }
    std::thread::scope(|s| {
        for participant in 0..n_workers {
            let shared = &shared;
            let body = &worker_body;
            s.spawn(move || worker_loop(shared, body, participant));
        }
        let _shutdown = ShutdownGuard { shared: &shared };
        main_body(&conductor)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_chunk_range_tiles_the_items_exactly_once() {
        for threads in [1usize, 2, 4] {
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            scope(
                Parallelism::new(threads),
                |_c, range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                },
                |pool| pool.dispatch(hits.len()),
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn generations_reuse_the_same_workers() {
        let counter = AtomicU64::new(0);
        let stats = scope(
            Parallelism::new(3),
            |_c, range| {
                counter.fetch_add(range.len() as u64, Ordering::Relaxed);
            },
            |pool| {
                for n in [0usize, 1, 5, 64] {
                    pool.dispatch(n);
                }
                pool.stats()
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 70);
        // dispatch(0) is a no-op generation.
        assert_eq!(stats.generations, 3);
        assert!(stats.chunks >= 3);
        assert_eq!(stats.threads, 3);
        assert!(stats.imbalance >= 0.0);
    }

    #[test]
    fn sequential_scope_runs_inline_and_in_order() {
        let seen = Mutex::new(Vec::new());
        scope(
            Parallelism::sequential(),
            |chunk, range| seen.lock().unwrap().push((chunk, range)),
            |pool| pool.dispatch(10),
        );
        let seen = seen.into_inner().unwrap();
        // Chunks arrive in ascending order and tile 0..10.
        assert!(seen.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert_eq!(seen.first().unwrap().1.start, 0);
        assert_eq!(seen.last().unwrap().1.end, 10);
    }

    #[test]
    fn scope_returns_the_main_body_result() {
        let r = scope(Parallelism::new(2), |_c, _r| {}, |_pool| 42usize);
        assert_eq!(r, 42);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            scope(
                Parallelism::new(4),
                |_c, range| {
                    if range.contains(&13) {
                        panic!("boom");
                    }
                },
                |pool| {
                    // Several generations: whichever thread hits item 13
                    // poisons the gate; dispatch must re-raise rather
                    // than hang.
                    for _ in 0..8 {
                        pool.dispatch(100);
                    }
                },
            );
        });
        assert!(result.is_err());
    }
}
