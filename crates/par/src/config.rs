//! Thread-count configuration shared by every parallel entry point.

/// Average number of chunks each thread should see per generation.
/// More chunks than threads lets the dynamic claiming absorb shard
/// imbalance; the constant is small so tiny inputs stay in one chunk.
pub(crate) const CHUNKS_PER_THREAD: usize = 4;

/// Thread-count configuration for a parallel entry point.
///
/// The default — [`Parallelism::sequential`], one thread — makes every
/// parallel code path *be* the sequential one (no pool, no locks, plain
/// in-order loops). Results are identical for every thread count by
/// construction; only wall-clock changes.
///
/// # Example
///
/// ```
/// use esvm_par::Parallelism;
/// assert_eq!(Parallelism::default(), Parallelism::sequential());
/// assert_eq!(Parallelism::new(4).threads(), 4);
/// assert_eq!(Parallelism::new(0).threads(), 1); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// One thread: the sequential code path, today's behaviour.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Reads the `ESVM_THREADS` environment variable:
    ///
    /// * unset or unparsable → [`Parallelism::sequential`] (the safe
    ///   default — parallelism is strictly opt-in);
    /// * `0` → all available cores;
    /// * `N ≥ 1` → exactly `N` threads.
    pub fn from_env() -> Self {
        match std::env::var("ESVM_THREADS") {
            Ok(value) => Self::parse_env(&value),
            Err(_) => Self::sequential(),
        }
    }

    /// The pure parsing rule behind [`Parallelism::from_env`],
    /// separated so it is testable without mutating the process
    /// environment.
    pub fn parse_env(value: &str) -> Self {
        Self::try_parse_env(value).unwrap_or_else(|_| Self::sequential())
    }

    /// Checked variant of [`Parallelism::from_env`] for front ends that
    /// want to *reject* a malformed `ESVM_THREADS` with an actionable
    /// message rather than silently fall back to sequential. An unset
    /// variable is still the sequential default.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed value.
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("ESVM_THREADS") {
            Ok(value) => Self::try_parse_env(&value),
            Err(_) => Ok(Self::sequential()),
        }
    }

    /// The pure parsing rule behind [`Parallelism::try_from_env`].
    ///
    /// # Errors
    ///
    /// A description of the malformed value: `ESVM_THREADS` must be a
    /// non-negative integer (`0` meaning all cores).
    pub fn try_parse_env(value: &str) -> Result<Self, String> {
        match value.trim().parse::<usize>() {
            Ok(0) => Ok(Self::new(available_parallelism())),
            Ok(n) => Ok(Self::new(n)),
            Err(_) => Err(format!(
                "ESVM_THREADS must be a non-negative integer (0 = all cores), got {value:?}"
            )),
        }
    }

    /// Configured thread count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this is the sequential configuration.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The chunking `(chunk_size, n_chunks)` this configuration uses
    /// for `n` items: about [`CHUNKS_PER_THREAD`] chunks per thread so
    /// dynamic claiming can absorb imbalance, never empty chunks.
    ///
    /// Chunking is a pure function of `(threads, n)` — callers size
    /// their per-chunk result slots with it before dispatching.
    pub fn chunking(&self, n: usize) -> (usize, usize) {
        if n == 0 {
            return (1, 0);
        }
        let target = self.threads * CHUNKS_PER_THREAD;
        let chunk_size = ((n + target - 1) / target).max(1);
        (chunk_size, (n + chunk_size - 1) / chunk_size)
    }

    /// Upper bound on `chunking(n).1` over **all** `n ≤ n_max` — for
    /// sizing per-chunk result slots once when the per-dispatch item
    /// count varies (e.g. per-VM candidate lists). Note `chunking` is
    /// not monotone in `n` (a smaller `n` can use more, smaller
    /// chunks), so `chunking(n_max).1` alone is not a valid bound.
    pub fn max_chunks(&self, n_max: usize) -> usize {
        // chunking(n).1 ≤ n (chunks are non-empty) and ≤ threads ×
        // CHUNKS_PER_THREAD (chunk_size rounds up to hit the target).
        n_max.min(self.threads * CHUNKS_PER_THREAD)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Available cores, with a safe fallback of 1.
pub(crate) fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert!(!Parallelism::new(2).is_sequential());
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(Parallelism::parse_env("3"), Parallelism::new(3));
        assert_eq!(Parallelism::parse_env(" 8 "), Parallelism::new(8));
        assert_eq!(Parallelism::parse_env("nope"), Parallelism::sequential());
        assert_eq!(Parallelism::parse_env(""), Parallelism::sequential());
        assert_eq!(Parallelism::parse_env("-2"), Parallelism::sequential());
        // "0" means all cores — at least one.
        assert!(Parallelism::parse_env("0").threads() >= 1);
    }

    #[test]
    fn checked_env_parsing_surfaces_bad_values() {
        assert_eq!(Parallelism::try_parse_env("4"), Ok(Parallelism::new(4)));
        assert!(Parallelism::try_parse_env("0").unwrap().threads() >= 1);
        for bad in ["nope", "", "-2", "3.5", "4x"] {
            let err = Parallelism::try_parse_env(bad).unwrap_err();
            assert!(err.contains("ESVM_THREADS"), "{err}");
            assert!(err.contains(bad) || bad.is_empty(), "{err}");
        }
    }

    #[test]
    fn chunking_covers_every_item_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let par = Parallelism::new(threads);
            for n in [0usize, 1, 2, 7, 16, 100, 1001] {
                let (size, count) = par.chunking(n);
                assert!(size >= 1);
                // Chunks tile [0, n) exactly.
                assert_eq!(count, if n == 0 { 0 } else { (n + size - 1) / size });
                let covered: usize = (0..count)
                    .map(|c| ((c + 1) * size).min(n) - (c * size).min(n))
                    .sum();
                assert_eq!(covered, n, "threads={threads} n={n}");
                // Never more chunks than items.
                assert!(count <= n.max(1));
            }
        }
    }

    #[test]
    fn max_chunks_bounds_every_smaller_dispatch() {
        for threads in [1usize, 2, 3, 8] {
            let par = Parallelism::new(threads);
            for n_max in [1usize, 7, 16, 100, 1001] {
                let bound = par.max_chunks(n_max);
                for n in 0..=n_max {
                    assert!(
                        par.chunking(n).1 <= bound,
                        "threads={threads} n={n} n_max={n_max}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunking_scales_with_threads() {
        let (_, sequential_chunks) = Parallelism::new(1).chunking(1000);
        let (_, parallel_chunks) = Parallelism::new(8).chunking(1000);
        assert!(parallel_chunks > sequential_chunks);
        assert!(parallel_chunks <= 8 * CHUNKS_PER_THREAD);
    }
}
