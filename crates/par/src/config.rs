//! Thread-count configuration shared by every parallel entry point.

/// Average number of chunks each thread should see per generation.
/// More chunks than threads lets the dynamic claiming absorb shard
/// imbalance; the constant is small so tiny inputs stay in one chunk.
pub(crate) const CHUNKS_PER_THREAD: usize = 4;

/// Default arrival-batch size for the sharded allocation paths: enough
/// VMs per pool wake-up to amortize the dispatch round-trip, small
/// enough that conflicted-shard re-scores stay rare.
pub const DEFAULT_BATCH: usize = 16;

/// Default problem-size cutoff of [`Parallelism::auto`]: below this
/// many VMs the sharded scorer's dispatch overhead outweighs its
/// speedup, so auto mode runs the sequential engine. Calibrated from
/// the committed `BENCH_miec.json` points: the sharded path measured
/// 0.6–0.8× at 20k–100k VMs but 4× at 1M, so the crossover sits
/// between 100k and 1M.
pub const DEFAULT_AUTO_CUTOFF: usize = 200_000;

/// Thread/shard/batch configuration for a parallel entry point.
///
/// The default — [`Parallelism::sequential`], one thread — makes every
/// parallel code path *be* the sequential one (no pool, no locks, plain
/// in-order loops). Results are identical for every thread count by
/// construction; only wall-clock changes.
///
/// Beyond the thread count, the sharded allocation paths read two more
/// knobs: the number of persistent server-state *shards*
/// ([`Parallelism::with_shards`], `0` = auto-size from the thread
/// count) and the arrival *batch* size ([`Parallelism::with_batch`],
/// how many VMs are scored per pool wake-up before the conductor
/// commits them in arrival order). Both are execution details: every
/// (threads, shards, batch) triple produces bit-identical placements.
///
/// # Example
///
/// ```
/// use esvm_par::Parallelism;
/// assert_eq!(Parallelism::default(), Parallelism::sequential());
/// assert_eq!(Parallelism::new(4).threads(), 4);
/// assert_eq!(Parallelism::new(0).threads(), 1); // clamped
/// let par = Parallelism::new(4).with_shards(8).with_batch(32);
/// assert_eq!(par.shards_for(1000), 8);
/// assert_eq!(par.batch(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
    /// Shard-count override for the sharded paths; `0` = auto.
    shards: usize,
    /// Arrival-batch size for the sharded paths (≥ 1).
    batch: usize,
    /// Adaptive mode: fall back to the sequential engine below
    /// `auto_cutoff` items (see [`Parallelism::auto`]).
    adaptive: bool,
    /// Problem-size threshold of adaptive mode.
    auto_cutoff: usize,
}

impl Parallelism {
    /// One thread: the sequential code path, today's behaviour.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            shards: 0,
            batch: DEFAULT_BATCH,
            adaptive: false,
            auto_cutoff: DEFAULT_AUTO_CUTOFF,
        }
    }

    /// `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::sequential()
        }
    }

    /// Adaptive engine selection: all available cores, but entry points
    /// consult [`Parallelism::resolve_for`] and run the plain
    /// sequential engine below [`DEFAULT_AUTO_CUTOFF`] items — where
    /// the sharded scorer's dispatch overhead measured as a 0.6–0.8×
    /// *slowdown* — and the sharded engine above it. An explicit shard
    /// override ([`Parallelism::with_shards`] / `ESVM_SHARDS`) forces
    /// the sharded engine at any size. Both engines are bit-identical,
    /// so the switch is invisible in results.
    pub fn auto() -> Self {
        Self {
            threads: available_parallelism(),
            adaptive: true,
            ..Self::sequential()
        }
    }

    /// Whether this configuration selects its engine adaptively.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Overrides the problem-size cutoff of adaptive mode (mainly for
    /// tests and calibration; no effect unless [`Parallelism::auto`]).
    pub fn with_auto_cutoff(mut self, cutoff: usize) -> Self {
        self.auto_cutoff = cutoff;
        self
    }

    /// The adaptive-mode cutoff in effect.
    pub fn auto_cutoff(&self) -> usize {
        self.auto_cutoff
    }

    /// Resolves adaptive mode against a concrete problem size,
    /// returning the configuration an entry point should actually run:
    /// unchanged for non-adaptive configurations; for adaptive ones,
    /// the sequential engine below the cutoff (unless an explicit shard
    /// override forces the sharded engine) and the full thread count at
    /// or above it.
    pub fn resolve_for(&self, n_items: usize) -> Self {
        if !self.adaptive {
            return *self;
        }
        let mut resolved = *self;
        resolved.adaptive = false;
        if self.shards == 0 && n_items < self.auto_cutoff {
            resolved.threads = 1;
        }
        resolved
    }

    /// Overrides the thread count (clamped to at least 1), keeping the
    /// shard and batch knobs — for front ends that let a flag override
    /// `ESVM_THREADS` while `ESVM_SHARDS` / `ESVM_BATCH` still apply.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the shard count of the sharded allocation paths.
    /// `0` (the default) auto-sizes: [`CHUNKS_PER_THREAD`] shards per
    /// thread, capped at the item count, so dynamic chunk claiming can
    /// absorb shard imbalance.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the arrival-batch size of the sharded allocation paths
    /// (clamped to at least 1). Larger batches amortize the pool
    /// round-trip; batching never changes results — conflicted shards
    /// are re-scored at commit time.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Reads the `ESVM_THREADS` environment variable:
    ///
    /// * unset or unparsable → [`Parallelism::sequential`] (the safe
    ///   default — parallelism is strictly opt-in);
    /// * `0` → all available cores;
    /// * `N ≥ 1` → exactly `N` threads.
    ///
    /// `ESVM_SHARDS` (shard-count override, `0`/unset = auto) and
    /// `ESVM_BATCH` (arrival-batch size, unset = [`DEFAULT_BATCH`])
    /// refine the sharded paths the same way; unparsable values fall
    /// back to the defaults.
    /// `ESVM_THREADS=auto` selects [`Parallelism::auto`];
    /// `ESVM_AUTO_CUTOFF` overrides its problem-size threshold.
    pub fn from_env() -> Self {
        let base = match std::env::var("ESVM_THREADS") {
            Ok(value) => Self::parse_env(&value),
            Err(_) => Self::sequential(),
        };
        base.with_shards(env_usize("ESVM_SHARDS").unwrap_or(0))
            .with_batch(env_usize("ESVM_BATCH").unwrap_or(DEFAULT_BATCH))
            .with_auto_cutoff(env_usize("ESVM_AUTO_CUTOFF").unwrap_or(DEFAULT_AUTO_CUTOFF))
    }

    /// The pure parsing rule behind [`Parallelism::from_env`],
    /// separated so it is testable without mutating the process
    /// environment.
    pub fn parse_env(value: &str) -> Self {
        Self::try_parse_env(value).unwrap_or_else(|_| Self::sequential())
    }

    /// Checked variant of [`Parallelism::from_env`] for front ends that
    /// want to *reject* a malformed `ESVM_THREADS` with an actionable
    /// message rather than silently fall back to sequential. An unset
    /// variable is still the sequential default.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed value.
    pub fn try_from_env() -> Result<Self, String> {
        let base = match std::env::var("ESVM_THREADS") {
            Ok(value) => Self::try_parse_env(&value)?,
            Err(_) => Self::sequential(),
        };
        let shards = try_env_usize("ESVM_SHARDS")?.unwrap_or(0);
        let batch = try_env_usize("ESVM_BATCH")?.unwrap_or(DEFAULT_BATCH);
        let cutoff = try_env_usize("ESVM_AUTO_CUTOFF")?.unwrap_or(DEFAULT_AUTO_CUTOFF);
        Ok(base
            .with_shards(shards)
            .with_batch(batch)
            .with_auto_cutoff(cutoff))
    }

    /// The pure parsing rule behind [`Parallelism::try_from_env`].
    ///
    /// # Errors
    ///
    /// A description of the malformed value: `ESVM_THREADS` must be a
    /// non-negative integer (`0` meaning all cores) or `auto`
    /// (adaptive engine selection).
    pub fn try_parse_env(value: &str) -> Result<Self, String> {
        if value.trim().eq_ignore_ascii_case("auto") {
            return Ok(Self::auto());
        }
        match value.trim().parse::<usize>() {
            Ok(0) => Ok(Self::new(available_parallelism())),
            Ok(n) => Ok(Self::new(n)),
            Err(_) => Err(format!(
                "ESVM_THREADS must be a non-negative integer (0 = all cores) or \"auto\", got {value:?}"
            )),
        }
    }

    /// Configured thread count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this is the sequential configuration.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The configured shard-count override (`0` = auto).
    pub fn shards_override(&self) -> usize {
        self.shards
    }

    /// The shard count the sharded paths use for `n_items` servers:
    /// the explicit [`Parallelism::with_shards`] override if set,
    /// otherwise [`CHUNKS_PER_THREAD`] shards per thread — either way
    /// capped at `n_items` (no empty shards) and at least 1.
    pub fn shards_for(&self, n_items: usize) -> usize {
        let raw = if self.shards == 0 {
            self.threads * CHUNKS_PER_THREAD
        } else {
            self.shards
        };
        raw.clamp(1, n_items.max(1))
    }

    /// Arrival-batch size of the sharded paths (≥ 1).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The chunking `(chunk_size, n_chunks)` this configuration uses
    /// for `n` items: about [`CHUNKS_PER_THREAD`] chunks per thread so
    /// dynamic claiming can absorb imbalance, never empty chunks.
    ///
    /// Chunking is a pure function of `(threads, n)` — callers size
    /// their per-chunk result slots with it before dispatching.
    pub fn chunking(&self, n: usize) -> (usize, usize) {
        if n == 0 {
            return (1, 0);
        }
        let target = self.threads * CHUNKS_PER_THREAD;
        let chunk_size = ((n + target - 1) / target).max(1);
        (chunk_size, (n + chunk_size - 1) / chunk_size)
    }

    /// Upper bound on `chunking(n).1` over **all** `n ≤ n_max` — for
    /// sizing per-chunk result slots once when the per-dispatch item
    /// count varies (e.g. per-VM candidate lists). Note `chunking` is
    /// not monotone in `n` (a smaller `n` can use more, smaller
    /// chunks), so `chunking(n_max).1` alone is not a valid bound.
    pub fn max_chunks(&self, n_max: usize) -> usize {
        // chunking(n).1 ≤ n (chunks are non-empty) and ≤ threads ×
        // CHUNKS_PER_THREAD (chunk_size rounds up to hit the target).
        n_max.min(self.threads * CHUNKS_PER_THREAD)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Available cores, with a safe fallback of 1.
pub(crate) fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Lenient env read: `None` when unset or unparsable.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Checked env read: `None` when unset, an error when unparsable.
fn try_env_usize(name: &str) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Ok(value) => value.trim().parse().map(Some).map_err(|_| {
            format!("{name} must be a non-negative integer, got {value:?}")
        }),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert!(!Parallelism::new(2).is_sequential());
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(Parallelism::parse_env("3"), Parallelism::new(3));
        assert_eq!(Parallelism::parse_env(" 8 "), Parallelism::new(8));
        assert_eq!(Parallelism::parse_env("nope"), Parallelism::sequential());
        assert_eq!(Parallelism::parse_env(""), Parallelism::sequential());
        assert_eq!(Parallelism::parse_env("-2"), Parallelism::sequential());
        // "0" means all cores — at least one.
        assert!(Parallelism::parse_env("0").threads() >= 1);
    }

    #[test]
    fn checked_env_parsing_surfaces_bad_values() {
        assert_eq!(Parallelism::try_parse_env("4"), Ok(Parallelism::new(4)));
        assert!(Parallelism::try_parse_env("0").unwrap().threads() >= 1);
        for bad in ["nope", "", "-2", "3.5", "4x"] {
            let err = Parallelism::try_parse_env(bad).unwrap_err();
            assert!(err.contains("ESVM_THREADS"), "{err}");
            assert!(err.contains(bad) || bad.is_empty(), "{err}");
        }
    }

    #[test]
    fn chunking_covers_every_item_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let par = Parallelism::new(threads);
            for n in [0usize, 1, 2, 7, 16, 100, 1001] {
                let (size, count) = par.chunking(n);
                assert!(size >= 1);
                // Chunks tile [0, n) exactly.
                assert_eq!(count, if n == 0 { 0 } else { (n + size - 1) / size });
                let covered: usize = (0..count)
                    .map(|c| ((c + 1) * size).min(n) - (c * size).min(n))
                    .sum();
                assert_eq!(covered, n, "threads={threads} n={n}");
                // Never more chunks than items.
                assert!(count <= n.max(1));
            }
        }
    }

    #[test]
    fn max_chunks_bounds_every_smaller_dispatch() {
        for threads in [1usize, 2, 3, 8] {
            let par = Parallelism::new(threads);
            for n_max in [1usize, 7, 16, 100, 1001] {
                let bound = par.max_chunks(n_max);
                for n in 0..=n_max {
                    assert!(
                        par.chunking(n).1 <= bound,
                        "threads={threads} n={n} n_max={n_max}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_and_batch_knobs() {
        let par = Parallelism::new(4);
        // Auto: CHUNKS_PER_THREAD shards per thread, capped at items.
        assert_eq!(par.shards_for(1000), 4 * CHUNKS_PER_THREAD);
        assert_eq!(par.shards_for(3), 3);
        assert_eq!(par.shards_for(0), 1);
        assert_eq!(par.shards_override(), 0);
        // Explicit override wins (still capped at the item count).
        let par = par.with_shards(6);
        assert_eq!(par.shards_override(), 6);
        assert_eq!(par.shards_for(1000), 6);
        assert_eq!(par.shards_for(2), 2);
        // Batch defaults and clamps.
        assert_eq!(Parallelism::sequential().batch(), DEFAULT_BATCH);
        assert_eq!(Parallelism::new(2).with_batch(0).batch(), 1);
        assert_eq!(Parallelism::new(2).with_batch(256).batch(), 256);
    }

    #[test]
    fn auto_resolves_by_problem_size() {
        let auto = Parallelism::auto().with_auto_cutoff(1000);
        assert!(auto.is_adaptive());
        // Below the cutoff: sequential engine, shard/batch knobs kept.
        let small = auto.resolve_for(999);
        assert!(!small.is_adaptive());
        assert_eq!(small.threads(), 1);
        // At/above the cutoff: full thread count.
        let big = auto.resolve_for(1000);
        assert_eq!(big.threads(), auto.threads());
        assert!(!big.is_adaptive());
        // An explicit shard override forces the sharded engine at any
        // size (the ESVM_SHARDS escape hatch).
        let forced = auto.with_shards(4).resolve_for(10);
        assert_eq!(forced.threads(), auto.threads());
        assert_eq!(forced.shards_override(), 4);
        // Non-adaptive configurations resolve to themselves.
        let fixed = Parallelism::new(4);
        assert_eq!(fixed.resolve_for(1), fixed);
        assert_eq!(Parallelism::sequential().resolve_for(1 << 30).threads(), 1);
    }

    #[test]
    fn auto_parses_from_env_value() {
        let parsed = Parallelism::parse_env("auto");
        assert!(parsed.is_adaptive());
        assert!(parsed.threads() >= 1);
        assert!(Parallelism::try_parse_env("AUTO").unwrap().is_adaptive());
        assert_eq!(parsed.auto_cutoff(), DEFAULT_AUTO_CUTOFF);
    }

    #[test]
    fn env_usize_helpers_parse_and_reject() {
        assert_eq!(try_env_usize("ESVM_TEST_UNSET_VAR_XYZ"), Ok(None));
        // Direct parse paths (avoid mutating the process environment).
        assert_eq!("12".trim().parse::<usize>().ok(), Some(12));
        assert!("4x".trim().parse::<usize>().is_err());
    }

    #[test]
    fn chunking_scales_with_threads() {
        let (_, sequential_chunks) = Parallelism::new(1).chunking(1000);
        let (_, parallel_chunks) = Parallelism::new(8).chunking(1000);
        assert!(parallel_chunks > sequential_chunks);
        assert!(parallel_chunks <= 8 * CHUNKS_PER_THREAD);
    }
}
