//! Local-search refinement of an allocation.
//!
//! MIEC is greedy and online (one pass in start-time order); the exact
//! ILP is offline but only feasible on toy instances. This module fills
//! the gap between them: a first-improvement local search over the
//! *relocate* (move one VM to another server) and *swap* (exchange the
//! servers of two VMs) neighbourhoods, evaluated with the exact audit
//! cost model. It refines any complete [`Assignment`], so it both
//! quantifies how much MIEC's greediness leaves on the table and serves
//! as a stronger offline baseline.

use crate::{AllocError, AllocResult, Allocator};
use esvm_simcore::energy::full_cost;
use esvm_simcore::{
    AllocationProblem, Assignment, ServerId, ServerSpec, UsageProfile, Vm, VmId,
};
use rand::RngCore;

/// Per-server evaluation state for the search.
#[derive(Debug, Clone)]
struct Host {
    spec: ServerSpec,
    vms: Vec<Vm>,
    usage: UsageProfile,
    cost: f64,
}

impl Host {
    fn new(spec: ServerSpec) -> Self {
        Self {
            spec,
            vms: Vec::new(),
            usage: UsageProfile::new(),
            cost: 0.0,
        }
    }

    fn recompute(&mut self) {
        self.cost = full_cost(&self.spec, &self.vms);
    }

    fn add(&mut self, vm: Vm) {
        self.usage.add(vm.interval(), vm.demand());
        self.vms.push(vm);
        self.recompute();
    }

    fn remove(&mut self, vm: VmId) -> Vm {
        let idx = self
            .vms
            .iter()
            .position(|v| v.id() == vm)
            .expect("vm hosted here");
        let v = self.vms.swap_remove(idx);
        self.usage.remove(v.interval(), v.demand());
        self.recompute();
        v
    }

    fn fits(&self, vm: &Vm) -> bool {
        self.usage
            .fits(vm.interval(), vm.demand(), self.spec.capacity())
    }

    /// Cost if `vm` were added (no capacity check).
    fn cost_with(&self, vm: &Vm) -> f64 {
        let mut vms = self.vms.clone();
        vms.push(*vm);
        full_cost(&self.spec, &vms)
    }

    /// Cost if `vm` were removed.
    fn cost_without(&self, vm: VmId) -> f64 {
        let vms: Vec<Vm> = self.vms.iter().filter(|v| v.id() != vm).copied().collect();
        full_cost(&self.spec, &vms)
    }

    /// Whether `vm` fits if `leaving` were removed first.
    fn fits_replacing(&self, vm: &Vm, leaving: &Vm) -> bool {
        let mut usage = self.usage.clone();
        usage.remove(leaving.interval(), leaving.demand());
        usage.fits(vm.interval(), vm.demand(), self.spec.capacity())
    }

    /// Cost with `leaving` replaced by `vm`.
    fn cost_replacing(&self, vm: &Vm, leaving: VmId) -> f64 {
        let mut vms: Vec<Vm> = self.vms.iter().filter(|v| v.id() != leaving).copied().collect();
        vms.push(*vm);
        full_cost(&self.spec, &vms)
    }
}

/// First-improvement local search over relocate + swap moves.
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, LocalSearch, Miec};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(60.0, 120.0), 30.0)
///     .server(Resources::new(8.0, 16.0), PowerModel::new(50.0, 110.0), 25.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .vm(Resources::new(2.0, 4.0), Interval::new(5, 14))
///     .build()?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let base = Miec::new().allocate(&problem, &mut rng)?;
/// let refined = LocalSearch::new().refine(&base)?;
/// assert!(refined.total_cost() <= base.total_cost() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    max_rounds: usize,
    enable_swaps: bool,
}

impl Default for LocalSearch {
    fn default() -> Self {
        Self {
            max_rounds: 50,
            enable_swaps: true,
        }
    }
}

impl LocalSearch {
    /// Creates the default search (relocate + swap, ≤ 50 rounds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of full improvement rounds.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Disables the (quadratic) swap neighbourhood.
    pub fn relocate_only(mut self) -> Self {
        self.enable_swaps = false;
        self
    }

    /// Refines a complete assignment; the result never costs more.
    ///
    /// # Errors
    ///
    /// [`AllocError::Placement`] if the input is incomplete, or if the
    /// final placement fails re-validation (would indicate a bug).
    pub fn refine<'p>(&self, base: &Assignment<'p>) -> AllocResult<Assignment<'p>> {
        let problem = base.problem();
        if let Some(vm) = base.unplaced().next() {
            return Err(AllocError::Placement(esvm_simcore::Error::Unplaced(vm)));
        }

        let mut hosts: Vec<Host> = problem
            .servers()
            .iter()
            .map(|s| Host::new(*s))
            .collect();
        let mut location: Vec<ServerId> = Vec::with_capacity(problem.vm_count());
        for (j, slot) in base.placement().iter().enumerate() {
            let server = slot.expect("complete");
            hosts[server.index()].add(problem.vms()[j]);
            location.push(server);
        }

        for _ in 0..self.max_rounds {
            let mut improved = false;

            // Relocate moves. (Index loop: the body needs `location[j]`
            // both read and written while `hosts` is borrowed mutably.)
            #[allow(clippy::needless_range_loop)]
            for j in 0..problem.vm_count() {
                let vm = problem.vms()[j];
                let src = location[j];
                let src_cost = hosts[src.index()].cost;
                let src_without = hosts[src.index()].cost_without(vm.id());
                for i in 0..hosts.len() {
                    let dst = ServerId(i as u32);
                    if dst == src || !hosts[i].fits(&vm) {
                        continue;
                    }
                    let delta =
                        (src_without - src_cost) + (hosts[i].cost_with(&vm) - hosts[i].cost);
                    if delta < -1e-9 {
                        let v = hosts[src.index()].remove(vm.id());
                        hosts[i].add(v);
                        location[j] = dst;
                        improved = true;
                        break;
                    }
                }
            }

            // Swap moves.
            if self.enable_swaps {
                for a in 0..problem.vm_count() {
                    for b in (a + 1)..problem.vm_count() {
                        let (sa, sb) = (location[a], location[b]);
                        if sa == sb {
                            continue;
                        }
                        let va = problem.vms()[a];
                        let vb = problem.vms()[b];
                        let ha = &hosts[sa.index()];
                        let hb = &hosts[sb.index()];
                        if !ha.fits_replacing(&vb, &va) || !hb.fits_replacing(&va, &vb) {
                            continue;
                        }
                        let delta = (ha.cost_replacing(&vb, va.id()) - ha.cost)
                            + (hb.cost_replacing(&va, vb.id()) - hb.cost);
                        if delta < -1e-9 {
                            let va_owned = hosts[sa.index()].remove(va.id());
                            let vb_owned = hosts[sb.index()].remove(vb.id());
                            hosts[sa.index()].add(vb_owned);
                            hosts[sb.index()].add(va_owned);
                            location[a] = sb;
                            location[b] = sa;
                            improved = true;
                        }
                    }
                }
            }

            if !improved {
                break;
            }
        }

        let placement: Vec<Option<ServerId>> = location.into_iter().map(Some).collect();
        Assignment::from_placement(problem, &placement).map_err(AllocError::Placement)
    }
}

/// An [`Allocator`] wrapper: run `base`, then refine with local search.
#[derive(Debug, Clone)]
pub struct Refined<A> {
    base: A,
    search: LocalSearch,
    name: &'static str,
}

impl<A: Allocator> Refined<A> {
    /// Wraps `base`; `name` labels the pipeline in tables.
    pub fn new(base: A, search: LocalSearch, name: &'static str) -> Self {
        Self { base, search, name }
    }
}

impl<A: Allocator> Allocator for Refined<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let base = self.base.allocate(problem, rng)?;
        self.search.refine(&base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ffps, Miec};
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
    use rand::{rngs::StdRng, SeedableRng};

    fn problem() -> AllocationProblem {
        let mut b = ProblemBuilder::new();
        for i in 0..6 {
            let scale = 1.0 + (i % 3) as f64 * 0.5;
            b = b.server(
                Resources::new(8.0 * scale, 16.0 * scale),
                PowerModel::new(40.0 * scale, 100.0 * scale),
                60.0 * scale,
            );
        }
        for j in 0..14u32 {
            b = b.vm(
                Resources::new(1.0 + f64::from(j % 4), 2.0 + f64::from(j % 5)),
                Interval::with_len(1 + j * 2, 4 + (j % 3)),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn refinement_never_worsens() {
        let p = problem();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ffps::new().allocate(&p, &mut rng).unwrap();
            let refined = LocalSearch::new().refine(&base).unwrap();
            assert!(
                refined.total_cost() <= base.total_cost() + 1e-9,
                "seed {seed}: {} > {}",
                refined.total_cost(),
                base.total_cost()
            );
            assert!(refined.audit().is_ok());
        }
    }

    #[test]
    fn refinement_improves_a_bad_start() {
        // Round-robin spreads everything; local search must consolidate.
        let p = problem();
        let mut rng = StdRng::seed_from_u64(0);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new().refine(&base).unwrap();
        assert!(
            refined.total_cost() < base.total_cost() * 0.95,
            "expected ≥ 5% improvement over round-robin: {} vs {}",
            refined.total_cost(),
            base.total_cost()
        );
    }

    #[test]
    fn result_is_a_local_optimum_for_relocation() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(1);
        let base = Ffps::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new().refine(&base).unwrap();
        // No single relocation improves the refined solution.
        for j in 0..p.vm_count() {
            let vm = p.vms()[j];
            let src = refined.server_of(vm.id()).unwrap();
            for i in 0..p.server_count() {
                let dst = ServerId(i as u32);
                if dst == src {
                    continue;
                }
                let mut placement = refined.placement().to_vec();
                placement[j] = Some(dst);
                if let Ok(candidate) = Assignment::from_placement(&p, &placement) {
                    assert!(
                        candidate.total_cost() >= refined.total_cost() - 1e-6,
                        "relocating vm{j} to srv{i} improves: {} < {}",
                        candidate.total_cost(),
                        refined.total_cost()
                    );
                }
            }
        }
    }

    #[test]
    fn relocate_only_mode_works() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(2);
        let base = Ffps::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new()
            .relocate_only()
            .with_max_rounds(3)
            .refine(&base)
            .unwrap();
        assert!(refined.total_cost() <= base.total_cost() + 1e-9);
    }

    #[test]
    fn wrapper_allocator_composes() {
        let p = problem();
        let wrapped = Refined::new(Miec::new(), LocalSearch::new(), "miec-ls");
        assert_eq!(wrapped.name(), "miec-ls");
        let mut rng = StdRng::seed_from_u64(3);
        let refined = wrapped.allocate(&p, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let plain = Miec::new().allocate(&p, &mut rng).unwrap();
        assert!(refined.total_cost() <= plain.total_cost() + 1e-9);
    }

    #[test]
    fn incomplete_input_is_rejected() {
        let p = problem();
        let empty = Assignment::new(&p);
        assert!(LocalSearch::new().refine(&empty).is_err());
    }

    #[test]
    fn swap_bookkeeping_is_consistent() {
        // Force a scenario where swaps matter: two servers, two VMs each
        // better off exchanged (capacity prevents simple relocation).
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(10.0, 90.0), 5.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(80.0, 160.0), 5.0)
            // Big VM must sit on server 1 unless the small one leaves.
            .vm(Resources::new(4.0, 8.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 3.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let mut base = Assignment::new(&p);
        base.place(VmId(0), ServerId(1)).unwrap();
        base.place(VmId(1), ServerId(0)).unwrap();
        let refined = LocalSearch::new().refine(&base).unwrap();
        assert!(refined.audit().is_ok());
        assert!(refined.total_cost() <= base.total_cost() + 1e-9);
    }
}
