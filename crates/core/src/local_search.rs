//! Local-search refinement of an allocation.
//!
//! MIEC is greedy and online (one pass in start-time order); the exact
//! ILP is offline but only feasible on toy instances. This module fills
//! the gap between them: a first-improvement local search over the
//! *relocate* (move one VM to another server) and *swap* (exchange the
//! servers of two VMs) neighbourhoods, evaluated with the exact audit
//! cost model.
//!
//! Moves are scored with the paired delta machinery of
//! [`ServerLedger`]: a relocate is `incremental_cost(dst) −
//! decremental_cost(src)` and a swap is four such deltas — pure
//! `O(log K)` arithmetic per candidate, no clones, no `full_cost`
//! rescans inside the move loops. The seed's clone-and-rescan evaluation
//! is retained behind [`LocalSearch::reference`] as the oracle the fast
//! path is certified against (the same pattern PR 1 used for MIEC), and
//! the relocate scan prunes spec-class-symmetric asleep targets and can
//! optionally visit targets in cached-cost order.

use crate::classes::spec_classes;
use crate::{AllocError, AllocResult, Allocator};
use esvm_obs::{
    DecisionKind, Event, EventSink, ExplainRecord, FieldValue, MetricsRegistry, NoopSink,
    NoopTracer, Tracer,
};
use esvm_par::Parallelism;
use esvm_simcore::energy::full_cost;
use esvm_simcore::{
    AllocationProblem, Assignment, ServerId, ServerLedger, ServerSpec, Vm, VmId,
};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::{Mutex, RwLock};

/// Per-server evaluation state for the search: a delta-scored
/// [`ServerLedger`] plus the hosted VM list with an id → slot map so
/// [`Host::remove`] is O(1) instead of a linear scan.
#[derive(Debug, Clone)]
struct Host {
    ledger: ServerLedger,
    vms: Vec<Vm>,
    slot_of: HashMap<VmId, usize>,
}

impl Host {
    fn new(spec: ServerSpec) -> Self {
        Self {
            ledger: ServerLedger::new(spec),
            vms: Vec::new(),
            slot_of: HashMap::new(),
        }
    }

    fn add(&mut self, vm: Vm) {
        self.slot_of.insert(vm.id(), self.vms.len());
        self.ledger.host(&vm);
        self.vms.push(vm);
    }

    fn remove(&mut self, vm: VmId) -> Vm {
        let idx = self.slot_of.remove(&vm).expect("vm hosted here");
        let v = self.vms.swap_remove(idx);
        if let Some(moved) = self.vms.get(idx) {
            self.slot_of.insert(moved.id(), idx);
        }
        self.ledger.unhost(&v);
        v
    }

    fn fits(&self, vm: &Vm) -> bool {
        self.ledger.fits(vm)
    }

    /// Cached O(1) total cost (delta-maintained by the ledger).
    fn cost(&self) -> f64 {
        self.ledger.cost()
    }

    // ---- Reference oracle probes (the seed's clone-and-rescan
    // evaluation, used only by `LocalSearch::reference`) ----

    /// Full rescan of the current VM set — the value the seed cached.
    fn reference_cost(&self) -> f64 {
        full_cost(self.ledger.spec(), &self.vms)
    }

    /// Cost if `vm` were added (no capacity check).
    fn cost_with(&self, vm: &Vm) -> f64 {
        let mut vms = self.vms.clone();
        vms.push(*vm);
        full_cost(self.ledger.spec(), &vms)
    }

    /// Cost if `vm` were removed.
    fn cost_without(&self, vm: VmId) -> f64 {
        let vms: Vec<Vm> = self.vms.iter().filter(|v| v.id() != vm).copied().collect();
        full_cost(self.ledger.spec(), &vms)
    }

    /// Whether `vm` fits if `leaving` were removed first (clone probe).
    fn reference_fits_replacing(&self, vm: &Vm, leaving: &Vm) -> bool {
        let mut usage = self.ledger.usage().clone();
        usage.remove(leaving.interval(), leaving.demand());
        usage.fits(vm.interval(), vm.demand(), self.ledger.spec().capacity())
    }

    /// Cost with `leaving` replaced by `vm`.
    fn cost_replacing(&self, vm: &Vm, leaving: VmId) -> f64 {
        let mut vms: Vec<Vm> = self
            .vms
            .iter()
            .filter(|v| v.id() != leaving)
            .copied()
            .collect();
        vms.push(*vm);
        full_cost(self.ledger.spec(), &vms)
    }
}

/// Disjoint mutable references to two hosts.
fn pair_mut(hosts: &mut [Host], a: usize, b: usize) -> (&mut Host, &mut Host) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = hosts.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = hosts.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Exact cost change on one swap side: `leaving` departs and `incoming`
/// arrives on `host`. When the two intervals' influence regions on the
/// current segment set are disjoint, the removal and insertion deltas
/// are exactly additive and the score is pure arithmetic; otherwise the
/// ledger is probed transiently (unhost, score, rehost — integer state
/// round-trips exactly, the float accumulator is checkpointed).
///
/// The boolean reports which path evaluated the side (`true` = the
/// influence-region fast path), so instrumented callers can count
/// fast-path hits vs checkpointed probe rollbacks.
fn swap_side_delta(host: &mut Host, leaving: &Vm, incoming: &Vm) -> (f64, bool) {
    let segments = host.ledger.segments();
    let independent = !segments
        .influence_region(leaving.interval())
        .overlaps(segments.influence_region(incoming.interval()));
    if independent {
        (
            host.ledger.incremental_cost(incoming) - host.ledger.decremental_cost(leaving),
            true,
        )
    } else {
        let checkpoint = host.ledger.checkpoint();
        let dec = host.ledger.unhost(leaving);
        let inc = host.ledger.incremental_cost(incoming);
        host.ledger.host(leaving);
        host.ledger.restore_costs(checkpoint);
        (inc - dec, false)
    }
}

/// One accepted move, in acceptance order. Returned by
/// [`LocalSearch::refine_traced`] so tests and benches can replay the
/// trajectory against the clone-and-rescan oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchMove {
    /// `vm` moved from server `from` to server `to`.
    Relocate {
        /// The relocated VM.
        vm: VmId,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
        /// Accepted score (total-cost change, negative).
        delta: f64,
    },
    /// `a` (on `server_a`) and `b` (on `server_b`) exchanged servers.
    Swap {
        /// First VM.
        a: VmId,
        /// Second VM.
        b: VmId,
        /// Server hosting `a` before the swap.
        server_a: ServerId,
        /// Server hosting `b` before the swap.
        server_b: ServerId,
        /// Accepted score (total-cost change, negative).
        delta: f64,
    },
}

/// First-improvement local search over relocate + swap moves.
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, LocalSearch, Miec};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(60.0, 120.0), 30.0)
///     .server(Resources::new(8.0, 16.0), PowerModel::new(50.0, 110.0), 25.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .vm(Resources::new(2.0, 4.0), Interval::new(5, 14))
///     .build()?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let base = Miec::new().allocate(&problem, &mut rng)?;
/// let refined = LocalSearch::new().refine(&base)?;
/// assert!(refined.total_cost() <= base.total_cost() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    max_rounds: usize,
    enable_swaps: bool,
    ordered_targets: bool,
    reference: bool,
    par: Parallelism,
}

impl Default for LocalSearch {
    fn default() -> Self {
        Self {
            max_rounds: 50,
            enable_swaps: true,
            ordered_targets: false,
            reference: false,
            par: Parallelism::sequential(),
        }
    }
}

impl LocalSearch {
    /// Creates the default search (relocate + swap, ≤ 50 rounds,
    /// delta-scored, seed visit order).
    pub fn new() -> Self {
        Self::default()
    }

    /// The seed's clone-and-rescan evaluation, retained as the oracle
    /// the delta-scored path is verified against (tests and the
    /// `local_search` bench). Functionally equivalent to
    /// [`LocalSearch::new`] up to certified floating-point score ties;
    /// an order of magnitude slower.
    pub fn reference() -> Self {
        Self {
            reference: true,
            ..Self::default()
        }
    }

    /// Visits relocation targets in ascending cached-cost order (cheap,
    /// already-awake servers first) instead of server-id order. Usually
    /// finds improving moves sooner; the first-improvement trajectory —
    /// and therefore the local optimum reached — may legitimately differ
    /// from the default order.
    pub fn with_ordered_targets(mut self) -> Self {
        self.ordered_targets = true;
        self
    }

    /// Caps the number of full improvement rounds.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Disables the (quadratic) swap neighbourhood.
    pub fn relocate_only(mut self) -> Self {
        self.enable_swaps = false;
        self
    }

    /// Scores relocate/swap candidate shards on `par.threads()` threads.
    /// The accepted-move trajectory — and therefore the refined
    /// placement, cost, and energy breakdown — is **bit-identical** for
    /// every thread count: shards are scored read-only, reduced in visit
    /// order, and the state-mutating checkpointed probe path stays on
    /// the conductor thread (see DESIGN.md "Concurrency model").
    ///
    /// Ignored by [`LocalSearch::reference`]: the oracle stays on the
    /// seed's sequential clone-and-rescan path unconditionally, so there
    /// is always a bit-faithful baseline to differential-test against.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The configured thread-count policy.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Refines a complete assignment; the result never costs more.
    ///
    /// # Errors
    ///
    /// [`AllocError::Placement`] if the input is incomplete, or if the
    /// final placement fails re-validation (would indicate a bug).
    pub fn refine<'p>(&self, base: &Assignment<'p>) -> AllocResult<Assignment<'p>> {
        self.refine_traced(base).map(|(refined, _)| refined)
    }

    /// [`LocalSearch::refine`], additionally returning every accepted
    /// move in acceptance order — the trace the property tests and the
    /// `local_search` bench replay against the reference oracle.
    pub fn refine_traced<'p>(
        &self,
        base: &Assignment<'p>,
    ) -> AllocResult<(Assignment<'p>, Vec<SearchMove>)> {
        self.refine_observed(base, &mut NoopSink, &MetricsRegistry::new())
    }

    /// [`LocalSearch::refine_traced`] with observability: every accepted
    /// move is emitted as a `local_search.relocate` / `local_search.swap`
    /// event, and the scan tallies (moves considered / accepted /
    /// rejected, spec-class pruned targets, influence-region fast-path
    /// hits vs checkpointed probe rollbacks) land in `metrics`. With the
    /// default [`NoopSink`] the instrumentation compiles away and this
    /// *is* the uninstrumented search.
    ///
    /// # Errors
    ///
    /// Same as [`LocalSearch::refine`].
    pub fn refine_observed<'p, S: EventSink>(
        &self,
        base: &Assignment<'p>,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<(Assignment<'p>, Vec<SearchMove>)> {
        self.refine_instrumented(base, sink, metrics, &NoopTracer)
    }

    /// [`LocalSearch::refine_observed`] with decision provenance: the
    /// whole refinement runs under a `local_search.refine` span with one
    /// `local_search.round` child per improvement round, and every
    /// accepted move emits a [`DecisionKind::Relocate`] /
    /// [`DecisionKind::Swap`] explain record (winner, source server,
    /// delta, and — for relocates — candidates scanned and pruned-by-
    /// class counts). With [`NoopTracer`] this *is*
    /// [`LocalSearch::refine_observed`], instruction for instruction.
    ///
    /// # Errors
    ///
    /// Same as [`LocalSearch::refine`].
    pub fn refine_instrumented<'p, S: EventSink, T: Tracer>(
        &self,
        base: &Assignment<'p>,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> AllocResult<(Assignment<'p>, Vec<SearchMove>)> {
        let problem = base.problem();
        if let Some(vm) = base.unplaced().next() {
            return Err(AllocError::Placement(esvm_simcore::Error::Unplaced(vm)));
        }
        if self.par.resolve_for(problem.vm_count()).threads() > 1 && !self.reference {
            return self.refine_parallel(base, sink, metrics, tracer);
        }
        let _refine_span = tracer.span("local_search.refine");

        let mut hosts: Vec<Host> = problem.servers().iter().map(|s| Host::new(*s)).collect();
        let mut location: Vec<ServerId> = Vec::with_capacity(problem.vm_count());
        for (j, slot) in base.placement().iter().enumerate() {
            let server = slot.expect("complete");
            hosts[server.index()].add(problem.vms()[j]);
            location.push(server);
        }

        // Spec classes for asleep-target pruning (exactly
        // decision-preserving: twins of the first asleep class member
        // give bit-identical fits and scores, and first-improvement
        // visits that member first). The reference path skips pruning and
        // ordering to stay bit-faithful to the seed implementation.
        let prune = !self.reference;
        let classes = spec_classes(problem.servers());
        let mut class_seen: Vec<u64> = vec![u64::MAX; classes.count];
        let mut scan: u64 = 0;
        // Target visit order; stays the identity unless ordered_targets.
        let mut order: Vec<usize> = (0..hosts.len()).collect();
        let mut moves: Vec<SearchMove> = Vec::new();
        // Hot-loop tallies; flushed to `metrics` once after the search.
        let mut rounds = 0u64;
        let mut relocates_considered = 0u64;
        let mut relocates_accepted = 0u64;
        let mut swaps_considered = 0u64;
        let mut swaps_accepted = 0u64;
        let mut pruned_targets = 0u64;
        let mut fastpath_hits = 0u64;
        let mut probe_rollbacks = 0u64;

        for _ in 0..self.max_rounds {
            let mut improved = false;
            let _round_span = tracer.span("local_search.round");
            if S::ENABLED {
                rounds += 1;
            }

            // Relocate moves. (Index loop: the body needs `location[j]`
            // both read and written while `hosts` is borrowed mutably.)
            #[allow(clippy::needless_range_loop)]
            for j in 0..problem.vm_count() {
                let vm = problem.vms()[j];
                let src = location[j];
                // Per-VM scan tallies feed the explain record; the run
                // totals (flushed once below) stay sink-gated.
                let mut vm_considered = 0u64;
                let mut vm_pruned = 0u64;
                // Score the departure once per VM: pure arithmetic on the
                // fast path, the seed's two full rescans on the oracle.
                let removal_gain = if self.reference {
                    hosts[src.index()].cost_without(vm.id()) - hosts[src.index()].reference_cost()
                } else {
                    -hosts[src.index()].ledger.decremental_cost(&vm)
                };
                if self.ordered_targets && !self.reference {
                    order.sort_unstable_by(|&x, &y| {
                        hosts[x].cost().total_cmp(&hosts[y].cost()).then(x.cmp(&y))
                    });
                }
                scan += 1;
                for &i in &order {
                    let dst = ServerId(i as u32);
                    if dst == src {
                        continue;
                    }
                    if prune && hosts[i].vms.is_empty() {
                        let class = classes.class_of[i];
                        if class_seen[class] == scan {
                            // A cheaper-or-equal asleep twin of the same
                            // spec class was already scored this scan.
                            if S::ENABLED || T::ENABLED {
                                vm_pruned += 1;
                            }
                            continue;
                        }
                        class_seen[class] = scan;
                    }
                    if !hosts[i].fits(&vm) {
                        continue;
                    }
                    let delta = if self.reference {
                        removal_gain + (hosts[i].cost_with(&vm) - hosts[i].reference_cost())
                    } else {
                        removal_gain + hosts[i].ledger.incremental_cost(&vm)
                    };
                    if S::ENABLED || T::ENABLED {
                        vm_considered += 1;
                    }
                    if delta < -1e-9 {
                        let v = hosts[src.index()].remove(vm.id());
                        hosts[i].add(v);
                        location[j] = dst;
                        moves.push(SearchMove::Relocate {
                            vm: vm.id(),
                            from: src,
                            to: dst,
                            delta,
                        });
                        improved = true;
                        if S::ENABLED {
                            relocates_accepted += 1;
                            metrics.observe("local_search.accepted_delta", -delta);
                            sink.emit(&Event {
                                name: "local_search.relocate",
                                fields: &[
                                    ("vm", FieldValue::U64(vm.id().index() as u64)),
                                    ("from", FieldValue::U64(src.index() as u64)),
                                    ("to", FieldValue::U64(dst.index() as u64)),
                                    ("delta", FieldValue::F64(delta)),
                                ],
                            });
                        }
                        if T::ENABLED {
                            tracer.explain(&ExplainRecord {
                                candidates: vm_considered,
                                pruned: vm_pruned,
                                shards: 1,
                                winner: Some(dst.index() as u64),
                                delta_cost: delta,
                                from: Some(src.index() as u64),
                                ..ExplainRecord::new(
                                    DecisionKind::Relocate,
                                    vm.id().index() as u64,
                                )
                            });
                        }
                        break;
                    }
                }
                if S::ENABLED {
                    relocates_considered += vm_considered;
                    pruned_targets += vm_pruned;
                }
            }

            // Swap moves.
            if self.enable_swaps {
                for a in 0..problem.vm_count() {
                    for b in (a + 1)..problem.vm_count() {
                        let (sa, sb) = (location[a], location[b]);
                        if sa == sb {
                            continue;
                        }
                        let va = problem.vms()[a];
                        let vb = problem.vms()[b];
                        let delta = if self.reference {
                            let ha = &hosts[sa.index()];
                            let hb = &hosts[sb.index()];
                            if !ha.reference_fits_replacing(&vb, &va)
                                || !hb.reference_fits_replacing(&va, &vb)
                            {
                                continue;
                            }
                            (ha.cost_replacing(&vb, va.id()) - ha.reference_cost())
                                + (hb.cost_replacing(&va, vb.id()) - hb.reference_cost())
                        } else {
                            let (ha, hb) = pair_mut(&mut hosts, sa.index(), sb.index());
                            if !ha.ledger.fits_replacing(&vb, &va)
                                || !hb.ledger.fits_replacing(&va, &vb)
                            {
                                continue;
                            }
                            let (da, fast_a) = swap_side_delta(ha, &va, &vb);
                            let (db, fast_b) = swap_side_delta(hb, &vb, &va);
                            if S::ENABLED {
                                for fast in [fast_a, fast_b] {
                                    if fast {
                                        fastpath_hits += 1;
                                    } else {
                                        probe_rollbacks += 1;
                                    }
                                }
                            }
                            da + db
                        };
                        if S::ENABLED {
                            swaps_considered += 1;
                        }
                        if delta < -1e-9 {
                            let va_owned = hosts[sa.index()].remove(va.id());
                            let vb_owned = hosts[sb.index()].remove(vb.id());
                            hosts[sa.index()].add(vb_owned);
                            hosts[sb.index()].add(va_owned);
                            location[a] = sb;
                            location[b] = sa;
                            moves.push(SearchMove::Swap {
                                a: va.id(),
                                b: vb.id(),
                                server_a: sa,
                                server_b: sb,
                                delta,
                            });
                            improved = true;
                            if S::ENABLED {
                                swaps_accepted += 1;
                                metrics.observe("local_search.accepted_delta", -delta);
                                sink.emit(&Event {
                                    name: "local_search.swap",
                                    fields: &[
                                        ("a", FieldValue::U64(va.id().index() as u64)),
                                        ("b", FieldValue::U64(vb.id().index() as u64)),
                                        ("server_a", FieldValue::U64(sa.index() as u64)),
                                        ("server_b", FieldValue::U64(sb.index() as u64)),
                                        ("delta", FieldValue::F64(delta)),
                                    ],
                                });
                            }
                            if T::ENABLED {
                                // `vm` is the a-side VM; `winner` is its
                                // new server, `from` its old one; the
                                // partner rides in `attempt`.
                                tracer.explain(&ExplainRecord {
                                    shards: 1,
                                    winner: Some(sb.index() as u64),
                                    delta_cost: delta,
                                    from: Some(sa.index() as u64),
                                    attempt: vb.id().index() as u64,
                                    ..ExplainRecord::new(
                                        DecisionKind::Swap,
                                        va.id().index() as u64,
                                    )
                                });
                            }
                        }
                    }
                }
            }

            if !improved {
                break;
            }
        }

        if S::ENABLED {
            metrics.add("local_search.rounds", rounds);
            metrics.add("local_search.relocates_considered", relocates_considered);
            metrics.add("local_search.relocates_accepted", relocates_accepted);
            metrics.add(
                "local_search.relocates_rejected",
                relocates_considered - relocates_accepted,
            );
            metrics.add("local_search.swaps_considered", swaps_considered);
            metrics.add("local_search.swaps_accepted", swaps_accepted);
            metrics.add("local_search.swaps_rejected", swaps_considered - swaps_accepted);
            metrics.add("local_search.spec_class_pruned", pruned_targets);
            metrics.add("local_search.swap_fastpath_hits", fastpath_hits);
            metrics.add("local_search.swap_probe_rollbacks", probe_rollbacks);
        }

        let placement: Vec<Option<ServerId>> = location.into_iter().map(Some).collect();
        let refined =
            Assignment::from_placement(problem, &placement).map_err(AllocError::Placement)?;
        Ok((refined, moves))
    }

    /// The parallel twin of the fast path of
    /// [`LocalSearch::refine_observed`]: relocate targets and swap
    /// partners are scored read-only on pool shards and reduced in
    /// visit order, preserving first-improvement semantics exactly.
    ///
    /// Determinism contract (see DESIGN.md "Concurrency model"):
    ///
    /// * **Relocate (default order)** — workers sweep their *own*
    ///   contiguous server shards with shard-local prune stamps
    ///   (nothing is built on the conductor); each shard reports the
    ///   first improving target of its ascending sweep, and the
    ///   reduction takes the first improving shard in ascending shard
    ///   order — the exact target the sequential scan's `break`
    ///   accepts, with the identical delta (pure `&self` arithmetic on
    ///   the same ledger state). A shard's extra asleep
    ///   class representative scores bit-identically to the global
    ///   lowest-id one, so shard-local pruning never changes the
    ///   accepted move.
    /// * **Relocate (ordered targets)** — visit order is a global
    ///   cost sort, so the conductor builds the pruned target list in
    ///   visit order; each chunk reports the *first* improving target
    ///   of its shard; the reduction takes the first entry in ascending
    ///   chunk order.
    /// * **Swap** — for a fixed `a`, partners `b` are scored in
    ///   batches. A shard resolves a pair itself only when both sides
    ///   take the influence-region fast path (read-only); any pair
    ///   needing a checkpointed probe is reported back and resolved on
    ///   the conductor, in visit order, with `&mut` access — probes
    ///   never run concurrently. Acceptance invalidates all later
    ///   speculative entries: the batch restarts at `b + 1` under the
    ///   new state, which is exactly where the sequential inner loop
    ///   continues.
    ///
    /// Counter semantics: relocate tallies and `spec_class_pruned` are
    /// identical to the sequential run (post-acceptance shard work is
    /// discarded from the counts). Swap `considered`/`fastpath` tallies
    /// can slightly overcount within the accepting shard (speculative
    /// scoring past the accepted pair) — diagnostic, not part of the
    /// equality contract; placements, costs, and the move trace are.
    fn refine_parallel<'p, S: EventSink, T: Tracer>(
        &self,
        base: &Assignment<'p>,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> AllocResult<(Assignment<'p>, Vec<SearchMove>)> {
        let _refine_span = tracer.span("local_search.refine");
        enum Job {
            Idle,
            /// Ordered-targets relocate: the conductor builds the
            /// cost-sorted pruned target list, workers score chunks of
            /// it (visit order is a global sort, so targets cannot be
            /// swept shard-locally).
            Relocate {
                vm: Vm,
                removal_gain: f64,
                /// Pruned target server ids, in visit order.
                targets: Vec<u32>,
            },
            /// Default-order relocate: workers sweep their *own*
            /// contiguous server shards with shard-local prune stamps —
            /// no conductor-built target list at all. Dispatched over
            /// shard indices, not targets.
            RelocateSharded {
                vm: Vm,
                src: ServerId,
                removal_gain: f64,
            },
            Swap {
                va: Vm,
                sa: ServerId,
                /// Shard item `k` maps to partner `b = b_from + k`.
                b_from: usize,
            },
        }
        struct State {
            hosts: Vec<Host>,
            location: Vec<ServerId>,
            job: Job,
        }
        /// Shard verdicts, ascending `k`: `Some(delta)` is an improving
        /// move the shard fully scored; `None` is a pair needing the
        /// conductor's checkpointed probe.
        #[derive(Default)]
        struct ChunkOut {
            entries: Vec<(u32, Option<f64>)>,
            considered: u64,
            fast_sides: u64,
        }
        /// One shard's first-improvement sweep outcome
        /// ([`Job::RelocateSharded`]).
        #[derive(Default)]
        struct RelocateScan {
            /// First improving `(server id, delta)` — ends the sweep,
            /// exactly like the sequential `break`.
            improving: Option<(u32, f64)>,
            /// Targets scored before (and including) the break.
            considered: u64,
            /// Asleep twins pruned shard-locally before the break.
            pruned: u64,
            /// Shard-local asleep class representatives
            /// `(class, fits)` in sweep order, truncated at the break
            /// (instrumented runs only) — the conductor demotes
            /// cross-shard duplicates to pruned.
            reps: Vec<(u32, bool)>,
        }
        impl RelocateScan {
            fn reset(&mut self) {
                self.improving = None;
                self.considered = 0;
                self.pruned = 0;
                self.reps.clear();
            }
        }
        /// Persistent per-shard worker storage for the sharded relocate
        /// sweep. Each shard index lands in exactly one dispatch chunk,
        /// so the mutex is uncontended.
        struct ShardSlot {
            out: RelocateScan,
            /// Shard-local spec-class prune stamps.
            stamps: Vec<u64>,
            scan: u64,
        }

        let problem = base.problem();
        let mut hosts: Vec<Host> = problem.servers().iter().map(|s| Host::new(*s)).collect();
        let mut location: Vec<ServerId> = Vec::with_capacity(problem.vm_count());
        for (j, slot) in base.placement().iter().enumerate() {
            let server = slot.expect("complete");
            hosts[server.index()].add(problem.vms()[j]);
            location.push(server);
        }
        let state = RwLock::new(State {
            hosts,
            location,
            job: Job::Idle,
        });
        let n_vms = problem.vm_count();
        let n_servers = problem.server_count();
        let slots: Vec<Mutex<ChunkOut>> = (0..self.par.max_chunks(n_vms.max(n_servers)))
            .map(|_| Mutex::new(ChunkOut::default()))
            .collect();
        let instrumented = S::ENABLED || T::ENABLED;
        let classes = spec_classes(problem.servers());
        let routing = esvm_par::ShardRouting::new(n_servers, self.par.shards_for(n_servers));
        let n_shards = routing.n_shards();
        let shard_slots: Vec<Mutex<ShardSlot>> = (0..n_shards)
            .map(|_| {
                Mutex::new(ShardSlot {
                    out: RelocateScan::default(),
                    stamps: vec![u64::MAX; classes.count],
                    scan: 0,
                })
            })
            .collect();

        let worker = |chunk: usize, range: std::ops::Range<usize>| {
            let st = state.read().expect("local search state lock poisoned");
            let mut out = ChunkOut::default();
            match &st.job {
                Job::Idle => {}
                Job::Relocate {
                    vm,
                    removal_gain,
                    targets,
                } => {
                    for k in range {
                        let host = &st.hosts[targets[k] as usize];
                        if !host.fits(vm) {
                            continue;
                        }
                        let delta = removal_gain + host.ledger.incremental_cost(vm);
                        if instrumented {
                            out.considered += 1;
                        }
                        if delta < -1e-9 {
                            // First improvement ends the shard: later
                            // targets are unreachable sequentially too.
                            out.entries.push((k as u32, Some(delta)));
                            break;
                        }
                    }
                }
                Job::RelocateSharded {
                    vm,
                    src,
                    removal_gain,
                } => {
                    // `range` holds *shard indices* here: sweep each
                    // owned shard's contiguous id range ascending, the
                    // sequential loop body restricted to the shard.
                    for s in range {
                        let mut slot =
                            shard_slots[s].lock().expect("relocate shard slot poisoned");
                        let slot = &mut *slot;
                        slot.scan += 1;
                        slot.out.reset();
                        for i in routing.range(s) {
                            if i == src.index() {
                                continue;
                            }
                            let host = &st.hosts[i];
                            let mut is_rep = false;
                            if host.vms.is_empty() {
                                let class = classes.class_of[i];
                                if slot.stamps[class] == slot.scan {
                                    slot.out.pruned += 1;
                                    continue;
                                }
                                slot.stamps[class] = slot.scan;
                                is_rep = true;
                            }
                            let fits = host.fits(vm);
                            if instrumented && is_rep {
                                slot.out.reps.push((classes.class_of[i] as u32, fits));
                            }
                            if !fits {
                                continue;
                            }
                            let delta = removal_gain + host.ledger.incremental_cost(vm);
                            if instrumented {
                                slot.out.considered += 1;
                            }
                            if delta < -1e-9 {
                                // First improvement ends the sweep:
                                // later ids are unreachable
                                // sequentially too.
                                slot.out.improving = Some((i as u32, delta));
                                break;
                            }
                        }
                    }
                    return;
                }
                Job::Swap { va, sa, b_from } => {
                    for k in range {
                        let b = b_from + k;
                        let sb = st.location[b];
                        if sb == *sa {
                            continue;
                        }
                        let vb = problem.vms()[b];
                        let ha = &st.hosts[sa.index()];
                        let hb = &st.hosts[sb.index()];
                        if !ha.ledger.fits_replacing(&vb, va)
                            || !hb.ledger.fits_replacing(va, &vb)
                        {
                            continue;
                        }
                        let seg_a = ha.ledger.segments();
                        let seg_b = hb.ledger.segments();
                        let independent = !seg_a
                            .influence_region(va.interval())
                            .overlaps(seg_a.influence_region(vb.interval()))
                            && !seg_b
                                .influence_region(vb.interval())
                                .overlaps(seg_b.influence_region(va.interval()));
                        if independent {
                            let da = ha.ledger.incremental_cost(&vb)
                                - ha.ledger.decremental_cost(va);
                            let db = hb.ledger.incremental_cost(va)
                                - hb.ledger.decremental_cost(&vb);
                            if instrumented {
                                out.considered += 1;
                                out.fast_sides += 2;
                            }
                            if da + db < -1e-9 {
                                out.entries.push((k as u32, Some(da + db)));
                                break;
                            }
                        } else {
                            // Probes mutate the ledger; defer to the
                            // conductor. Keep scanning: if the probe
                            // rejects, later pairs are still needed.
                            out.entries.push((k as u32, None));
                        }
                    }
                }
            }
            *slots[chunk].lock().expect("local search chunk slot poisoned") = out;
        };

        let (moves, stats) = esvm_par::scope(self.par, worker, |pool| {
            let mut class_seen: Vec<u64> = vec![u64::MAX; classes.count];
            let mut scan: u64 = 0;
            // Cross-shard class-representative dedup stamps for the
            // sharded relocate merge, one fresh stamp per VM.
            let mut rep_seen: Vec<u64> = vec![u64::MAX; classes.count];
            let mut rep_stamp: u64 = 0;
            let mut order: Vec<usize> = (0..n_servers).collect();
            // `pruned_prefix[k]`: asleep twins pruned before target `k`
            // in visit order — the sequential scan stops counting at its
            // acceptance `break`, so the tally must too.
            let mut pruned_prefix: Vec<u64> = Vec::with_capacity(n_servers);
            let mut moves: Vec<SearchMove> = Vec::new();
            let mut rounds = 0u64;
            let mut relocates_considered = 0u64;
            let mut relocates_accepted = 0u64;
            let mut swaps_considered = 0u64;
            let mut swaps_accepted = 0u64;
            let mut pruned_targets = 0u64;
            let mut fastpath_hits = 0u64;
            let mut probe_rollbacks = 0u64;

            for _ in 0..self.max_rounds {
                let mut improved = false;
                let _round_span = tracer.span("local_search.round");
                if S::ENABLED {
                    rounds += 1;
                }

                // Relocate moves: one generation per VM.
                for j in 0..n_vms {
                    let vm = problem.vms()[j];
                    if !self.ordered_targets {
                        // Default visit order is ascending server ids —
                        // exactly the shard layout — so workers sweep
                        // their own shards with shard-local prune
                        // stamps and the merge takes the first
                        // improving shard in ascending order: the
                        // sequential first-improvement acceptance. A
                        // shard's extra asleep class representative is
                        // bit-identical in score to the global
                        // lowest-id one, so it can neither improve
                        // first nor change a verdict.
                        let src;
                        {
                            let mut st = state.write().expect("state lock poisoned");
                            let st = &mut *st;
                            src = st.location[j];
                            let removal_gain =
                                -st.hosts[src.index()].ledger.decremental_cost(&vm);
                            st.job = Job::RelocateSharded {
                                vm,
                                src,
                                removal_gain,
                            };
                        }
                        pool.dispatch(n_shards);
                        let mut accept: Option<(u32, f64)> = None;
                        let mut vm_considered = 0u64;
                        let mut vm_pruned = 0u64;
                        let mut shards_scanned = 0u64;
                        rep_stamp += 1;
                        for shard_slot in &shard_slots[..n_shards] {
                            let slot =
                                shard_slot.lock().expect("relocate shard slot poisoned");
                            let out = &slot.out;
                            if S::ENABLED || T::ENABLED {
                                // Demote cross-shard duplicate asleep
                                // class representatives to pruned, the
                                // sequential tally.
                                let mut scored_dupes = 0u64;
                                let mut unfit_dupes = 0u64;
                                for &(class, fits) in &out.reps {
                                    if rep_seen[class as usize] == rep_stamp {
                                        if fits {
                                            scored_dupes += 1;
                                        } else {
                                            unfit_dupes += 1;
                                        }
                                    } else {
                                        rep_seen[class as usize] = rep_stamp;
                                    }
                                }
                                vm_considered += out.considered - scored_dupes;
                                vm_pruned += out.pruned + scored_dupes + unfit_dupes;
                                shards_scanned += 1;
                            }
                            if let Some((sid, delta)) = out.improving {
                                accept = Some((sid, delta));
                                // Later shards' ids are unreachable
                                // past the sequential break; their
                                // sweeps are discarded, counters and
                                // all.
                                break;
                            }
                        }
                        if S::ENABLED {
                            relocates_considered += vm_considered;
                            pruned_targets += vm_pruned;
                        }
                        if let Some((sid, delta)) = accept {
                            let dst = ServerId(sid);
                            let mut st = state.write().expect("state lock poisoned");
                            let st = &mut *st;
                            let v = st.hosts[src.index()].remove(vm.id());
                            st.hosts[sid as usize].add(v);
                            st.location[j] = dst;
                            moves.push(SearchMove::Relocate {
                                vm: vm.id(),
                                from: src,
                                to: dst,
                                delta,
                            });
                            improved = true;
                            if S::ENABLED {
                                relocates_accepted += 1;
                                metrics.observe("local_search.accepted_delta", -delta);
                                sink.emit(&Event {
                                    name: "local_search.relocate",
                                    fields: &[
                                        ("vm", FieldValue::U64(vm.id().index() as u64)),
                                        ("from", FieldValue::U64(src.index() as u64)),
                                        ("to", FieldValue::U64(dst.index() as u64)),
                                        ("delta", FieldValue::F64(delta)),
                                    ],
                                });
                            }
                            if T::ENABLED {
                                tracer.explain(&ExplainRecord {
                                    candidates: vm_considered,
                                    pruned: vm_pruned,
                                    shards: shards_scanned,
                                    shard: routing.shard_of(sid as usize) as u64,
                                    winner: Some(u64::from(sid)),
                                    delta_cost: delta,
                                    from: Some(src.index() as u64),
                                    ..ExplainRecord::new(
                                        DecisionKind::Relocate,
                                        vm.id().index() as u64,
                                    )
                                });
                            }
                        }
                        continue;
                    }
                    let (src, n_targets);
                    {
                        // Workers are quiescent between dispatches, so
                        // the write lock is uncontended by construction.
                        let mut st = state.write().expect("state lock poisoned");
                        let st = &mut *st;
                        src = st.location[j];
                        let removal_gain =
                            -st.hosts[src.index()].ledger.decremental_cost(&vm);
                        if self.ordered_targets {
                            let hosts = &st.hosts;
                            order.sort_unstable_by(|&x, &y| {
                                hosts[x].cost().total_cmp(&hosts[y].cost()).then(x.cmp(&y))
                            });
                        }
                        scan += 1;
                        let mut targets = match std::mem::replace(&mut st.job, Job::Idle) {
                            Job::Relocate { targets, .. } => targets,
                            _ => Vec::with_capacity(n_servers),
                        };
                        targets.clear();
                        pruned_prefix.clear();
                        let mut vm_pruned = 0u64;
                        for &i in &order {
                            if i == src.index() {
                                continue;
                            }
                            if st.hosts[i].vms.is_empty() {
                                let class = classes.class_of[i];
                                if class_seen[class] == scan {
                                    if S::ENABLED || T::ENABLED {
                                        vm_pruned += 1;
                                    }
                                    continue;
                                }
                                class_seen[class] = scan;
                            }
                            if S::ENABLED || T::ENABLED {
                                pruned_prefix.push(vm_pruned);
                            }
                            targets.push(i as u32);
                        }
                        if S::ENABLED || T::ENABLED {
                            // Sentinel: prunes seen by a full (no-accept)
                            // scan, including trailing ones.
                            pruned_prefix.push(vm_pruned);
                        }
                        n_targets = targets.len();
                        st.job = Job::Relocate {
                            vm,
                            removal_gain,
                            targets,
                        };
                    }
                    pool.dispatch(n_targets);
                    let (_, n_chunks) = self.par.chunking(n_targets);
                    let mut accept: Option<(usize, f64)> = None;
                    let mut vm_considered = 0u64;
                    for slot in &slots[..n_chunks] {
                        let out = slot.lock().expect("chunk slot poisoned");
                        if S::ENABLED || T::ENABLED {
                            vm_considered += out.considered;
                        }
                        if let Some(&(k, Some(delta))) = out.entries.first() {
                            accept = Some((k as usize, delta));
                            // Later shards' work is speculative past the
                            // first improvement; drop it from the tallies
                            // to match the sequential scan exactly.
                            break;
                        }
                    }
                    let vm_pruned = if S::ENABLED || T::ENABLED {
                        match accept {
                            Some((k, _)) => pruned_prefix[k],
                            None => *pruned_prefix.last().expect("sentinel"),
                        }
                    } else {
                        0
                    };
                    if S::ENABLED {
                        relocates_considered += vm_considered;
                        pruned_targets += vm_pruned;
                    }
                    if let Some((k, delta)) = accept {
                        let mut st = state.write().expect("state lock poisoned");
                        let st = &mut *st;
                        let dst_index = match &st.job {
                            Job::Relocate { targets, .. } => targets[k] as usize,
                            _ => unreachable!("job still holds this VM's targets"),
                        };
                        let dst = ServerId(dst_index as u32);
                        let v = st.hosts[src.index()].remove(vm.id());
                        st.hosts[dst_index].add(v);
                        st.location[j] = dst;
                        moves.push(SearchMove::Relocate {
                            vm: vm.id(),
                            from: src,
                            to: dst,
                            delta,
                        });
                        improved = true;
                        if S::ENABLED {
                            relocates_accepted += 1;
                            metrics.observe("local_search.accepted_delta", -delta);
                            sink.emit(&Event {
                                name: "local_search.relocate",
                                fields: &[
                                    ("vm", FieldValue::U64(vm.id().index() as u64)),
                                    ("from", FieldValue::U64(src.index() as u64)),
                                    ("to", FieldValue::U64(dst.index() as u64)),
                                    ("delta", FieldValue::F64(delta)),
                                ],
                            });
                        }
                        if T::ENABLED {
                            tracer.explain(&ExplainRecord {
                                candidates: vm_considered,
                                pruned: vm_pruned,
                                shards: n_chunks as u64,
                                winner: Some(dst.index() as u64),
                                delta_cost: delta,
                                from: Some(src.index() as u64),
                                ..ExplainRecord::new(
                                    DecisionKind::Relocate,
                                    vm.id().index() as u64,
                                )
                            });
                        }
                    }
                }

                // Swap moves: batches of partners for each fixed `a`.
                if self.enable_swaps {
                    for a in 0..n_vms {
                        let va = problem.vms()[a];
                        let mut b_from = a + 1;
                        while b_from < n_vms {
                            let sa;
                            {
                                let mut st = state.write().expect("state lock poisoned");
                                // Re-read per batch: an accepted swap
                                // moves `a` to a new server.
                                sa = st.location[a];
                                st.job = Job::Swap { va, sa, b_from };
                            }
                            let n_items = n_vms - b_from;
                            pool.dispatch(n_items);
                            let (_, n_chunks) = self.par.chunking(n_items);
                            let mut accepted: Option<(usize, f64)> = None;
                            'chunks: for slot in &slots[..n_chunks] {
                                let out = slot.lock().expect("chunk slot poisoned");
                                if S::ENABLED {
                                    swaps_considered += out.considered;
                                    fastpath_hits += out.fast_sides;
                                }
                                for &(k, verdict) in &out.entries {
                                    let b = b_from + k as usize;
                                    match verdict {
                                        Some(delta) => {
                                            accepted = Some((b, delta));
                                            break 'chunks;
                                        }
                                        None => {
                                            // Checkpointed probe, conductor
                                            // only — never concurrent.
                                            let mut st = state
                                                .write()
                                                .expect("state lock poisoned");
                                            let st = &mut *st;
                                            let sb = st.location[b];
                                            let vb = problem.vms()[b];
                                            let (ha, hb) = pair_mut(
                                                &mut st.hosts,
                                                sa.index(),
                                                sb.index(),
                                            );
                                            let (da, fast_a) =
                                                swap_side_delta(ha, &va, &vb);
                                            let (db, fast_b) =
                                                swap_side_delta(hb, &vb, &va);
                                            if S::ENABLED {
                                                swaps_considered += 1;
                                                for fast in [fast_a, fast_b] {
                                                    if fast {
                                                        fastpath_hits += 1;
                                                    } else {
                                                        probe_rollbacks += 1;
                                                    }
                                                }
                                            }
                                            if da + db < -1e-9 {
                                                accepted = Some((b, da + db));
                                                break 'chunks;
                                            }
                                        }
                                    }
                                }
                            }
                            match accepted {
                                Some((b, delta)) => {
                                    let mut st =
                                        state.write().expect("state lock poisoned");
                                    let st = &mut *st;
                                    let sb = st.location[b];
                                    let vb = problem.vms()[b];
                                    let va_owned = st.hosts[sa.index()].remove(va.id());
                                    let vb_owned = st.hosts[sb.index()].remove(vb.id());
                                    st.hosts[sa.index()].add(vb_owned);
                                    st.hosts[sb.index()].add(va_owned);
                                    st.location[a] = sb;
                                    st.location[b] = sa;
                                    moves.push(SearchMove::Swap {
                                        a: va.id(),
                                        b: vb.id(),
                                        server_a: sa,
                                        server_b: sb,
                                        delta,
                                    });
                                    improved = true;
                                    if T::ENABLED {
                                        tracer.explain(&ExplainRecord {
                                            shards: 1,
                                            winner: Some(sb.index() as u64),
                                            delta_cost: delta,
                                            from: Some(sa.index() as u64),
                                            attempt: vb.id().index() as u64,
                                            ..ExplainRecord::new(
                                                DecisionKind::Swap,
                                                va.id().index() as u64,
                                            )
                                        });
                                    }
                                    if S::ENABLED {
                                        swaps_accepted += 1;
                                        metrics
                                            .observe("local_search.accepted_delta", -delta);
                                        sink.emit(&Event {
                                            name: "local_search.swap",
                                            fields: &[
                                                ("a", FieldValue::U64(va.id().index() as u64)),
                                                ("b", FieldValue::U64(vb.id().index() as u64)),
                                                (
                                                    "server_a",
                                                    FieldValue::U64(sa.index() as u64),
                                                ),
                                                (
                                                    "server_b",
                                                    FieldValue::U64(sb.index() as u64),
                                                ),
                                                ("delta", FieldValue::F64(delta)),
                                            ],
                                        });
                                    }
                                    // Resume exactly where the sequential
                                    // inner loop continues, under the new
                                    // state.
                                    b_from = b + 1;
                                }
                                None => break,
                            }
                        }
                    }
                }

                if !improved {
                    break;
                }
            }

            if S::ENABLED {
                metrics.add("local_search.rounds", rounds);
                metrics.add("local_search.relocates_considered", relocates_considered);
                metrics.add("local_search.relocates_accepted", relocates_accepted);
                metrics.add(
                    "local_search.relocates_rejected",
                    relocates_considered - relocates_accepted,
                );
                metrics.add("local_search.swaps_considered", swaps_considered);
                metrics.add("local_search.swaps_accepted", swaps_accepted);
                metrics.add(
                    "local_search.swaps_rejected",
                    swaps_considered.saturating_sub(swaps_accepted),
                );
                metrics.add("local_search.spec_class_pruned", pruned_targets);
                metrics.add("local_search.swap_fastpath_hits", fastpath_hits);
                metrics.add("local_search.swap_probe_rollbacks", probe_rollbacks);
            }
            (moves, pool.stats())
        });
        if S::ENABLED {
            metrics.add("local_search.par.generations", stats.generations);
            metrics.add("local_search.par.chunks", stats.chunks);
            metrics.add("local_search.par.steals", stats.steals);
            metrics.set_gauge("local_search.par.imbalance", stats.imbalance);
        }

        let location = state
            .into_inner()
            .expect("state lock poisoned")
            .location;
        let placement: Vec<Option<ServerId>> = location.into_iter().map(Some).collect();
        let refined =
            Assignment::from_placement(problem, &placement).map_err(AllocError::Placement)?;
        Ok((refined, moves))
    }
}

/// An [`Allocator`] wrapper: run `base`, then refine with local search.
#[derive(Debug, Clone)]
pub struct Refined<A> {
    base: A,
    search: LocalSearch,
    name: &'static str,
}

impl<A: Allocator> Refined<A> {
    /// Wraps `base`; `name` labels the pipeline in tables.
    pub fn new(base: A, search: LocalSearch, name: &'static str) -> Self {
        Self { base, search, name }
    }
}

impl<A: Allocator> Allocator for Refined<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let base = self.base.allocate(problem, rng)?;
        self.search.refine(&base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ffps, Miec};
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
    use rand::{rngs::StdRng, SeedableRng};

    fn problem() -> AllocationProblem {
        let mut b = ProblemBuilder::new();
        for i in 0..6 {
            let scale = 1.0 + (i % 3) as f64 * 0.5;
            b = b.server(
                Resources::new(8.0 * scale, 16.0 * scale),
                PowerModel::new(40.0 * scale, 100.0 * scale),
                60.0 * scale,
            );
        }
        for j in 0..14u32 {
            b = b.vm(
                Resources::new(1.0 + f64::from(j % 4), 2.0 + f64::from(j % 5)),
                Interval::with_len(1 + j * 2, 4 + (j % 3)),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn refinement_never_worsens() {
        let p = problem();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ffps::new().allocate(&p, &mut rng).unwrap();
            let refined = LocalSearch::new().refine(&base).unwrap();
            assert!(
                refined.total_cost() <= base.total_cost() + 1e-9,
                "seed {seed}: {} > {}",
                refined.total_cost(),
                base.total_cost()
            );
            assert!(refined.audit().is_ok());
        }
    }

    #[test]
    fn refinement_improves_a_bad_start() {
        // Round-robin spreads everything; local search must consolidate.
        let p = problem();
        let mut rng = StdRng::seed_from_u64(0);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new().refine(&base).unwrap();
        assert!(
            refined.total_cost() < base.total_cost() * 0.95,
            "expected ≥ 5% improvement over round-robin: {} vs {}",
            refined.total_cost(),
            base.total_cost()
        );
    }

    #[test]
    fn result_is_a_local_optimum_for_relocation() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(1);
        let base = Ffps::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new().refine(&base).unwrap();
        // No single relocation improves the refined solution.
        for j in 0..p.vm_count() {
            let vm = p.vms()[j];
            let src = refined.server_of(vm.id()).unwrap();
            for i in 0..p.server_count() {
                let dst = ServerId(i as u32);
                if dst == src {
                    continue;
                }
                let mut placement = refined.placement().to_vec();
                placement[j] = Some(dst);
                if let Ok(candidate) = Assignment::from_placement(&p, &placement) {
                    assert!(
                        candidate.total_cost() >= refined.total_cost() - 1e-6,
                        "relocating vm{j} to srv{i} improves: {} < {}",
                        candidate.total_cost(),
                        refined.total_cost()
                    );
                }
            }
        }
    }

    #[test]
    fn relocate_only_mode_works() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(2);
        let base = Ffps::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new()
            .relocate_only()
            .with_max_rounds(3)
            .refine(&base)
            .unwrap();
        assert!(refined.total_cost() <= base.total_cost() + 1e-9);
    }

    #[test]
    fn observed_refinement_matches_plain_and_reports_counts() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(0);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let plain = LocalSearch::new().refine(&base).unwrap();

        let mut sink = esvm_obs::MemorySink::default();
        let metrics = MetricsRegistry::new();
        let (observed, moves) = LocalSearch::new()
            .refine_observed(&base, &mut sink, &metrics)
            .unwrap();

        // Instrumentation must not change any decision.
        assert_eq!(observed.placement(), plain.placement());
        assert_eq!(observed.total_cost().to_bits(), plain.total_cost().to_bits());

        let accepted = metrics.counter("local_search.relocates_accepted")
            + metrics.counter("local_search.swaps_accepted");
        assert_eq!(accepted, moves.len() as u64);
        assert!(metrics.counter("local_search.rounds") >= 1);
        assert!(
            metrics.counter("local_search.relocates_considered")
                >= metrics.counter("local_search.relocates_accepted")
        );
        let h = metrics.histogram("local_search.accepted_delta").unwrap();
        assert_eq!(h.count, moves.len() as u64);
        assert!(h.min > 0.0, "accepted improvements are recorded as positive gains");
        // One event line per accepted move.
        assert_eq!(sink.lines.len(), moves.len());
        assert!(sink.lines.iter().all(|l| {
            l.starts_with("{\"event\":\"local_search.relocate\"")
                || l.starts_with("{\"event\":\"local_search.swap\"")
        }));
    }

    #[test]
    fn instrumented_refine_matches_plain_and_explains_accepted_moves() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(0);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let (plain, plain_moves) = LocalSearch::new().refine_traced(&base).unwrap();

        for par in [
            Parallelism::new(1),
            Parallelism::new(4).with_shards(3).with_batch(4),
        ] {
            let tracer = esvm_obs::CollectingTracer::new();
            let (traced, moves) = LocalSearch::new()
                .with_parallelism(par)
                .refine_instrumented(
                    &base,
                    &mut NoopSink,
                    &MetricsRegistry::new(),
                    &tracer,
                )
                .unwrap();
            assert_eq!(traced.placement(), plain.placement());
            assert_eq!(traced.total_cost().to_bits(), plain.total_cost().to_bits());
            assert_eq!(moves, plain_moves);

            // One explain record per accepted move, in acceptance order,
            // with winner / source / delta matching the move trace.
            let explains = tracer.explains();
            assert_eq!(explains.len(), moves.len());
            for (entry, mv) in explains.iter().zip(&moves) {
                match *mv {
                    SearchMove::Relocate { vm, from, to, delta } => {
                        assert_eq!(entry.record.kind, DecisionKind::Relocate);
                        assert_eq!(entry.record.vm, vm.index() as u64);
                        assert_eq!(entry.record.from, Some(from.index() as u64));
                        assert_eq!(entry.record.winner, Some(to.index() as u64));
                        assert_eq!(entry.record.delta_cost.to_bits(), delta.to_bits());
                        assert!(entry.record.candidates >= 1);
                    }
                    SearchMove::Swap { a, b, server_a, server_b, delta } => {
                        assert_eq!(entry.record.kind, DecisionKind::Swap);
                        assert_eq!(entry.record.vm, a.index() as u64);
                        assert_eq!(entry.record.attempt, b.index() as u64);
                        assert_eq!(entry.record.from, Some(server_a.index() as u64));
                        assert_eq!(entry.record.winner, Some(server_b.index() as u64));
                        assert_eq!(entry.record.delta_cost.to_bits(), delta.to_bits());
                    }
                }
            }

            // Span tree: one refine root, one round child per round, all
            // closed.
            assert_eq!(tracer.open_spans(), 0);
            let spans = tracer.spans();
            let refines: Vec<_> =
                spans.iter().filter(|s| s.name == "local_search.refine").collect();
            assert_eq!(refines.len(), 1);
            let rounds = spans.iter().filter(|s| s.name == "local_search.round");
            assert!(rounds.clone().count() >= 1);
            for r in rounds {
                assert_eq!(r.parent, refines[0].id);
            }
        }
    }

    #[test]
    fn wrapper_allocator_composes() {
        let p = problem();
        let wrapped = Refined::new(Miec::new(), LocalSearch::new(), "miec-ls");
        assert_eq!(wrapped.name(), "miec-ls");
        let mut rng = StdRng::seed_from_u64(3);
        let refined = wrapped.allocate(&p, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let plain = Miec::new().allocate(&p, &mut rng).unwrap();
        assert!(refined.total_cost() <= plain.total_cost() + 1e-9);
    }

    #[test]
    fn incomplete_input_is_rejected() {
        let p = problem();
        let empty = Assignment::new(&p);
        assert!(LocalSearch::new().refine(&empty).is_err());
    }

    #[test]
    fn swap_bookkeeping_is_consistent() {
        // Force a scenario where swaps matter: two servers, two VMs each
        // better off exchanged (capacity prevents simple relocation).
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(10.0, 90.0), 5.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(80.0, 160.0), 5.0)
            // Big VM must sit on server 1 unless the small one leaves.
            .vm(Resources::new(4.0, 8.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 3.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let mut base = Assignment::new(&p);
        base.place(VmId(0), ServerId(1)).unwrap();
        base.place(VmId(1), ServerId(0)).unwrap();
        let refined = LocalSearch::new().refine(&base).unwrap();
        assert!(refined.audit().is_ok());
        assert!(refined.total_cost() <= base.total_cost() + 1e-9);
    }

    #[test]
    fn fast_and_reference_agree() {
        let p = problem();
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
            let (fast, fast_moves) = LocalSearch::new().refine_traced(&base).unwrap();
            let (slow, slow_moves) = LocalSearch::reference().refine_traced(&base).unwrap();
            assert_eq!(
                fast_moves, slow_moves,
                "seed {seed}: trajectories diverged (would need tie certification)"
            );
            assert_eq!(fast.placement(), slow.placement(), "seed {seed}");
            assert!((fast.total_cost() - slow.total_cost()).abs() < 1e-6);
        }
    }

    #[test]
    fn ordered_targets_never_worsen() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(5);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let refined = LocalSearch::new()
            .with_ordered_targets()
            .refine(&base)
            .unwrap();
        assert!(refined.audit().is_ok());
        assert!(refined.total_cost() <= base.total_cost() + 1e-9);
    }

    #[test]
    fn parallel_refinement_matches_sequential_trajectory() {
        let p = problem();
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
            let (sequential, seq_moves) = LocalSearch::new().refine_traced(&base).unwrap();
            for threads in [2usize, 4, 8] {
                let (parallel, par_moves) = LocalSearch::new()
                    .with_parallelism(Parallelism::new(threads))
                    .refine_traced(&base)
                    .unwrap();
                assert_eq!(seq_moves, par_moves, "seed {seed} threads {threads}");
                assert_eq!(sequential.placement(), parallel.placement());
                assert_eq!(
                    sequential.total_cost().to_bits(),
                    parallel.total_cost().to_bits(),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_variants_preserve_trajectories_too() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(7);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        for make in [
            || LocalSearch::new().with_ordered_targets(),
            || LocalSearch::new().relocate_only(),
            || LocalSearch::new().with_max_rounds(2),
        ] as [fn() -> LocalSearch; 3]
        {
            let (sequential, seq_moves) = make().refine_traced(&base).unwrap();
            let (parallel, par_moves) = make()
                .with_parallelism(Parallelism::new(4))
                .refine_traced(&base)
                .unwrap();
            assert_eq!(seq_moves, par_moves);
            assert_eq!(sequential.placement(), parallel.placement());
        }
        // The reference oracle ignores the parallelism knob entirely.
        let (slow, slow_moves) = LocalSearch::reference().refine_traced(&base).unwrap();
        let (slow_par, slow_par_moves) = LocalSearch::reference()
            .with_parallelism(Parallelism::new(4))
            .refine_traced(&base)
            .unwrap();
        assert_eq!(slow_moves, slow_par_moves);
        assert_eq!(slow.placement(), slow_par.placement());
    }

    #[test]
    fn parallel_relocate_counters_match_sequential() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(0);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let seq_metrics = MetricsRegistry::new();
        let par_metrics = MetricsRegistry::new();
        LocalSearch::new()
            .refine_observed(&base, &mut esvm_obs::MemorySink::new(), &seq_metrics)
            .unwrap();
        LocalSearch::new()
            .with_parallelism(Parallelism::new(4))
            .refine_observed(&base, &mut esvm_obs::MemorySink::new(), &par_metrics)
            .unwrap();
        // Relocate tallies are exact under parallelism; swap tallies may
        // overcount speculative shard work and are not compared.
        for name in [
            "local_search.rounds",
            "local_search.relocates_considered",
            "local_search.relocates_accepted",
            "local_search.relocates_rejected",
            "local_search.spec_class_pruned",
            "local_search.swaps_accepted",
        ] {
            assert_eq!(
                seq_metrics.counter(name),
                par_metrics.counter(name),
                "{name}"
            );
        }
        assert!(par_metrics.counter("local_search.par.generations") > 0);
    }

    #[test]
    fn traced_moves_replay_to_the_same_result() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(6);
        let base = crate::RoundRobin::new().allocate(&p, &mut rng).unwrap();
        let (refined, moves) = LocalSearch::new().refine_traced(&base).unwrap();
        assert!(!moves.is_empty(), "round-robin start should leave work");
        let mut placement: Vec<Option<ServerId>> = base.placement().to_vec();
        for m in &moves {
            match *m {
                SearchMove::Relocate { vm, from, to, delta } => {
                    assert_eq!(placement[vm.index()], Some(from));
                    assert!(delta < -1e-9);
                    placement[vm.index()] = Some(to);
                }
                SearchMove::Swap {
                    a,
                    b,
                    server_a,
                    server_b,
                    delta,
                } => {
                    assert_eq!(placement[a.index()], Some(server_a));
                    assert_eq!(placement[b.index()], Some(server_b));
                    assert!(delta < -1e-9);
                    placement[a.index()] = Some(server_b);
                    placement[b.index()] = Some(server_a);
                }
            }
        }
        assert_eq!(placement.as_slice(), refined.placement());
    }
}
