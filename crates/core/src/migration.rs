//! Dynamic consolidation by live migration — the extension the paper
//! contrasts itself against.
//!
//! Section V: "[6] and [18] researched to save energy consumption in
//! data centers by dynamic migration of VMs according to the current
//! resource utilization. In comparison, our problem focuses on saving
//! energy consumption by VM allocation instead of migration." This
//! module implements that contrasting mechanism on top of any base
//! allocation, so the repository can quantify how much extra energy
//! migration can recover and at what cost.
//!
//! [`Consolidator`] is an offline post-pass over a finished
//! [`Assignment`]: at every VM departure instant it examines each server
//! still hosting *running* VMs and asks whether migrating all of their
//! remaining tails elsewhere — truncating the server's future
//! obligations — yields a net energy gain after paying `μ × memory` per
//! move. Gains are evaluated *exactly* with the delta machinery of
//! [`ServerLedger`]: the source's saving is the sum of realized
//! `unhost_piece` returns (removal deltas) and every candidate target is
//! scored with a pure `incremental_piece_cost` (insertion delta) — no
//! fleet clones, no full-cost rescans inside the evaluation loop.
//! Rejected evictions are rolled back through ledger checkpoints, so
//! the cached per-server costs never drift. The seed's clone-and-rescan
//! evaluation survives behind [`Consolidator::reference`] as the oracle
//! the fast path is tested against.

use crate::{AllocError, AllocResult};
use esvm_obs::{Event, EventSink, FieldValue, MetricsRegistry, NoopSink};
use esvm_simcore::energy::segment_cost;
use esvm_simcore::{
    Assignment, Interval, LedgerCheckpoint, Resources, Schedule, SegmentSet, ServerId,
    ServerLedger, ServerSpec, TimeUnit, UsageProfile, VmId,
};

/// Exact per-server energy evaluation from a usage profile — the seed's
/// clone-and-rescan evaluator, retained for the reference oracle path.
#[derive(Debug, Clone)]
struct ServerState {
    spec: ServerSpec,
    usage: UsageProfile,
    run_cost: f64,
}

impl ServerState {
    fn new(spec: ServerSpec) -> Self {
        Self {
            spec,
            usage: UsageProfile::new(),
            run_cost: 0.0,
        }
    }

    /// Busy segments: maximal unions of non-zero usage.
    fn segments(&self) -> SegmentSet {
        self.usage
            .nonzero_pieces_iter()
            .map(|(interval, _)| interval)
            .collect()
    }

    fn cost(&self) -> f64 {
        self.run_cost + segment_cost(&self.spec, &self.segments())
    }

    fn run_cost_of(&self, demand: Resources, interval: Interval) -> f64 {
        self.spec.power_per_cpu_unit() * demand.cpu * interval.len() as f64
    }

    fn add(&mut self, demand: Resources, interval: Interval) {
        self.usage.add(interval, demand);
        self.run_cost += self.run_cost_of(demand, interval);
    }

    fn remove(&mut self, demand: Resources, interval: Interval) {
        self.usage.remove(interval, demand);
        self.run_cost -= self.run_cost_of(demand, interval);
    }

    fn fits(&self, demand: Resources, interval: Interval) -> bool {
        self.usage.fits(interval, demand, self.spec.capacity())
    }

    /// Cost with a hypothetical extra piece (non-mutating).
    fn cost_with(&self, demand: Resources, interval: Interval) -> f64 {
        let mut probe = self.clone();
        probe.add(demand, interval);
        probe.cost()
    }

    /// Cost with hypothetical pieces removed (non-mutating).
    fn cost_without(&self, pieces: &[(Resources, Interval)]) -> f64 {
        let mut probe = self.clone();
        for (demand, interval) in pieces {
            probe.remove(*demand, *interval);
        }
        probe.cost()
    }
}

/// The tails of VMs whose current piece runs on `source` strictly past
/// `t`: the candidate evictions at departure instant `t`.
fn tails_on(
    current: &[(ServerId, Interval)],
    source: ServerId,
    t: TimeUnit,
) -> Vec<(VmId, Interval)> {
    current
        .iter()
        .enumerate()
        .filter_map(|(j, &(server, piece))| {
            (server == source && piece.contains(t) && piece.end() > t)
                .then(|| (VmId(j as u32), Interval::new(t + 1, piece.end())))
        })
        .collect()
}

/// Offline consolidation pass: migrate running VMs off servers whose
/// remaining obligations are no longer worth their idle power.
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, Consolidator, Ffps};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 140.0), 20.0)
///     .server(Resources::new(8.0, 16.0), PowerModel::new(10.0, 60.0), 20.0)
///     .vm(Resources::new(2.0, 2.0), Interval::new(1, 30))
///     .vm(Resources::new(2.0, 2.0), Interval::new(1, 30))
///     .vm(Resources::new(1.0, 1.0), Interval::new(1, 2))
///     .build()?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let base = Ffps::new().allocate(&problem, &mut rng)?;
/// let schedule = Consolidator::new(2.0).consolidate(&base)?;
/// let audit = schedule.audit().expect("valid schedule");
/// assert!(audit.total_cost <= base.total_cost() + 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Consolidator {
    migration_energy_per_gb: f64,
    min_gain: f64,
    reference: bool,
}

impl Consolidator {
    /// Creates a consolidator charging `μ` watt·time-units per GB moved.
    ///
    /// # Panics
    ///
    /// Panics if `migration_energy_per_gb` is negative or not finite.
    pub fn new(migration_energy_per_gb: f64) -> Self {
        assert!(
            migration_energy_per_gb.is_finite() && migration_energy_per_gb >= 0.0,
            "migration energy must be finite and non-negative"
        );
        Self {
            migration_energy_per_gb,
            min_gain: 1e-6,
            reference: false,
        }
    }

    /// The seed's clone-and-rescan evaluation (fleet probe copies, full
    /// segment rebuilds per candidate), retained as the oracle the
    /// delta-scored path is tested against. Same greedy policy; an
    /// order of magnitude slower on large fleets.
    pub fn reference(migration_energy_per_gb: f64) -> Self {
        Self {
            reference: true,
            ..Self::new(migration_energy_per_gb)
        }
    }

    /// Requires at least `gain` watt·time-units of net saving before a
    /// server is emptied (hysteresis against churn).
    pub fn with_min_gain(mut self, gain: f64) -> Self {
        self.min_gain = gain.max(0.0);
        self
    }

    /// The configured migration energy per GB.
    pub fn migration_energy_per_gb(&self) -> f64 {
        self.migration_energy_per_gb
    }

    /// Runs the pass over a complete assignment.
    ///
    /// # Errors
    ///
    /// [`AllocError::Placement`] if the base assignment is incomplete
    /// (the pass needs full knowledge of every VM's placement).
    pub fn consolidate<'p>(&self, base: &Assignment<'p>) -> AllocResult<Schedule<'p>> {
        self.consolidate_observed(base, &mut NoopSink, &MetricsRegistry::new())
    }

    /// [`Consolidator::consolidate`] with telemetry: eviction decisions
    /// are counted into `metrics` (`consolidator.*` counters and the
    /// `consolidator.eviction_net_gain` histogram) and every committed
    /// eviction emits a `consolidator.evict` event into `sink`.
    ///
    /// With [`esvm_obs::NoopSink`] this monomorphizes to exactly the
    /// uninstrumented pass. The reference oracle path is never
    /// instrumented (it exists only for equivalence testing).
    ///
    /// # Errors
    ///
    /// Same contract as [`Consolidator::consolidate`].
    pub fn consolidate_observed<'p, S: EventSink>(
        &self,
        base: &Assignment<'p>,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<Schedule<'p>> {
        if self.reference {
            self.consolidate_reference(base)
        } else {
            self.consolidate_fast(base, sink, metrics)
        }
    }

    /// Departure instants of the problem's VMs, ascending and deduped.
    fn departures(problem: &esvm_simcore::AllocationProblem) -> Vec<TimeUnit> {
        let mut departures: Vec<TimeUnit> = problem.vms().iter().map(|v| v.end()).collect();
        departures.sort_unstable();
        departures.dedup();
        departures
    }

    /// Delta-scored evaluation on [`ServerLedger`]s: savings realized by
    /// transient `unhost_piece`, targets scored by pure insertion
    /// deltas, rejected evictions rolled back via checkpoints.
    fn consolidate_fast<'p, S: EventSink>(
        &self,
        base: &Assignment<'p>,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<Schedule<'p>> {
        let problem = base.problem();
        if let Some(vm) = base.unplaced().next() {
            return Err(AllocError::Placement(esvm_simcore::Error::Unplaced(vm)));
        }

        let mut schedule = Schedule::from_assignment(base, self.migration_energy_per_gb)
            .map_err(AllocError::Placement)?;

        let mut ledgers: Vec<ServerLedger> = problem
            .servers()
            .iter()
            .map(|s| ServerLedger::new(*s))
            .collect();
        // Current (last) piece per VM: (server, interval).
        let mut current: Vec<(ServerId, Interval)> = Vec::with_capacity(problem.vm_count());
        for (j, slot) in base.placement().iter().enumerate() {
            let server = slot.expect("checked complete");
            let vm = &problem.vms()[j];
            ledgers[server.index()].host_piece(vm.demand(), vm.interval());
            current.push((server, vm.interval()));
        }

        let mut departure_events = 0u64;
        let mut evictions_proposed = 0u64;
        let mut evictions_committed = 0u64;
        let mut evictions_rolled_back = 0u64;
        let mut migrations = 0u64;

        for &t in &Self::departures(problem) {
            if S::ENABLED {
                departure_events += 1;
            }
            for source in 0..problem.server_count() {
                let tails = tails_on(&current, ServerId(source as u32), t);
                if tails.is_empty() {
                    continue;
                }
                if S::ENABLED {
                    evictions_proposed += 1;
                }

                // Evict the tails transiently; the realized returns sum
                // to the exact run + idle + switch-on saving on the
                // source (telescoping removal deltas).
                let source_checkpoint = ledgers[source].checkpoint();
                let mut saving = 0.0;
                for &(vm, tail) in &tails {
                    saving += ledgers[source].unhost_piece(problem.vms()[vm.index()].demand(), tail);
                }

                // Cheapest target per tail, scored by pure insertion
                // delta. Chosen targets are hosted immediately so
                // same-target tails stack; first-touch checkpoints allow
                // an exact rollback if the eviction is rejected.
                let mut touched: Vec<(usize, LedgerCheckpoint)> = Vec::new();
                let mut moves: Vec<(VmId, Interval, ServerId)> = Vec::new();
                let mut relocation_cost = 0.0;
                let mut feasible = true;
                for &(vm, tail) in &tails {
                    let demand = problem.vms()[vm.index()].demand();
                    let mut best: Option<(f64, usize)> = None;
                    for (i, ledger) in ledgers.iter().enumerate() {
                        if i == source || !ledger.fits_piece(demand, tail) {
                            continue;
                        }
                        let delta = ledger.incremental_piece_cost(demand, tail);
                        if best.is_none_or(|(d, _)| delta < d) {
                            best = Some((delta, i));
                        }
                    }
                    let Some((delta, target)) = best else {
                        feasible = false;
                        break;
                    };
                    if !touched.iter().any(|&(i, _)| i == target) {
                        touched.push((target, ledgers[target].checkpoint()));
                    }
                    ledgers[target].host_piece(demand, tail);
                    relocation_cost += delta + self.migration_energy_per_gb * demand.mem;
                    moves.push((vm, tail, ServerId(target as u32)));
                }

                if !feasible || saving - relocation_cost <= self.min_gain {
                    if S::ENABLED {
                        evictions_rolled_back += 1;
                    }
                    // Roll back: targets first, then re-host the tails on
                    // the source; checkpoints restore the float
                    // accumulators bit-exactly.
                    for &(vm, tail, target) in moves.iter().rev() {
                        ledgers[target.index()]
                            .unhost_piece(problem.vms()[vm.index()].demand(), tail);
                    }
                    for &(i, checkpoint) in &touched {
                        ledgers[i].restore_costs(checkpoint);
                    }
                    for &(vm, tail) in tails.iter().rev() {
                        ledgers[source].host_piece(problem.vms()[vm.index()].demand(), tail);
                    }
                    ledgers[source].restore_costs(source_checkpoint);
                    continue;
                }

                // Commit: the ledgers already reflect the eviction;
                // mirror it on the schedule.
                if S::ENABLED {
                    evictions_committed += 1;
                    migrations += moves.len() as u64;
                    metrics.observe("consolidator.eviction_net_gain", saving - relocation_cost);
                    sink.emit(&Event {
                        name: "consolidator.evict",
                        fields: &[
                            ("t", FieldValue::U64(u64::from(t))),
                            ("source", FieldValue::U64(source as u64)),
                            ("tails", FieldValue::U64(tails.len() as u64)),
                            ("saving", FieldValue::F64(saving)),
                            ("relocation_cost", FieldValue::F64(relocation_cost)),
                        ],
                    });
                }
                for &(vm, tail, target) in &moves {
                    schedule
                        .truncate_last_piece(vm, t)
                        .map_err(AllocError::Placement)?;
                    schedule
                        .host(vm, target, tail)
                        .map_err(AllocError::Placement)?;
                    current[vm.index()] = (target, tail);
                }
            }
        }

        if S::ENABLED {
            metrics.add("consolidator.departure_events", departure_events);
            metrics.add("consolidator.evictions_proposed", evictions_proposed);
            metrics.add("consolidator.evictions_committed", evictions_committed);
            metrics.add("consolidator.evictions_rolled_back", evictions_rolled_back);
            metrics.add("consolidator.migrations", migrations);
        }
        Ok(schedule)
    }

    /// The seed's clone-and-rescan pass (see [`Consolidator::reference`]).
    fn consolidate_reference<'p>(&self, base: &Assignment<'p>) -> AllocResult<Schedule<'p>> {
        let problem = base.problem();
        if let Some(vm) = base.unplaced().next() {
            return Err(AllocError::Placement(esvm_simcore::Error::Unplaced(vm)));
        }

        let mut schedule = Schedule::from_assignment(base, self.migration_energy_per_gb)
            .map_err(AllocError::Placement)?;

        // Exact per-server evaluators, mirroring the schedule.
        let mut servers: Vec<ServerState> = problem
            .servers()
            .iter()
            .map(|s| ServerState::new(*s))
            .collect();
        let mut current: Vec<(ServerId, Interval)> = Vec::with_capacity(problem.vm_count());
        for (j, slot) in base.placement().iter().enumerate() {
            let server = slot.expect("checked complete");
            let vm = &problem.vms()[j];
            servers[server.index()].add(vm.demand(), vm.interval());
            current.push((server, vm.interval()));
        }

        for &t in &Self::departures(problem) {
            for source in 0..problem.server_count() {
                let tails = tails_on(&current, ServerId(source as u32), t);
                if tails.is_empty() {
                    continue;
                }

                // Savings on the source if every tail leaves.
                let removed: Vec<(Resources, Interval)> = tails
                    .iter()
                    .map(|&(vm, tail)| (problem.vms()[vm.index()].demand(), tail))
                    .collect();
                let saving = servers[source].cost() - servers[source].cost_without(&removed);

                // Cheapest relocation for every tail (greedy, sequential
                // on a probe copy so same-target tails stack correctly).
                let mut probe = servers.clone();
                let mut moves: Vec<(VmId, Interval, ServerId)> = Vec::new();
                let mut relocation_cost = 0.0;
                let mut feasible = true;
                for &(vm, tail) in &tails {
                    let demand = problem.vms()[vm.index()].demand();
                    let mut best: Option<(f64, ServerId)> = None;
                    for (i, target) in probe.iter().enumerate() {
                        if i == source || !target.fits(demand, tail) {
                            continue;
                        }
                        let delta = target.cost_with(demand, tail) - target.cost();
                        if best.is_none_or(|(d, _)| delta < d) {
                            best = Some((delta, ServerId(i as u32)));
                        }
                    }
                    let Some((delta, target)) = best else {
                        feasible = false;
                        break;
                    };
                    relocation_cost += delta + self.migration_energy_per_gb * demand.mem;
                    probe[target.index()].add(demand, tail);
                    moves.push((vm, tail, target));
                }
                if !feasible || saving - relocation_cost <= self.min_gain {
                    continue;
                }

                // Commit: truncate on the schedule and evaluators, rehost.
                for &(vm, tail, target) in &moves {
                    let demand = problem.vms()[vm.index()].demand();
                    schedule
                        .truncate_last_piece(vm, t)
                        .map_err(AllocError::Placement)?;
                    schedule
                        .host(vm, target, tail)
                        .map_err(AllocError::Placement)?;
                    servers[source].remove(demand, tail);
                    servers[target.index()].add(demand, tail);
                    current[vm.index()] = (target, tail);
                }
            }
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Allocator, Ffps, Miec};
    use esvm_simcore::{PowerModel, ProblemBuilder, Resources};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn consolidation_never_increases_cost() {
        let problem = esvm_workload_config(60, 30, 2.0, 7);
        let mut rng = StdRng::seed_from_u64(0);
        for base in [
            Ffps::new().allocate(&problem, &mut rng).unwrap(),
            Miec::new().allocate(&problem, &mut rng).unwrap(),
        ] {
            let schedule = Consolidator::new(2.0).consolidate(&base).unwrap();
            let audit = schedule.audit().unwrap();
            assert!(
                audit.total_cost <= base.total_cost() + 1e-6,
                "consolidated {} vs base {}",
                audit.total_cost,
                base.total_cost()
            );
        }
    }

    /// Helper: a generated workload without depending on esvm-workload
    /// (dev-dependency cycle); hand-rolled Poisson-ish arrivals.
    fn esvm_workload_config(
        vms: usize,
        servers: usize,
        ia: f64,
        seed: u64,
    ) -> esvm_simcore::AllocationProblem {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ProblemBuilder::new();
        for i in 0..servers {
            let scale = 1.0 + (i % 3) as f64;
            b = b.server(
                Resources::new(8.0 * scale, 16.0 * scale),
                PowerModel::new(40.0 * scale, 90.0 * scale),
                90.0 * scale,
            );
        }
        let mut t = 1.0f64;
        for _ in 0..vms {
            t += -ia * (1.0 - rng.gen::<f64>()).ln();
            let start = (t.ceil() as u32).max(1);
            let len = ((-5.0 * (1.0 - rng.gen::<f64>()).ln()).round() as u32).max(1);
            let cpu = f64::from(rng.gen_range(1u32..=6));
            let mem = f64::from(rng.gen_range(1u32..=10));
            b = b.vm(
                Resources::new(cpu, mem),
                esvm_simcore::Interval::with_len(start, len),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn crafted_merge_opportunity_is_taken() {
        // Two servers each hosting one long VM; a third short VM departs
        // from server 0 at t=2, leaving vm0's tail worth migrating onto
        // server 1 (low idle power there, big idle saving on server 0).
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 150.0), 10.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(10.0, 60.0), 10.0)
            .vm(Resources::new(2.0, 2.0), Interval::new(1, 30)) // long, on 0
            .vm(Resources::new(2.0, 2.0), Interval::new(1, 30)) // long, on 1
            .vm(Resources::new(1.0, 1.0), Interval::new(1, 2)) // short, on 0
            .build()
            .unwrap();
        let mut base = esvm_simcore::Assignment::new(&p);
        base.place(VmId(0), ServerId(0)).unwrap();
        base.place(VmId(1), ServerId(1)).unwrap();
        base.place(VmId(2), ServerId(0)).unwrap();

        let schedule = Consolidator::new(1.0).consolidate(&base).unwrap();
        let audit = schedule.audit().unwrap();
        assert!(audit.migrations >= 1, "expected a migration");
        assert!(audit.total_cost < base.total_cost());
        // vm0 ends up on server 1 for its tail.
        let last = schedule.pieces_of(VmId(0)).last().unwrap();
        assert_eq!(last.server, ServerId(1));
    }

    #[test]
    fn prohibitive_migration_energy_freezes_everything() {
        let problem = esvm_workload_config(40, 20, 2.0, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let base = Ffps::new().allocate(&problem, &mut rng).unwrap();
        let schedule = Consolidator::new(1e9).consolidate(&base).unwrap();
        let audit = schedule.audit().unwrap();
        assert_eq!(audit.migrations, 0);
        assert!((audit.total_cost - base.total_cost()).abs() < 1e-6);
    }

    #[test]
    fn incomplete_assignment_is_rejected() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(10.0, 20.0), 5.0)
            .vm(Resources::new(1.0, 1.0), Interval::new(1, 2))
            .build()
            .unwrap();
        let base = esvm_simcore::Assignment::new(&p);
        assert!(Consolidator::new(1.0).consolidate(&base).is_err());
        assert!(Consolidator::reference(1.0).consolidate(&base).is_err());
    }

    #[test]
    fn zero_migration_energy_consolidates_most() {
        let problem = esvm_workload_config(50, 25, 3.0, 11);
        let mut rng = StdRng::seed_from_u64(2);
        let base = Ffps::new().allocate(&problem, &mut rng).unwrap();
        let cheap = Consolidator::new(0.0).consolidate(&base).unwrap();
        let dear = Consolidator::new(50.0).consolidate(&base).unwrap();
        let cheap_audit = cheap.audit().unwrap();
        let dear_audit = dear.audit().unwrap();
        assert!(cheap_audit.migrations >= dear_audit.migrations);
        assert!(cheap_audit.total_cost <= dear_audit.total_cost + 1e-6);
    }

    #[test]
    fn min_gain_hysteresis_reduces_churn() {
        let problem = esvm_workload_config(50, 25, 3.0, 13);
        let mut rng = StdRng::seed_from_u64(4);
        let base = Ffps::new().allocate(&problem, &mut rng).unwrap();
        let eager = Consolidator::new(1.0).consolidate(&base).unwrap();
        let lazy = Consolidator::new(1.0)
            .with_min_gain(500.0)
            .consolidate(&base)
            .unwrap();
        assert!(
            lazy.audit().unwrap().migrations <= eager.audit().unwrap().migrations
        );
    }

    #[test]
    fn observed_consolidation_matches_plain_and_counts_migrations() {
        let problem = esvm_workload_config(60, 30, 2.0, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let base = Ffps::new().allocate(&problem, &mut rng).unwrap();
        let plain = Consolidator::new(2.0).consolidate(&base).unwrap();

        let mut sink = esvm_obs::MemorySink::default();
        let metrics = MetricsRegistry::new();
        let observed = Consolidator::new(2.0)
            .consolidate_observed(&base, &mut sink, &metrics)
            .unwrap();

        // Instrumentation must not change any decision.
        for j in 0..problem.vm_count() {
            assert_eq!(
                observed.pieces_of(VmId(j as u32)),
                plain.pieces_of(VmId(j as u32))
            );
        }
        let audit = observed.audit().unwrap();
        assert_eq!(metrics.counter("consolidator.migrations"), audit.migrations as u64);
        let committed = metrics.counter("consolidator.evictions_committed");
        let rolled_back = metrics.counter("consolidator.evictions_rolled_back");
        assert_eq!(
            committed + rolled_back,
            metrics.counter("consolidator.evictions_proposed")
        );
        assert!(metrics.counter("consolidator.departure_events") >= 1);
        let gains = metrics.histogram("consolidator.eviction_net_gain").unwrap();
        assert_eq!(gains.count, committed);
        assert!(gains.min > 0.0, "committed evictions always clear min_gain");
        // One event line per committed eviction.
        assert_eq!(sink.lines.len(), committed as usize);
        assert!(sink
            .lines
            .iter()
            .all(|l| l.starts_with("{\"event\":\"consolidator.evict\"")));
    }

    #[test]
    fn fast_and_reference_produce_the_same_schedule() {
        // The delta-scored pass and the clone-and-rescan oracle make the
        // same greedy decisions (both score exactly; divergence would
        // require a floating-point tie at the min_gain threshold or in a
        // target comparison, none of which these workloads exhibit).
        for (vms, servers, ia, seed) in
            [(60, 30, 2.0, 7), (40, 20, 2.0, 3), (50, 25, 3.0, 11), (80, 20, 1.5, 21)]
        {
            let problem = esvm_workload_config(vms, servers, ia, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ffps::new().allocate(&problem, &mut rng).unwrap();
            for mu in [0.0, 1.0, 20.0] {
                let fast = Consolidator::new(mu).consolidate(&base).unwrap();
                let slow = Consolidator::reference(mu).consolidate(&base).unwrap();
                let fa = fast.audit().unwrap();
                let sa = slow.audit().unwrap();
                assert_eq!(
                    fa.migrations, sa.migrations,
                    "seed {seed} μ={mu}: migration counts diverged"
                );
                assert!(
                    (fa.total_cost - sa.total_cost).abs() < 1e-6,
                    "seed {seed} μ={mu}: {} vs {}",
                    fa.total_cost,
                    sa.total_cost
                );
                for j in 0..problem.vm_count() {
                    assert_eq!(
                        fast.pieces_of(VmId(j as u32)),
                        slow.pieces_of(VmId(j as u32)),
                        "seed {seed} μ={mu}: vm {j} pieces diverged"
                    );
                }
            }
        }
    }
}
