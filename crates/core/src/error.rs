//! Allocation errors.

use esvm_simcore::VmId;
use std::fmt;

/// Result alias for allocation runs.
pub type AllocResult<T> = std::result::Result<T, AllocError>;

/// Errors raised by allocation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// No server has sufficient spare CPU and memory for the VM
    /// throughout its duration — the candidate set `S_j` is empty. The
    /// data center is overloaded at the VM's time window.
    NoFeasibleServer(VmId),
    /// A placement the algorithm believed valid was rejected by the
    /// assignment (indicates an algorithm bug; surfaced rather than
    /// panicking so batch experiment runs can report it).
    Placement(esvm_simcore::Error),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoFeasibleServer(vm) => {
                write!(f, "no server can host {vm} throughout its duration")
            }
            AllocError::Placement(e) => write!(f, "placement rejected: {e}"),
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Placement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<esvm_simcore::Error> for AllocError {
    fn from(e: esvm_simcore::Error) -> Self {
        AllocError::Placement(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AllocError::NoFeasibleServer(VmId(3));
        assert!(e.to_string().contains("vm3"));
        let e: AllocError = esvm_simcore::Error::NoServers.into();
        assert!(e.to_string().contains("placement rejected"));
    }

    #[test]
    fn source_chains_placement_errors() {
        use std::error::Error as _;
        let e: AllocError = esvm_simcore::Error::NoServers.into();
        assert!(e.source().is_some());
        assert!(AllocError::NoFeasibleServer(VmId(0)).source().is_none());
    }
}
