//! Spec-class grouping shared by the pruned candidate scans.
//!
//! Servers with identical capacity, power model and transition cost are
//! interchangeable while *asleep*: they give the same `fits` verdict and
//! bit-identical marginal scores for any VM. A candidate scan that walks
//! servers in id order therefore only needs to score the first asleep
//! member of each class — the strict `<` tie-break would pick exactly
//! that member anyway — so the pruning is placement-preserving. MIEC's
//! online scan and the local-search relocate pass both use this.

use esvm_simcore::ServerSpec;

/// Spec-class partition of a server fleet.
#[derive(Debug, Clone)]
pub(crate) struct SpecClasses {
    /// Class index of each server, aligned with the spec slice.
    pub class_of: Vec<usize>,
    /// Number of distinct classes.
    pub count: usize,
}

/// Groups `specs` into classes of identical (capacity, power model,
/// transition cost). Quadratic in the number of *classes*, linear in the
/// number of servers — fleets are catalogs of a few models.
pub(crate) fn spec_classes(specs: &[ServerSpec]) -> SpecClasses {
    let mut reps: Vec<usize> = Vec::new();
    let class_of = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let found = reps.iter().position(|&r| {
                let t = &specs[r];
                t.capacity() == s.capacity()
                    && t.power() == s.power()
                    && t.transition_cost() == s.transition_cost()
            });
            found.unwrap_or_else(|| {
                reps.push(i);
                reps.len() - 1
            })
        })
        .collect();
    SpecClasses {
        class_of,
        count: reps.len(),
    }
}
