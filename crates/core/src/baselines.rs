//! Additional baselines for ablation studies.
//!
//! None of these appear in the paper; they bracket the MIEC heuristic
//! from below (energy-naive packing rules) and isolate individual
//! ingredients of its saving:
//!
//! * [`FirstFit`] — FFPS without the random shuffle (servers in id
//!   order): separates "first fit" from "random order".
//! * [`BestFit`] — classic best-fit bin packing on the bottleneck
//!   resource: consolidation without any energy model.
//! * [`LowestIdlePower`] — greedy on `P_idle` only: energy awareness
//!   without consolidation or transition awareness.
//! * [`RoundRobin`] — deliberate spreading; the worst reasonable policy
//!   for energy, useful as an upper bound on cost.
//! * [`Random`] — uniform choice among feasible servers.

use crate::{AllocError, AllocResult, Allocator};
use esvm_simcore::{AllocationProblem, Assignment, ServerId, Vm};
use rand::RngCore;

/// Iterates feasible servers for `vm` in id order.
fn feasible<'a>(
    assignment: &'a Assignment<'_>,
    vm: &'a Vm,
) -> impl Iterator<Item = ServerId> + 'a {
    (0..assignment.problem().server_count() as u32)
        .map(ServerId)
        .filter(move |&sid| assignment.ledger(sid).fits(vm))
}

/// First Fit with servers in id order (deterministic FFPS).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl FirstFit {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self
    }
}

impl Allocator for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let mut assignment = Assignment::new(problem);
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let sid = feasible(&assignment, vm)
                .next()
                .ok_or(AllocError::NoFeasibleServer(vm.id()))?;
            assignment.place(vm.id(), sid)?;
        }
        Ok(assignment)
    }
}

/// Best Fit: place the VM on the feasible server whose *bottleneck* spare
/// capacity over the VM's duration is smallest after placement.
///
/// The score of a candidate is
/// `max(spare_cpu / cap_cpu, spare_mem / cap_mem)` at the peak usage over
/// the VM's interval, after hypothetically adding the VM; smaller is
/// "fuller". This is the classical bin-packing consolidation rule lifted
/// to two resources and time intervals — it consolidates aggressively but
/// knows nothing about power models or transition costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

impl BestFit {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self
    }
}

impl Allocator for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let mut assignment = Assignment::new(problem);
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let best = feasible(&assignment, vm)
                .map(|sid| {
                    let ledger = assignment.ledger(sid);
                    let cap = ledger.spec().capacity();
                    let peak = ledger.peak_over(vm.interval()) + vm.demand();
                    let spare_cpu = (cap.cpu - peak.cpu) / cap.cpu;
                    let spare_mem = if cap.mem > 0.0 {
                        (cap.mem - peak.mem) / cap.mem
                    } else {
                        0.0
                    };
                    (spare_cpu.max(spare_mem), sid)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .ok_or(AllocError::NoFeasibleServer(vm.id()))?;
            assignment.place(vm.id(), best.1)?;
        }
        Ok(assignment)
    }
}

/// Greedy on idle power: pick the feasible server with the smallest
/// `P_idle` (ties by id). Energy-aware in the crudest possible way.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowestIdlePower;

impl LowestIdlePower {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self
    }
}

impl Allocator for LowestIdlePower {
    fn name(&self) -> &'static str {
        "lowest-idle-power"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let mut assignment = Assignment::new(problem);
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let best = feasible(&assignment, vm)
                .map(|sid| (assignment.ledger(sid).spec().power().p_idle(), sid))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .ok_or(AllocError::NoFeasibleServer(vm.id()))?;
            assignment.place(vm.id(), best.1)?;
        }
        Ok(assignment)
    }
}

/// Round robin: cycle through servers, taking the next feasible one.
/// Spreads VMs as widely as possible — an anti-consolidation baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self
    }
}

impl Allocator for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let n = problem.server_count();
        let mut cursor = 0usize;
        let mut assignment = Assignment::new(problem);
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let sid = (0..n)
                .map(|k| ServerId(((cursor + k) % n) as u32))
                .find(|&sid| assignment.ledger(sid).fits(vm))
                .ok_or(AllocError::NoFeasibleServer(vm.id()))?;
            assignment.place(vm.id(), sid)?;
            cursor = (sid.index() + 1) % n;
        }
        Ok(assignment)
    }
}

/// Uniformly random choice among feasible servers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Random;

impl Random {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self
    }
}

impl Allocator for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        let mut assignment = Assignment::new(problem);
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let candidates: Vec<ServerId> = feasible(&assignment, vm).collect();
            if candidates.is_empty() {
                return Err(AllocError::NoFeasibleServer(vm.id()));
            }
            let pick = candidates[(rng.next_u64() % candidates.len() as u64) as usize];
            assignment.place(vm.id(), pick)?;
        }
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources, VmId};
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn two_server_problem() -> AllocationProblem {
        ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(4.0, 8.0), PowerModel::new(40.0, 90.0), 20.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .vm(Resources::new(1.0, 2.0), Interval::new(5, 9))
            .build()
            .unwrap()
    }

    #[test]
    fn first_fit_uses_lowest_ids() {
        let p = two_server_problem();
        let a = FirstFit::new().allocate(&p, &mut rng()).unwrap();
        assert!(a.is_complete());
        // Everything fits on server 0.
        for j in 0..3 {
            assert_eq!(a.server_of(VmId(j)), Some(ServerId(0)));
        }
    }

    #[test]
    fn best_fit_picks_fullest_server() {
        // VM fits both servers; server 1 is smaller so it ends up fuller.
        let p = two_server_problem();
        let a = BestFit::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
        assert!(a.audit().is_ok());
    }

    #[test]
    fn lowest_idle_power_is_greedy_on_p_idle() {
        let p = two_server_problem();
        let a = LowestIdlePower::new().allocate(&p, &mut rng()).unwrap();
        // Server 1 has P_idle 40 < 100 and capacity for all three VMs
        // does not hold: 2+2+1 = 5 CPU > 4 during overlap → one spills.
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
        assert!(a.audit().is_ok());
    }

    #[test]
    fn round_robin_spreads() {
        let p = two_server_problem();
        let a = RoundRobin::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(0)));
        assert_eq!(a.server_of(VmId(1)), Some(ServerId(1)));
        assert_eq!(a.server_of(VmId(2)), Some(ServerId(0)));
    }

    #[test]
    fn random_is_seed_reproducible_and_valid() {
        let p = two_server_problem();
        let a = Random::new()
            .allocate(&p, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let b = Random::new()
            .allocate(&p, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a.placement(), b.placement());
        assert!(a.audit().is_ok());
    }

    #[test]
    fn all_baselines_error_on_overload() {
        let p = ProblemBuilder::new()
            .server(Resources::new(2.0, 2.0), PowerModel::new(1.0, 2.0), 0.0)
            .vm(Resources::new(2.0, 2.0), Interval::new(1, 5))
            .vm(Resources::new(2.0, 2.0), Interval::new(3, 8))
            .build()
            .unwrap();
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(FirstFit::new()),
            Box::new(BestFit::new()),
            Box::new(LowestIdlePower::new()),
            Box::new(RoundRobin::new()),
            Box::new(Random::new()),
        ];
        for alloc in allocators {
            let err = alloc.allocate(&p, &mut rng()).unwrap_err();
            assert_eq!(
                err,
                AllocError::NoFeasibleServer(VmId(1)),
                "{}",
                alloc.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FirstFit::new().name(),
            BestFit::new().name(),
            LowestIdlePower::new().name(),
            RoundRobin::new().name(),
            Random::new().name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
