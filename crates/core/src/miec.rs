//! The paper's heuristic: Minimum Incremental Energy Cost (MIEC).

use crate::{AllocError, AllocResult, Allocator};
use esvm_obs::{Event, EventSink, FieldValue, MetricsRegistry, NoopSink};
use esvm_simcore::{AllocationProblem, Assignment, ServerId, ServerLedger};
use rand::RngCore;

/// The heuristic of Section III.
///
/// VMs are allocated in increasing start-time order. For each VM `v_j`:
///
/// 1. build the candidate set `S_j` of servers with sufficient spare CPU
///    **and** memory throughout `[t^s_j, t^e_j]`;
/// 2. for every candidate evaluate the server's energy cost (Eq. 17,
///    including the initial switch-on `α` — see `esvm-simcore::energy`)
///    supposing `v_j` were allocated on it;
/// 3. place `v_j` on the candidate with the minimum **incremental** cost
///    (ties broken by lowest server id, for determinism).
///
/// The paper argues the heuristic saves energy because it (a) prefers
/// energy-efficient servers (small `P¹` and `P_idle`), (b) consolidates
/// VMs into existing busy segments, raising utilization, and (c) prefers
/// low-transition-cost servers when it must wake a new one.
///
/// [`Miec::ignoring_transition_costs`] is an ablation variant that scores
/// candidates as if every `α_i` were zero (placement quality without
/// transition awareness); the resulting assignment is still *charged*
/// real transition costs when audited.
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, Miec};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Two servers; the second is far more energy-efficient.
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(200.0, 400.0), 100.0)
///     .server(Resources::new(8.0, 16.0), PowerModel::new(50.0, 100.0), 25.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .build()?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let a = Miec::new().allocate(&problem, &mut rng)?;
/// assert_eq!(a.server_of(0.into()), Some(1.into())); // efficient server
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Miec {
    ignore_transition_costs: bool,
    assumed_duration: Option<u32>,
    reference: bool,
    unpruned: bool,
}

impl Miec {
    /// The standard heuristic, scoring candidates with the full cost
    /// model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reference implementation used as the equivalence oracle in tests
    /// and benchmarks: scans every server (no spec-class pruning) and
    /// scores candidates with the clone-and-rescan
    /// `ServerLedger::reference_incremental_cost` — the original
    /// semantics, preserved bit for bit. Produces the same placements as
    /// [`Miec::new`] except on exact-tie decisions, where the clone
    /// path's difference-of-sums arithmetic breaks the tie by rounding
    /// noise rather than by server id (the delta path computes those ties
    /// exactly and falls back to the documented lowest-id rule).
    pub fn reference() -> Self {
        Self::new().with_reference_scoring()
    }

    /// Switches any configuration (standard, ablation, assumed-duration)
    /// to the unpruned clone-and-rescan scan of [`Miec::reference`],
    /// keeping its other knobs. Oracle for equivalence tests.
    pub fn with_reference_scoring(mut self) -> Self {
        self.reference = true;
        self.unpruned = true;
        self
    }

    /// Disables the spec-class candidate pruning while keeping the
    /// delta-based scoring. Pruning is exactly placement-preserving —
    /// asleep servers of one spec class produce bit-identical scores —
    /// and this variant lets tests and benchmarks assert that in
    /// isolation from the scoring arithmetic.
    pub fn without_pruning(mut self) -> Self {
        self.unpruned = true;
        self
    }

    /// Ablation variant: candidate scoring pretends `α_i = 0` (transition
    /// costs are still charged by the audit). Quantifies how much of the
    /// saving comes from transition-cost awareness.
    pub fn ignoring_transition_costs() -> Self {
        Self {
            ignore_transition_costs: true,
            ..Self::default()
        }
    }

    /// Ablation variant: the paper assumes users declare each VM's
    /// duration at request time (Section I). This variant scores every
    /// candidate as if the VM would run for `units` time units (e.g. the
    /// fleet-wide mean), modelling a cloud where durations are unknown
    /// at arrival; commitment and capacity checks still use the true
    /// interval. Quantifies the value of duration knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn with_assumed_duration(units: u32) -> Self {
        assert!(units > 0, "assumed duration must be positive");
        Self {
            assumed_duration: Some(units),
            ..Self::default()
        }
    }

    /// The interval used for *scoring* `vm` (the true one, unless a
    /// duration assumption is configured).
    fn scoring_vm(&self, vm: &esvm_simcore::Vm) -> esvm_simcore::Vm {
        match self.assumed_duration {
            None => *vm,
            Some(units) => esvm_simcore::Vm::new(
                vm.id(),
                vm.demand(),
                esvm_simcore::Interval::with_len(vm.start(), units),
            ),
        }
    }
}

impl Miec {
    /// The shared placement loop. In admission mode an unplaceable VM is
    /// rejected and the run continues; otherwise it aborts.
    ///
    /// Generic over the event sink: with the default [`NoopSink`]
    /// (`S::ENABLED == false`) every instrumentation block is a
    /// compile-time-dead branch and the monomorphised loop is the
    /// uninstrumented code.
    fn run<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        admit: bool,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        let mut assignment = Assignment::new(problem);
        let mut rejected = Vec::new();
        // Hot-loop tallies stay in registers; flushed to `metrics` once
        // after the placement loop.
        let mut candidates_total = 0u64;
        let mut pruned_total = 0u64;
        let mut unfit_total = 0u64;
        let mut fp_ties_total = 0u64;

        // Shadow ledgers with α = 0 for the ablation variant's scoring.
        let mut shadow: Option<Vec<ServerLedger>> = self.ignore_transition_costs.then(|| {
            problem
                .servers()
                .iter()
                .map(|s| {
                    ServerLedger::new(esvm_simcore::ServerSpec::new(
                        s.id(),
                        s.capacity(),
                        *s.power(),
                        0.0,
                    ))
                })
                .collect()
        });

        // Spec classes for candidate pruning (see `crate::classes`): per
        // VM only the first (lowest-id) asleep member of each class is
        // scored. The strict `<` below would pick exactly that member
        // anyway, so placements are unchanged. Awake servers are always
        // scored.
        let classes = crate::classes::spec_classes(problem.servers());
        let class_of = &classes.class_of;
        // `class_scored[c] == step` marks class `c` as already represented
        // by an asleep server for the current VM (stamps avoid a per-VM
        // clear).
        let mut class_scored: Vec<usize> = vec![usize::MAX; classes.count];

        for (step, j) in problem.vms_by_start_time().into_iter().enumerate() {
            let vm = &problem.vms()[j];
            let scoring = self.scoring_vm(vm);
            let mut best: Option<(f64, ServerId)> = None;
            let mut candidates = 0u64;
            let mut pruned = 0u64;
            for i in 0..problem.server_count() {
                let sid = ServerId(i as u32);
                let real = assignment.ledger(sid);
                if !self.unpruned && real.hosted_count() == 0 {
                    let class = class_of[i];
                    if class_scored[class] == step {
                        // A lower-id asleep server of the same spec class
                        // already stood in for this one.
                        if S::ENABLED {
                            pruned += 1;
                        }
                        continue;
                    }
                    class_scored[class] = step;
                }
                if !real.fits(vm) {
                    if S::ENABLED {
                        unfit_total += 1;
                    }
                    continue;
                }
                let delta = match &shadow {
                    Some(ledgers) if self.reference => {
                        ledgers[i].reference_incremental_cost(&scoring)
                    }
                    Some(ledgers) => ledgers[i].incremental_cost(&scoring),
                    None if self.reference => real.reference_incremental_cost(&scoring),
                    None => real.incremental_cost(&scoring),
                };
                if S::ENABLED {
                    candidates += 1;
                    // An exact score tie: the strict `<` below resolves
                    // it to the lowest server id — the decisions the
                    // equivalence benches certify as FP ties.
                    if best.is_some_and(|(cost, _)| delta == cost) {
                        fp_ties_total += 1;
                    }
                }
                // Strict `<` keeps the lowest server id on ties.
                if best.is_none_or(|(cost, _)| delta < cost) {
                    best = Some((delta, sid));
                }
            }
            if S::ENABLED {
                candidates_total += candidates;
                pruned_total += pruned;
            }
            match best {
                Some((delta, sid)) => {
                    assignment.place(vm.id(), sid)?;
                    if let Some(ledgers) = shadow.as_mut() {
                        ledgers[sid.index()].host(vm);
                    }
                    if S::ENABLED {
                        metrics.observe("miec.placement_delta", delta);
                        sink.emit(&Event {
                            name: "miec.place",
                            fields: &[
                                ("vm", FieldValue::U64(vm.id().index() as u64)),
                                ("server", FieldValue::U64(sid.index() as u64)),
                                ("delta", FieldValue::F64(delta)),
                                ("candidates", FieldValue::U64(candidates)),
                                ("pruned", FieldValue::U64(pruned)),
                            ],
                        });
                    }
                }
                None if admit => {
                    if S::ENABLED {
                        sink.emit(&Event {
                            name: "miec.reject",
                            fields: &[("vm", FieldValue::U64(vm.id().index() as u64))],
                        });
                    }
                    rejected.push(vm.id());
                }
                None => return Err(AllocError::NoFeasibleServer(vm.id())),
            }
        }
        if S::ENABLED {
            let placed = problem.vm_count() as u64 - rejected.len() as u64;
            metrics.add("miec.vms_placed", placed);
            metrics.add("miec.vms_rejected", rejected.len() as u64);
            metrics.add("miec.candidates_considered", candidates_total);
            metrics.add("miec.spec_class_pruned", pruned_total);
            metrics.add("miec.unfit_skipped", unfit_total);
            metrics.add("miec.fp_ties", fp_ties_total);
        }
        Ok((assignment, rejected))
    }

    /// Observed variant of [`Allocator::allocate`]: identical placement
    /// decisions, with a `miec.place` event per VM emitted to `sink` and
    /// the scan tallies (candidates considered, spec-class pruned, exact
    /// FP ties, unfit skips) accumulated into `metrics`.
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate`].
    pub fn allocate_observed<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, sink, metrics).map(|(a, _)| a)
    }

    /// Allocation with admission control: unplaceable VMs are rejected
    /// instead of aborting the run. Returns the (partial) assignment and
    /// the rejected VM ids. Models an overloaded data center that turns
    /// requests away — the regime the paper's evaluation never enters.
    ///
    /// # Errors
    ///
    /// Only internal placement errors (never
    /// [`AllocError::NoFeasibleServer`]).
    pub fn allocate_with_admission<'p>(
        &self,
        problem: &'p AllocationProblem,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        self.run(problem, true, &mut NoopSink, &MetricsRegistry::new())
    }
}

impl Allocator for Miec {
    fn name(&self) -> &'static str {
        if self.reference {
            "miec-reference"
        } else if self.unpruned {
            "miec-unpruned"
        } else if self.ignore_transition_costs {
            "miec-noalpha"
        } else if self.assumed_duration.is_some() {
            "miec-blind"
        } else {
            "miec"
        }
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, &mut NoopSink, &MetricsRegistry::new())
            .map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources, VmId};
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn consolidates_overlapping_vms_on_one_server() {
        // Two identical servers; two overlapping small VMs. Sharing one
        // server avoids a second P_idle + α.
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), a.server_of(VmId(1)));
    }

    #[test]
    fn prefers_low_transition_cost_when_all_asleep() {
        // Identical servers except transition cost; Section III's example.
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 500.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
    }

    #[test]
    fn prefers_small_servers_under_light_load() {
        // A small cheap server and a big hungry one; the small server is
        // adequate, so MIEC should consolidate there.
        let p = ProblemBuilder::new()
            .server(
                Resources::new(120.0, 136.0),
                PowerModel::new(260.0, 560.0),
                560.0,
            )
            .server(Resources::new(16.0, 32.0), PowerModel::new(140.0, 300.0), 300.0)
            .vm(Resources::new(1.0, 1.7), Interval::new(1, 5))
            .vm(Resources::new(1.0, 1.7), Interval::new(2, 6))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
        assert_eq!(a.server_of(VmId(1)), Some(ServerId(1)));
    }

    #[test]
    fn respects_capacity_and_spills_over() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .server(Resources::new(4.0, 8.0), PowerModel::new(80.0, 160.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        // They cannot share: 6 CPU > 4.
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert!(a.audit().is_ok());
    }

    #[test]
    fn errors_when_no_server_fits() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 15))
            .build()
            .unwrap();
        let err = Miec::new().allocate(&p, &mut rng()).unwrap_err();
        assert_eq!(err, AllocError::NoFeasibleServer(VmId(1)));
    }

    #[test]
    fn is_deterministic() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 210.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(1.0, 2.0), Interval::new(4, 8))
            .vm(Resources::new(2.0, 2.0), Interval::new(11, 20))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        let b = Miec::new()
            .allocate(&p, &mut StdRng::seed_from_u64(999))
            .unwrap();
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn tie_break_is_lowest_server_id() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(0)));
    }

    #[test]
    fn ablation_variant_ignores_alpha_in_scoring() {
        // Server 0: expensive transition, slightly cheaper idle power.
        // Standard MIEC avoids the huge α; the ablation variant sees only
        // idle/run power and picks server 0.
        let p = ProblemBuilder::new()
            .server(
                Resources::new(8.0, 16.0),
                PowerModel::new(99.0, 200.0),
                10_000.0,
            )
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let smart = Miec::new().allocate(&p, &mut rng()).unwrap();
        let blind = Miec::ignoring_transition_costs()
            .allocate(&p, &mut rng())
            .unwrap();
        assert_eq!(smart.server_of(VmId(0)), Some(ServerId(1)));
        assert_eq!(blind.server_of(VmId(0)), Some(ServerId(0)));
        // The audit still charges the real α, so the ablation costs more.
        assert!(blind.total_cost() > smart.total_cost());
        assert_eq!(Miec::new().name(), "miec");
        assert_eq!(Miec::ignoring_transition_costs().name(), "miec-noalpha");
    }

    #[test]
    fn blind_duration_variant_still_produces_valid_assignments() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 210.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 30))
            .vm(Resources::new(1.0, 2.0), Interval::new(4, 5))
            .vm(Resources::new(2.0, 2.0), Interval::new(11, 40))
            .build()
            .unwrap();
        let blind = Miec::with_assumed_duration(5)
            .allocate(&p, &mut rng())
            .unwrap();
        assert!(blind.audit().is_ok());
        assert_eq!(Miec::with_assumed_duration(5).name(), "miec-blind");
        // Knowing durations can only help (statistically; on this tiny
        // instance we just assert both are valid and comparable).
        let informed = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert!(informed.total_cost() <= blind.total_cost() + 1e-9);
    }

    #[test]
    fn admission_mode_places_everything_else() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 15))
            .vm(Resources::new(3.0, 6.0), Interval::new(12, 20))
            .build()
            .unwrap();
        let (a, rejected) = Miec::new().allocate_with_admission(&p).unwrap();
        // VM 1 overlaps both others; exactly it is rejected.
        assert_eq!(rejected, vec![VmId(1)]);
        assert!(a.server_of(VmId(0)).is_some());
        assert!(a.server_of(VmId(2)).is_some());
        // The partial assignment still audits against capacity.
        assert!(a.total_cost() > 0.0);
    }

    #[test]
    fn pruned_scan_matches_reference_on_homogeneous_fleet() {
        // Four identical servers: pruning scores only one while all are
        // asleep, and the lowest-id tie-break must match the full scan.
        let mut b = ProblemBuilder::new();
        for _ in 0..4 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .vm(Resources::new(6.0, 12.0), Interval::new(1, 10))
            .vm(Resources::new(6.0, 12.0), Interval::new(5, 14))
            .vm(Resources::new(6.0, 12.0), Interval::new(8, 20))
            .vm(Resources::new(2.0, 4.0), Interval::new(30, 35))
            .build()
            .unwrap();
        let fast = Miec::new().allocate(&p, &mut rng()).unwrap();
        let slow = Miec::reference().allocate(&p, &mut rng()).unwrap();
        assert_eq!(fast.placement(), slow.placement());
        assert_eq!(fast.server_of(VmId(0)), Some(ServerId(0)));
        assert_eq!(Miec::reference().name(), "miec-reference");
    }

    #[test]
    fn observed_run_matches_plain_run_and_reports_scan_counts() {
        use esvm_obs::MemorySink;
        let mut b = ProblemBuilder::new();
        for _ in 0..3 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .server(Resources::new(4.0, 8.0), PowerModel::new(60.0, 120.0), 20.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .vm(Resources::new(2.0, 4.0), Interval::new(20, 25))
            .build()
            .unwrap();
        let plain = Miec::new().allocate(&p, &mut rng()).unwrap();
        let mut sink = MemorySink::new();
        let metrics = esvm_obs::MetricsRegistry::new();
        let observed = Miec::new().allocate_observed(&p, &mut sink, &metrics).unwrap();
        assert_eq!(plain.placement(), observed.placement());
        assert_eq!(metrics.counter("miec.vms_placed"), 3);
        assert_eq!(metrics.counter("miec.vms_rejected"), 0);
        // 3 VMs over ≤ 4 servers, with the three identical servers
        // pruned down to one representative while asleep.
        assert!(metrics.counter("miec.candidates_considered") >= 3);
        assert!(metrics.counter("miec.spec_class_pruned") >= 2);
        assert_eq!(metrics.histogram("miec.placement_delta").unwrap().count, 3);
        // One miec.place event per VM, in placement order.
        assert_eq!(sink.lines.len(), 3);
        assert!(sink.lines.iter().all(|l| l.contains("\"event\":\"miec.place\"")));
    }

    #[test]
    fn handles_empty_vm_list() {
        let p = ProblemBuilder::new()
            .server(Resources::new(1.0, 1.0), PowerModel::new(1.0, 2.0), 0.0)
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert!(a.is_complete());
        assert_eq!(a.total_cost(), 0.0);
    }
}
