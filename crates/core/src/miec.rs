//! The paper's heuristic: Minimum Incremental Energy Cost (MIEC).

use crate::{AllocError, AllocResult, Allocator};
use esvm_obs::{
    DecisionKind, Event, EventSink, ExplainRecord, FieldValue, MetricsRegistry, NoopSink,
    NoopTracer, Tracer,
};
use esvm_par::Parallelism;
use esvm_simcore::{AllocationProblem, Assignment, ServerId, ServerLedger};
use rand::RngCore;
use std::sync::{Mutex, RwLock};

/// The heuristic of Section III.
///
/// VMs are allocated in increasing start-time order. For each VM `v_j`:
///
/// 1. build the candidate set `S_j` of servers with sufficient spare CPU
///    **and** memory throughout `[t^s_j, t^e_j]`;
/// 2. for every candidate evaluate the server's energy cost (Eq. 17,
///    including the initial switch-on `α` — see `esvm-simcore::energy`)
///    supposing `v_j` were allocated on it;
/// 3. place `v_j` on the candidate with the minimum **incremental** cost
///    (ties broken by lowest server id, for determinism).
///
/// The paper argues the heuristic saves energy because it (a) prefers
/// energy-efficient servers (small `P¹` and `P_idle`), (b) consolidates
/// VMs into existing busy segments, raising utilization, and (c) prefers
/// low-transition-cost servers when it must wake a new one.
///
/// [`Miec::ignoring_transition_costs`] is an ablation variant that scores
/// candidates as if every `α_i` were zero (placement quality without
/// transition awareness); the resulting assignment is still *charged*
/// real transition costs when audited.
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, Miec};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Two servers; the second is far more energy-efficient.
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(200.0, 400.0), 100.0)
///     .server(Resources::new(8.0, 16.0), PowerModel::new(50.0, 100.0), 25.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .build()?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let a = Miec::new().allocate(&problem, &mut rng)?;
/// assert_eq!(a.server_of(0.into()), Some(1.into())); // efficient server
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Miec {
    ignore_transition_costs: bool,
    assumed_duration: Option<u32>,
    reference: bool,
    unpruned: bool,
    par: Parallelism,
}

impl Miec {
    /// The standard heuristic, scoring candidates with the full cost
    /// model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reference implementation used as the equivalence oracle in tests
    /// and benchmarks: scans every server (no spec-class pruning) and
    /// scores candidates with the clone-and-rescan
    /// `ServerLedger::reference_incremental_cost` — the original
    /// semantics, preserved bit for bit. Produces the same placements as
    /// [`Miec::new`] except on exact-tie decisions, where the clone
    /// path's difference-of-sums arithmetic breaks the tie by rounding
    /// noise rather than by server id (the delta path computes those ties
    /// exactly and falls back to the documented lowest-id rule).
    pub fn reference() -> Self {
        Self::new().with_reference_scoring()
    }

    /// Switches any configuration (standard, ablation, assumed-duration)
    /// to the unpruned clone-and-rescan scan of [`Miec::reference`],
    /// keeping its other knobs. Oracle for equivalence tests.
    pub fn with_reference_scoring(mut self) -> Self {
        self.reference = true;
        self.unpruned = true;
        self
    }

    /// Disables the spec-class candidate pruning while keeping the
    /// delta-based scoring. Pruning is exactly placement-preserving —
    /// asleep servers of one spec class produce bit-identical scores —
    /// and this variant lets tests and benchmarks assert that in
    /// isolation from the scoring arithmetic.
    pub fn without_pruning(mut self) -> Self {
        self.unpruned = true;
        self
    }

    /// Ablation variant: candidate scoring pretends `α_i = 0` (transition
    /// costs are still charged by the audit). Quantifies how much of the
    /// saving comes from transition-cost awareness.
    pub fn ignoring_transition_costs() -> Self {
        Self {
            ignore_transition_costs: true,
            ..Self::default()
        }
    }

    /// Ablation variant: the paper assumes users declare each VM's
    /// duration at request time (Section I). This variant scores every
    /// candidate as if the VM would run for `units` time units (e.g. the
    /// fleet-wide mean), modelling a cloud where durations are unknown
    /// at arrival; commitment and capacity checks still use the true
    /// interval. Quantifies the value of duration knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn with_assumed_duration(units: u32) -> Self {
        assert!(units > 0, "assumed duration must be positive");
        Self {
            assumed_duration: Some(units),
            ..Self::default()
        }
    }

    /// Scores candidates on `par.threads()` threads over persistently
    /// owned server shards (`par.shards_for(..)` contiguous id ranges),
    /// batching `par.batch()` arrivals per pool wake-up. Placements,
    /// costs, and energy breakdowns are **bit-identical** for every
    /// (threads, shards, batch) triple: workers score their shards
    /// read-only against the live assignment, the conductor re-scores
    /// shards dirtied by earlier commits of the same batch, and the
    /// argmin reduction merges per-shard minima in ascending shard
    /// order with the same strict `<` (Eq. 7 lowest-id tie-breaking)
    /// as the sequential scan.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The configured thread-count policy.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The interval used for *scoring* `vm` (the true one, unless a
    /// duration assumption is configured).
    fn scoring_vm(&self, vm: &esvm_simcore::Vm) -> esvm_simcore::Vm {
        match self.assumed_duration {
            None => *vm,
            Some(units) => esvm_simcore::Vm::new(
                vm.id(),
                vm.demand(),
                esvm_simcore::Interval::with_len(vm.start(), units),
            ),
        }
    }
}

impl Miec {
    /// The shared placement loop. In admission mode an unplaceable VM is
    /// rejected and the run continues; otherwise it aborts.
    ///
    /// Generic over the event sink and tracer: with the default
    /// [`NoopSink`] / [`NoopTracer`] (`ENABLED == false`) every
    /// instrumentation block is a compile-time-dead branch and the
    /// monomorphised loop is the uninstrumented code.
    fn run<'p, S: EventSink, T: Tracer>(
        &self,
        problem: &'p AllocationProblem,
        admit: bool,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        // Adaptive configurations pick their engine per problem size;
        // fixed ones resolve to themselves.
        if self.par.resolve_for(problem.vm_count()).threads() > 1 {
            return self.run_parallel(problem, admit, sink, metrics, tracer);
        }
        let _run_span = tracer.span("miec.run");
        // The prepare span makes setup cost visible and, by closing
        // right before the loop, anchors the first decision's
        // `lap_span` to the loop entry rather than the run start.
        let prepare_span = tracer.span("miec.prepare");
        let mut assignment = Assignment::new(problem);
        let mut rejected = Vec::new();
        // Hot-loop tallies stay in registers; flushed to `metrics` once
        // after the placement loop.
        let mut candidates_total = 0u64;
        let mut pruned_total = 0u64;
        let mut unfit_total = 0u64;
        let mut fp_ties_total = 0u64;

        // Shadow ledgers with α = 0 for the ablation variant's scoring.
        let mut shadow: Option<Vec<ServerLedger>> = self.ignore_transition_costs.then(|| {
            problem
                .servers()
                .iter()
                .map(|s| {
                    ServerLedger::new(esvm_simcore::ServerSpec::new(
                        s.id(),
                        s.capacity(),
                        *s.power(),
                        0.0,
                    ))
                })
                .collect()
        });

        // Spec classes for candidate pruning (see `crate::classes`): per
        // VM only the first (lowest-id) asleep member of each class is
        // scored. The strict `<` below would pick exactly that member
        // anyway, so placements are unchanged. Awake servers are always
        // scored.
        let classes = crate::classes::spec_classes(problem.servers());
        let class_of = &classes.class_of;
        // `class_scored[c] == step` marks class `c` as already represented
        // by an asleep server for the current VM (stamps avoid a per-VM
        // clear).
        let mut class_scored: Vec<usize> = vec![usize::MAX; classes.count];
        let ordered_vms = problem.vms_by_start_time();
        drop(prepare_span);

        for (step, j) in ordered_vms.into_iter().enumerate() {
            // Decisions run back to back: each span starts where the
            // previous one (or the setup above) ended, so the hot loop
            // pays one clock read per decision instead of two.
            let _decision_span = tracer.lap_span("miec.decision");
            let vm = &problem.vms()[j];
            let scoring = self.scoring_vm(vm);
            let mut best: Option<(f64, ServerId)> = None;
            let mut candidates = 0u64;
            let mut pruned = 0u64;
            let mut unfit = 0u64;
            let mut vm_fp_ties = 0u64;
            for i in 0..problem.server_count() {
                let sid = ServerId(i as u32);
                let real = assignment.ledger(sid);
                if !self.unpruned && real.hosted_count() == 0 {
                    let class = class_of[i];
                    if class_scored[class] == step {
                        // A lower-id asleep server of the same spec class
                        // already stood in for this one.
                        if S::ENABLED || T::ENABLED {
                            pruned += 1;
                        }
                        continue;
                    }
                    class_scored[class] = step;
                }
                if !real.fits(vm) {
                    if S::ENABLED || T::ENABLED {
                        unfit += 1;
                    }
                    continue;
                }
                let delta = match &shadow {
                    Some(ledgers) if self.reference => {
                        ledgers[i].reference_incremental_cost(&scoring)
                    }
                    Some(ledgers) => ledgers[i].incremental_cost(&scoring),
                    None if self.reference => real.reference_incremental_cost(&scoring),
                    None => real.incremental_cost(&scoring),
                };
                if S::ENABLED || T::ENABLED {
                    candidates += 1;
                    // An exact score tie: the strict `<` below resolves
                    // it to the lowest server id — the decisions the
                    // equivalence benches certify as FP ties.
                    if best.is_some_and(|(cost, _)| delta == cost) {
                        vm_fp_ties += 1;
                    }
                }
                // Strict `<` keeps the lowest server id on ties.
                if best.is_none_or(|(cost, _)| delta < cost) {
                    best = Some((delta, sid));
                }
            }
            if S::ENABLED {
                candidates_total += candidates;
                pruned_total += pruned;
                unfit_total += unfit;
                fp_ties_total += vm_fp_ties;
            }
            match best {
                Some((delta, sid)) => {
                    assignment.place(vm.id(), sid)?;
                    if let Some(ledgers) = shadow.as_mut() {
                        ledgers[sid.index()].host(vm);
                    }
                    if S::ENABLED {
                        metrics.observe("miec.placement_delta", delta);
                        sink.emit(&Event {
                            name: "miec.place",
                            fields: &[
                                ("vm", FieldValue::U64(vm.id().index() as u64)),
                                ("server", FieldValue::U64(sid.index() as u64)),
                                ("delta", FieldValue::F64(delta)),
                                ("candidates", FieldValue::U64(candidates)),
                                ("pruned", FieldValue::U64(pruned)),
                            ],
                        });
                    }
                    if T::ENABLED {
                        tracer.explain(&ExplainRecord {
                            candidates,
                            pruned,
                            unfit,
                            shards: 1,
                            winner: Some(sid.index() as u64),
                            delta_cost: delta,
                            fp_tie: vm_fp_ties > 0,
                            ..ExplainRecord::new(
                                DecisionKind::Place,
                                vm.id().index() as u64,
                            )
                        });
                    }
                }
                None if admit => {
                    if S::ENABLED {
                        sink.emit(&Event {
                            name: "miec.reject",
                            fields: &[("vm", FieldValue::U64(vm.id().index() as u64))],
                        });
                    }
                    if T::ENABLED {
                        tracer.explain(&ExplainRecord {
                            candidates,
                            pruned,
                            unfit,
                            shards: 1,
                            ..ExplainRecord::new(
                                DecisionKind::Reject,
                                vm.id().index() as u64,
                            )
                        });
                    }
                    rejected.push(vm.id());
                }
                None => return Err(AllocError::NoFeasibleServer(vm.id())),
            }
        }
        if S::ENABLED {
            let placed = problem.vm_count() as u64 - rejected.len() as u64;
            metrics.add("miec.vms_placed", placed);
            metrics.add("miec.vms_rejected", rejected.len() as u64);
            metrics.add("miec.candidates_considered", candidates_total);
            metrics.add("miec.spec_class_pruned", pruned_total);
            metrics.add("miec.unfit_skipped", unfit_total);
            metrics.add("miec.fp_ties", fp_ties_total);
        }
        Ok((assignment, rejected))
    }

    /// The parallel twin of [`Miec::run`]: **persistent shard
    /// ownership** over the live assignment — no ledger replication, no
    /// replay.
    ///
    /// The server-id range is partitioned into contiguous ascending
    /// shards ([`esvm_par::ShardRouting`]); the `Assignment` itself
    /// lives inside an `RwLock`, workers score their shards *read-only*
    /// against it, and the conductor commits the single winning `host`
    /// mutation between pool generations (the pool's quiescence
    /// guarantee makes that race-free). Arrivals are batched
    /// `par.batch()` per wake-up: every worker scores the whole batch
    /// against the pre-batch state, then the conductor commits the
    /// batch sequentially in arrival order, re-scoring any shard
    /// already dirtied by an earlier commit of the same batch — so
    /// every VM is merged against exactly the state the sequential
    /// loop would see.
    ///
    /// Determinism contract (see DESIGN.md "Concurrency model"): each
    /// shard folds its own strict-`<` minimum over ascending server
    /// ids, and the conductor merges shard minima in ascending shard
    /// order with strict `<` — since shards partition the id range in
    /// order, this reproduces the sequential left-to-right argmin bit
    /// for bit, including Eq. 7 lowest-id tie-breaking. Spec-class
    /// pruning runs shard-locally: a shard's extra asleep class
    /// representative is bit-identical in score to (and higher-id
    /// than) the global lowest-id representative, so it can never
    /// displace the sequential winner.
    ///
    /// Counter semantics: `vms_placed/rejected`, `candidates_considered`,
    /// `spec_class_pruned`, and `unfit_skipped` are identical to the
    /// sequential run — the conductor demotes cross-shard duplicate
    /// class representatives from scored/unfit back to pruned while
    /// merging. `fp_ties` counts ties against shard-local minima
    /// rather than the sequential running best, so it remains the one
    /// documented approximate diagnostic.
    fn run_parallel<'p, S: EventSink, T: Tracer>(
        &self,
        problem: &'p AllocationProblem,
        admit: bool,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        let _run_span = tracer.span("miec.run");
        /// Shared state: the live assignment (workers read, the
        /// conductor mutates between generations) plus the ablation
        /// shadow ledgers and the current arrival batch.
        struct State<'p> {
            assignment: Assignment<'p>,
            /// α = 0 twin ledgers for the ablation variant's scoring;
            /// hosted in lockstep with the assignment.
            shadow: Option<Vec<ServerLedger>>,
            /// `(true vm, scoring vm)` per batched arrival.
            batch: Vec<(esvm_simcore::Vm, esvm_simcore::Vm)>,
        }
        /// One shard × VM scan outcome, merged in ascending shard order.
        #[derive(Default)]
        struct ShardScan {
            /// Shard-local strict-`<` minimum `(delta, server id)`.
            best: Option<(f64, u32)>,
            /// Candidates in this shard tying the shard-local best.
            ties_at_best: u64,
            scored: u64,
            unfit: u64,
            pruned: u64,
            /// Shard-local asleep class representatives `(class, fits)`
            /// in ascending server-id order (instrumented runs only);
            /// the conductor demotes cross-shard duplicates to pruned.
            reps: Vec<(u32, bool)>,
        }
        impl ShardScan {
            fn reset(&mut self) {
                self.best = None;
                self.ties_at_best = 0;
                self.scored = 0;
                self.unfit = 0;
                self.pruned = 0;
                self.reps.clear();
            }
        }
        /// A worker's persistent per-shard storage. Each shard index
        /// lands in exactly one dispatch chunk, so the mutex is never
        /// contended — it exists to satisfy the `Sync` bound.
        struct ShardSlot {
            /// One scan per VM of the current batch.
            results: Vec<ShardScan>,
            /// Shard-local spec-class prune stamps
            /// (`stamps[class] == scan` ⇒ already represented).
            stamps: Vec<usize>,
            /// Monotone scan counter for the stamps.
            scan: usize,
            /// Scratch for conductor-side re-scores of dirty shards.
            rescan: ShardScan,
        }

        let n_servers = problem.server_count();
        let routing = esvm_par::ShardRouting::new(n_servers, self.par.shards_for(n_servers));
        let n_shards = routing.n_shards();
        let batch_size = self.par.batch();
        let classes = crate::classes::spec_classes(problem.servers());
        let class_of = &classes.class_of;
        let ordered_vms = problem.vms_by_start_time();
        let reference = self.reference;
        let unpruned = self.unpruned;
        let instrumented = S::ENABLED || T::ENABLED;

        let state = RwLock::new(State {
            assignment: Assignment::new(problem),
            shadow: self.ignore_transition_costs.then(|| {
                problem
                    .servers()
                    .iter()
                    .map(|s| {
                        ServerLedger::new(esvm_simcore::ServerSpec::new(
                            s.id(),
                            s.capacity(),
                            *s.power(),
                            0.0,
                        ))
                    })
                    .collect()
            }),
            batch: Vec::with_capacity(batch_size),
        });
        let slots: Vec<Mutex<ShardSlot>> = (0..n_shards)
            .map(|_| {
                Mutex::new(ShardSlot {
                    results: Vec::new(),
                    stamps: vec![usize::MAX; classes.count],
                    scan: 0,
                    rescan: ShardScan::default(),
                })
            })
            .collect();

        // The one scan kernel, shared by the worker threads and the
        // conductor's dirty-shard re-scores: sweep a shard's id range
        // in ascending order with shard-local prune stamps, exactly
        // the sequential loop body restricted to the shard.
        let scan_shard = |state: &State,
                          range: std::ops::Range<usize>,
                          vm: &esvm_simcore::Vm,
                          scoring: &esvm_simcore::Vm,
                          stamps: &mut [usize],
                          scan_id: usize,
                          out: &mut ShardScan| {
            out.reset();
            for i in range {
                let real = state.assignment.ledger(ServerId(i as u32));
                let mut is_rep = false;
                if !unpruned && real.hosted_count() == 0 {
                    let class = class_of[i];
                    if stamps[class] == scan_id {
                        // A lower-id asleep server of the same spec
                        // class already stood in for this one (within
                        // this shard; cross-shard dedup happens at
                        // merge time).
                        out.pruned += 1;
                        continue;
                    }
                    stamps[class] = scan_id;
                    is_rep = true;
                }
                let fits = real.fits(vm);
                if instrumented && is_rep {
                    out.reps.push((class_of[i] as u32, fits));
                }
                if !fits {
                    out.unfit += 1;
                    continue;
                }
                let delta = match (&state.shadow, reference) {
                    (Some(ledgers), true) => ledgers[i].reference_incremental_cost(scoring),
                    (Some(ledgers), false) => ledgers[i].incremental_cost(scoring),
                    (None, true) => real.reference_incremental_cost(scoring),
                    (None, false) => real.incremental_cost(scoring),
                };
                if instrumented {
                    out.scored += 1;
                    match out.best {
                        Some((cost, _)) if delta == cost => out.ties_at_best += 1,
                        Some((cost, _)) if delta < cost => out.ties_at_best = 0,
                        _ => {}
                    }
                }
                // Strict `<`: within a shard the lowest server id wins
                // ties, exactly like the sequential left-to-right scan.
                if out.best.is_none_or(|(cost, _)| delta < cost) {
                    out.best = Some((delta, i as u32));
                }
            }
        };

        // Worker body: claim chunks of *shard indices* and score every
        // batched VM against the owned shards, read-only.
        let worker = |_chunk: usize, shard_range: std::ops::Range<usize>| {
            let state = state.read().expect("miec state lock poisoned");
            for s in shard_range {
                let mut slot = slots[s].lock().expect("miec shard slot poisoned");
                let slot = &mut *slot;
                if slot.results.len() < state.batch.len() {
                    slot.results.resize_with(state.batch.len(), ShardScan::default);
                }
                for (b, (vm, scoring)) in state.batch.iter().enumerate() {
                    slot.scan += 1;
                    scan_shard(
                        &state,
                        routing.range(s),
                        vm,
                        scoring,
                        &mut slot.stamps,
                        slot.scan,
                        &mut slot.results[b],
                    );
                }
            }
        };

        let run = esvm_par::scope(self.par, worker, |pool| -> AllocResult<_> {
            let mut rejected = Vec::new();
            let mut candidates_total = 0u64;
            let mut pruned_total = 0u64;
            let mut unfit_total = 0u64;
            let mut fp_ties_total = 0u64;
            // Shards that received a commit in the current batch
            // window; their stored scans are stale and re-scored.
            let mut dirty = vec![false; n_shards];
            // Cross-shard class-representative dedup stamps, one fresh
            // stamp per committed VM.
            let mut rep_seen: Vec<usize> = vec![usize::MAX; classes.count];
            let mut rep_stamp = 0usize;

            let mut window_start = 0;
            while window_start < ordered_vms.len() {
                let _batch_span = tracer.span("miec.batch");
                let window =
                    &ordered_vms[window_start..(window_start + batch_size).min(ordered_vms.len())];
                {
                    // The scan span separates the parallel shard scan
                    // from the sequential commits below, and anchors
                    // the first commit's `lap_span` after dispatch.
                    let _scan_span = tracer.span("miec.scan");
                    {
                        // Safe to mutate: every worker quiesced in the
                        // previous `dispatch`, so no reader holds the lock.
                        let mut state = state.write().expect("miec state lock poisoned");
                        state.batch.clear();
                        for &j in window {
                            let vm = problem.vms()[j];
                            state.batch.push((vm, self.scoring_vm(&vm)));
                        }
                    }
                    dirty.iter_mut().for_each(|d| *d = false);
                    pool.dispatch(n_shards);
                }

                // Commit the batch sequentially in arrival order.
                for (b, &j) in window.iter().enumerate() {
                    // Commits run back to back inside the batch span;
                    // see the sequential loop for the lap rationale.
                    let _decision_span = tracer.lap_span("miec.decision");
                    let vm = &problem.vms()[j];
                    let scoring = self.scoring_vm(vm);
                    let mut best: Option<(f64, u32)> = None;
                    let mut vm_candidates = 0u64;
                    let mut vm_pruned = 0u64;
                    let mut vm_unfit = 0u64;
                    let mut vm_fp_ties = 0u64;
                    let mut vm_rescored = 0u64;
                    rep_stamp += 1;
                    for s in 0..n_shards {
                        let mut slot = slots[s].lock().expect("miec shard slot poisoned");
                        let slot = &mut *slot;
                        if dirty[s] {
                            if S::ENABLED || T::ENABLED {
                                vm_rescored += 1;
                            }
                            // An earlier commit of this batch touched
                            // this shard: its stored scan no longer
                            // matches the state the sequential loop
                            // would see here — re-score against the
                            // live assignment.
                            slot.scan += 1;
                            let state = state.read().expect("miec state lock poisoned");
                            scan_shard(
                                &state,
                                routing.range(s),
                                vm,
                                &scoring,
                                &mut slot.stamps,
                                slot.scan,
                                &mut slot.rescan,
                            );
                        }
                        let out: &ShardScan =
                            if dirty[s] { &slot.rescan } else { &slot.results[b] };
                        if S::ENABLED || T::ENABLED {
                            // Demote cross-shard duplicate asleep class
                            // representatives to pruned: sequentially
                            // only the global lowest-id representative
                            // (= the first shard's, since shards
                            // ascend) is scored or found unfit.
                            let mut scored_dupes = 0u64;
                            let mut unfit_dupes = 0u64;
                            for &(class, fits) in &out.reps {
                                if rep_seen[class as usize] == rep_stamp {
                                    if fits {
                                        scored_dupes += 1;
                                    } else {
                                        unfit_dupes += 1;
                                    }
                                } else {
                                    rep_seen[class as usize] = rep_stamp;
                                }
                            }
                            vm_candidates += out.scored - scored_dupes;
                            vm_unfit += out.unfit - unfit_dupes;
                            vm_pruned += out.pruned + scored_dupes + unfit_dupes;
                            if let (Some((delta, _)), Some((cost, _))) = (out.best, best) {
                                if delta == cost {
                                    // The shard best itself ties the
                                    // running best, plus its in-shard
                                    // ties.
                                    vm_fp_ties += out.ties_at_best + 1;
                                } else if delta < cost {
                                    vm_fp_ties += out.ties_at_best;
                                }
                            } else if let (Some(_), None) = (out.best, best) {
                                vm_fp_ties += out.ties_at_best;
                            }
                        }
                        // Ascending-shard merge with strict `<`: the
                        // sequential left-to-right argmin, Eq. 7
                        // lowest-id tie-break included. A duplicate
                        // class representative scores bit-identically
                        // to the earlier shard's copy, so strict `<`
                        // never lets it displace the winner.
                        if let Some((delta, sid)) = out.best {
                            if best.is_none_or(|(cost, _)| delta < cost) {
                                best = Some((delta, sid));
                            }
                        }
                    }
                    if S::ENABLED {
                        candidates_total += vm_candidates;
                        pruned_total += vm_pruned;
                        unfit_total += vm_unfit;
                        fp_ties_total += vm_fp_ties;
                    }
                    match best {
                        Some((delta, sid)) => {
                            // The single `host` mutation, dispatched to
                            // the winning shard's ledger between pool
                            // generations.
                            let mut state = state.write().expect("miec state lock poisoned");
                            let state = &mut *state;
                            state.assignment.place(vm.id(), ServerId(sid))?;
                            if let Some(ledgers) = state.shadow.as_mut() {
                                ledgers[sid as usize].host(vm);
                            }
                            dirty[routing.shard_of(sid as usize)] = true;
                            if S::ENABLED {
                                metrics.observe("miec.placement_delta", delta);
                                sink.emit(&Event {
                                    name: "miec.place",
                                    fields: &[
                                        ("vm", FieldValue::U64(vm.id().index() as u64)),
                                        ("server", FieldValue::U64(u64::from(sid))),
                                        ("delta", FieldValue::F64(delta)),
                                        ("candidates", FieldValue::U64(vm_candidates)),
                                        ("pruned", FieldValue::U64(vm_pruned)),
                                    ],
                                });
                            }
                            if T::ENABLED {
                                tracer.explain(&ExplainRecord {
                                    candidates: vm_candidates,
                                    pruned: vm_pruned,
                                    unfit: vm_unfit,
                                    shards: n_shards as u64,
                                    rescored: vm_rescored,
                                    shard: routing.shard_of(sid as usize) as u64,
                                    winner: Some(u64::from(sid)),
                                    delta_cost: delta,
                                    fp_tie: vm_fp_ties > 0,
                                    ..ExplainRecord::new(
                                        DecisionKind::Place,
                                        vm.id().index() as u64,
                                    )
                                });
                            }
                        }
                        None if admit => {
                            if S::ENABLED {
                                sink.emit(&Event {
                                    name: "miec.reject",
                                    fields: &[("vm", FieldValue::U64(vm.id().index() as u64))],
                                });
                            }
                            if T::ENABLED {
                                tracer.explain(&ExplainRecord {
                                    candidates: vm_candidates,
                                    pruned: vm_pruned,
                                    unfit: vm_unfit,
                                    shards: n_shards as u64,
                                    rescored: vm_rescored,
                                    ..ExplainRecord::new(
                                        DecisionKind::Reject,
                                        vm.id().index() as u64,
                                    )
                                });
                            }
                            rejected.push(vm.id());
                        }
                        None => return Err(AllocError::NoFeasibleServer(vm.id())),
                    }
                }
                window_start += window.len();
            }
            if S::ENABLED {
                let placed = problem.vm_count() as u64 - rejected.len() as u64;
                metrics.add("miec.vms_placed", placed);
                metrics.add("miec.vms_rejected", rejected.len() as u64);
                metrics.add("miec.candidates_considered", candidates_total);
                metrics.add("miec.spec_class_pruned", pruned_total);
                metrics.add("miec.unfit_skipped", unfit_total);
                metrics.add("miec.fp_ties", fp_ties_total);
                let stats = pool.stats();
                metrics.add("miec.par.generations", stats.generations);
                metrics.add("miec.par.chunks", stats.chunks);
                metrics.add("miec.par.steals", stats.steals);
                metrics.set_gauge("miec.par.imbalance", stats.imbalance);
            }
            Ok(rejected)
        });
        let rejected = run?;

        // The assignment was mutated in place in arrival order — the
        // exact sequence of `place` calls the sequential loop performs,
        // so its float state is bit-identical. Just unwrap it.
        let state = state.into_inner().expect("miec state lock poisoned");
        Ok((state.assignment, rejected))
    }

    /// Observed variant of [`Allocator::allocate`]: identical placement
    /// decisions, with a `miec.place` event per VM emitted to `sink` and
    /// the scan tallies (candidates considered, spec-class pruned, exact
    /// FP ties, unfit skips) accumulated into `metrics`.
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate`].
    pub fn allocate_observed<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, sink, metrics, &NoopTracer).map(|(a, _)| a)
    }

    /// [`Miec::allocate_observed`] with decision provenance: a
    /// `miec.run` span wraps the placement loop, every per-VM argmin
    /// runs inside a `miec.decision` span (the sharded engine adds a
    /// `miec.batch` level), and one [`ExplainRecord`] per VM lands in
    /// `tracer` whose `(winner, delta_cost)` bit-match the placement.
    /// With [`NoopTracer`] this *is* `allocate_observed`.
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate`].
    pub fn allocate_traced<'p, S: EventSink, T: Tracer>(
        &self,
        problem: &'p AllocationProblem,
        sink: &mut S,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, sink, metrics, tracer).map(|(a, _)| a)
    }

    /// Allocation with admission control: unplaceable VMs are rejected
    /// instead of aborting the run. Returns the (partial) assignment and
    /// the rejected VM ids. Models an overloaded data center that turns
    /// requests away — the regime the paper's evaluation never enters.
    ///
    /// # Errors
    ///
    /// Only internal placement errors (never
    /// [`AllocError::NoFeasibleServer`]).
    pub fn allocate_with_admission<'p>(
        &self,
        problem: &'p AllocationProblem,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        self.run(problem, true, &mut NoopSink, &MetricsRegistry::new(), &NoopTracer)
    }
}

impl Allocator for Miec {
    fn name(&self) -> &'static str {
        if self.reference {
            "miec-reference"
        } else if self.unpruned {
            "miec-unpruned"
        } else if self.ignore_transition_costs {
            "miec-noalpha"
        } else if self.assumed_duration.is_some() {
            "miec-blind"
        } else {
            "miec"
        }
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, &mut NoopSink, &MetricsRegistry::new(), &NoopTracer)
            .map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources, VmId};
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn consolidates_overlapping_vms_on_one_server() {
        // Two identical servers; two overlapping small VMs. Sharing one
        // server avoids a second P_idle + α.
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), a.server_of(VmId(1)));
    }

    #[test]
    fn prefers_low_transition_cost_when_all_asleep() {
        // Identical servers except transition cost; Section III's example.
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 500.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
    }

    #[test]
    fn prefers_small_servers_under_light_load() {
        // A small cheap server and a big hungry one; the small server is
        // adequate, so MIEC should consolidate there.
        let p = ProblemBuilder::new()
            .server(
                Resources::new(120.0, 136.0),
                PowerModel::new(260.0, 560.0),
                560.0,
            )
            .server(Resources::new(16.0, 32.0), PowerModel::new(140.0, 300.0), 300.0)
            .vm(Resources::new(1.0, 1.7), Interval::new(1, 5))
            .vm(Resources::new(1.0, 1.7), Interval::new(2, 6))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
        assert_eq!(a.server_of(VmId(1)), Some(ServerId(1)));
    }

    #[test]
    fn respects_capacity_and_spills_over() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .server(Resources::new(4.0, 8.0), PowerModel::new(80.0, 160.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        // They cannot share: 6 CPU > 4.
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert!(a.audit().is_ok());
    }

    #[test]
    fn errors_when_no_server_fits() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 15))
            .build()
            .unwrap();
        let err = Miec::new().allocate(&p, &mut rng()).unwrap_err();
        assert_eq!(err, AllocError::NoFeasibleServer(VmId(1)));
    }

    #[test]
    fn is_deterministic() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 210.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(1.0, 2.0), Interval::new(4, 8))
            .vm(Resources::new(2.0, 2.0), Interval::new(11, 20))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        let b = Miec::new()
            .allocate(&p, &mut StdRng::seed_from_u64(999))
            .unwrap();
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn tie_break_is_lowest_server_id() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(0)));
    }

    #[test]
    fn ablation_variant_ignores_alpha_in_scoring() {
        // Server 0: expensive transition, slightly cheaper idle power.
        // Standard MIEC avoids the huge α; the ablation variant sees only
        // idle/run power and picks server 0.
        let p = ProblemBuilder::new()
            .server(
                Resources::new(8.0, 16.0),
                PowerModel::new(99.0, 200.0),
                10_000.0,
            )
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let smart = Miec::new().allocate(&p, &mut rng()).unwrap();
        let blind = Miec::ignoring_transition_costs()
            .allocate(&p, &mut rng())
            .unwrap();
        assert_eq!(smart.server_of(VmId(0)), Some(ServerId(1)));
        assert_eq!(blind.server_of(VmId(0)), Some(ServerId(0)));
        // The audit still charges the real α, so the ablation costs more.
        assert!(blind.total_cost() > smart.total_cost());
        assert_eq!(Miec::new().name(), "miec");
        assert_eq!(Miec::ignoring_transition_costs().name(), "miec-noalpha");
    }

    #[test]
    fn blind_duration_variant_still_produces_valid_assignments() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 210.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 30))
            .vm(Resources::new(1.0, 2.0), Interval::new(4, 5))
            .vm(Resources::new(2.0, 2.0), Interval::new(11, 40))
            .build()
            .unwrap();
        let blind = Miec::with_assumed_duration(5)
            .allocate(&p, &mut rng())
            .unwrap();
        assert!(blind.audit().is_ok());
        assert_eq!(Miec::with_assumed_duration(5).name(), "miec-blind");
        // Knowing durations can only help (statistically; on this tiny
        // instance we just assert both are valid and comparable).
        let informed = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert!(informed.total_cost() <= blind.total_cost() + 1e-9);
    }

    #[test]
    fn admission_mode_places_everything_else() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 15))
            .vm(Resources::new(3.0, 6.0), Interval::new(12, 20))
            .build()
            .unwrap();
        let (a, rejected) = Miec::new().allocate_with_admission(&p).unwrap();
        // VM 1 overlaps both others; exactly it is rejected.
        assert_eq!(rejected, vec![VmId(1)]);
        assert!(a.server_of(VmId(0)).is_some());
        assert!(a.server_of(VmId(2)).is_some());
        // The partial assignment still audits against capacity.
        assert!(a.total_cost() > 0.0);
    }

    #[test]
    fn pruned_scan_matches_reference_on_homogeneous_fleet() {
        // Four identical servers: pruning scores only one while all are
        // asleep, and the lowest-id tie-break must match the full scan.
        let mut b = ProblemBuilder::new();
        for _ in 0..4 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .vm(Resources::new(6.0, 12.0), Interval::new(1, 10))
            .vm(Resources::new(6.0, 12.0), Interval::new(5, 14))
            .vm(Resources::new(6.0, 12.0), Interval::new(8, 20))
            .vm(Resources::new(2.0, 4.0), Interval::new(30, 35))
            .build()
            .unwrap();
        let fast = Miec::new().allocate(&p, &mut rng()).unwrap();
        let slow = Miec::reference().allocate(&p, &mut rng()).unwrap();
        assert_eq!(fast.placement(), slow.placement());
        assert_eq!(fast.server_of(VmId(0)), Some(ServerId(0)));
        assert_eq!(Miec::reference().name(), "miec-reference");
    }

    #[test]
    fn observed_run_matches_plain_run_and_reports_scan_counts() {
        use esvm_obs::MemorySink;
        let mut b = ProblemBuilder::new();
        for _ in 0..3 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .server(Resources::new(4.0, 8.0), PowerModel::new(60.0, 120.0), 20.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .vm(Resources::new(2.0, 4.0), Interval::new(20, 25))
            .build()
            .unwrap();
        let plain = Miec::new().allocate(&p, &mut rng()).unwrap();
        let mut sink = MemorySink::new();
        let metrics = esvm_obs::MetricsRegistry::new();
        let observed = Miec::new().allocate_observed(&p, &mut sink, &metrics).unwrap();
        assert_eq!(plain.placement(), observed.placement());
        assert_eq!(metrics.counter("miec.vms_placed"), 3);
        assert_eq!(metrics.counter("miec.vms_rejected"), 0);
        // 3 VMs over ≤ 4 servers, with the three identical servers
        // pruned down to one representative while asleep.
        assert!(metrics.counter("miec.candidates_considered") >= 3);
        assert!(metrics.counter("miec.spec_class_pruned") >= 2);
        assert_eq!(metrics.histogram("miec.placement_delta").unwrap().count, 3);
        // One miec.place event per VM, in placement order.
        assert_eq!(sink.lines.len(), 3);
        assert!(sink.lines.iter().all(|l| l.contains("\"event\":\"miec.place\"")));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        use esvm_par::Parallelism;
        let mut b = ProblemBuilder::new();
        for i in 0..6 {
            b = b.server(
                Resources::new(8.0, 16.0),
                PowerModel::new(100.0 + f64::from(i), 200.0),
                50.0,
            );
        }
        let p = b
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(6.0, 12.0), Interval::new(2, 9))
            .vm(Resources::new(3.0, 4.0), Interval::new(4, 15))
            .vm(Resources::new(2.0, 2.0), Interval::new(20, 25))
            .vm(Resources::new(5.0, 8.0), Interval::new(5, 12))
            .build()
            .unwrap();
        for make in [
            Miec::new,
            Miec::reference,
            Miec::ignoring_transition_costs,
            || Miec::with_assumed_duration(3),
            || Miec::new().without_pruning(),
        ] as [fn() -> Miec; 5]
        {
            let sequential = make().allocate(&p, &mut rng()).unwrap();
            for threads in [2usize, 4, 8] {
                for shards in [0usize, 1, 3, 8] {
                    for batch in [1usize, 2, 256] {
                        let parallel = make()
                            .with_parallelism(
                                Parallelism::new(threads).with_shards(shards).with_batch(batch),
                            )
                            .allocate(&p, &mut rng())
                            .unwrap();
                        assert_eq!(sequential.placement(), parallel.placement());
                        assert_eq!(
                            sequential.total_cost().to_bits(),
                            parallel.total_cost().to_bits(),
                            "{} threads={threads} shards={shards} batch={batch}",
                            make().name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_observed_counters_match_sequential() {
        use esvm_par::Parallelism;
        let mut b = ProblemBuilder::new();
        for _ in 0..4 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .vm(Resources::new(2.0, 4.0), Interval::new(20, 25))
            .build()
            .unwrap();
        let seq_metrics = esvm_obs::MetricsRegistry::new();
        let a = Miec::new()
            .allocate_observed(&p, &mut esvm_obs::MemorySink::new(), &seq_metrics)
            .unwrap();
        // The exact counters must survive every shard/batch shape —
        // including batches where cross-shard rep dedup and dirty-shard
        // re-scores actually fire.
        for (shards, batch) in [(0usize, 16usize), (2, 1), (3, 2), (8, 256)] {
            let par_metrics = esvm_obs::MetricsRegistry::new();
            let b = Miec::new()
                .with_parallelism(Parallelism::new(4).with_shards(shards).with_batch(batch))
                .allocate_observed(&p, &mut esvm_obs::MemorySink::new(), &par_metrics)
                .unwrap();
            assert_eq!(a.placement(), b.placement());
            for name in [
                "miec.vms_placed",
                "miec.vms_rejected",
                "miec.candidates_considered",
                "miec.spec_class_pruned",
                "miec.unfit_skipped",
            ] {
                assert_eq!(
                    seq_metrics.counter(name),
                    par_metrics.counter(name),
                    "{name} shards={shards} batch={batch}"
                );
            }
            // Pool counters only exist on the parallel run: one
            // generation per arrival batch.
            let expected_generations = (3 + batch as u64 - 1) / batch as u64;
            assert_eq!(par_metrics.counter("miec.par.generations"), expected_generations);
            assert_eq!(seq_metrics.counter("miec.par.generations"), 0);
        }
    }

    #[test]
    fn traced_run_matches_plain_and_explains_every_placement() {
        use esvm_obs::{CollectingTracer, DecisionKind, NoopSink};
        use esvm_par::Parallelism;
        let mut b = ProblemBuilder::new();
        for i in 0..6 {
            b = b.server(
                Resources::new(8.0, 16.0),
                PowerModel::new(100.0 + f64::from(i % 3), 200.0),
                50.0,
            );
        }
        let p = b
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(6.0, 12.0), Interval::new(2, 9))
            .vm(Resources::new(3.0, 4.0), Interval::new(4, 15))
            .vm(Resources::new(2.0, 2.0), Interval::new(20, 25))
            .vm(Resources::new(5.0, 8.0), Interval::new(5, 12))
            .build()
            .unwrap();
        let plain = Miec::new().allocate(&p, &mut rng()).unwrap();
        for par in [Parallelism::new(1), Parallelism::new(4).with_shards(3).with_batch(2)] {
            let tracer = CollectingTracer::new();
            let metrics = esvm_obs::MetricsRegistry::new();
            let traced = Miec::new()
                .with_parallelism(par)
                .allocate_traced(&p, &mut NoopSink, &metrics, &tracer)
                .unwrap();
            assert_eq!(plain.placement(), traced.placement());
            assert_eq!(plain.total_cost().to_bits(), traced.total_cost().to_bits());
            // One explain record per VM, whose (winner, delta) bit-match
            // the placement and the recorded placement deltas.
            let explains = tracer.explains();
            assert_eq!(explains.len(), p.vm_count());
            for e in &explains {
                assert_eq!(e.record.kind, DecisionKind::Place);
                assert_eq!(
                    e.record.winner.map(|w| ServerId(w as u32)),
                    traced.server_of(VmId(e.record.vm as u32))
                );
                assert!(e.record.candidates >= 1);
                assert!(!e.span.is_none());
            }
            // Spans: one run span, one decision span per VM (the
            // sharded engine adds batch spans in between).
            let spans = tracer.spans();
            assert_eq!(spans.iter().filter(|s| s.name == "miec.run").count(), 1);
            assert_eq!(
                spans.iter().filter(|s| s.name == "miec.decision").count(),
                p.vm_count()
            );
            assert_eq!(tracer.open_spans(), 0);
            // Per-decision latency is tracked with quantiles.
            let lat = tracer.latency("miec.decision").unwrap();
            assert_eq!(lat.count, p.vm_count() as u64);
            assert!(lat.p99 <= lat.max);
        }
        // Sequential and sharded explain records agree on the scan
        // tallies (candidates/pruned/unfit), not just the winner.
        let seq = CollectingTracer::new();
        let par = CollectingTracer::new();
        let m = esvm_obs::MetricsRegistry::new();
        Miec::new().allocate_traced(&p, &mut NoopSink, &m, &seq).unwrap();
        Miec::new()
            .with_parallelism(Parallelism::new(2).with_shards(4).with_batch(256))
            .allocate_traced(&p, &mut NoopSink, &m, &par)
            .unwrap();
        let key = |t: &CollectingTracer| {
            t.explains()
                .iter()
                .map(|e| {
                    (
                        e.record.vm,
                        e.record.candidates,
                        e.record.pruned,
                        e.record.unfit,
                        e.record.winner,
                        e.record.delta_cost.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn handles_empty_vm_list() {
        let p = ProblemBuilder::new()
            .server(Resources::new(1.0, 1.0), PowerModel::new(1.0, 2.0), 0.0)
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert!(a.is_complete());
        assert_eq!(a.total_cost(), 0.0);
    }
}
